"""Mixed workload: no static fault-tolerance scheme fits every query.

The paper's motivating scenario -- an analytical workload mixing
interactive queries (seconds) with batch queries (hours) on one cluster.
This example generates such a workload over the TPC-H query set, runs
every query under all four schemes in the failure simulator, and shows
that the static schemes each have a sweet spot while the cost-based
scheme adapts per query.

Run with::

    python examples/mixed_workload.py
"""

from collections import defaultdict

from repro.core.failure import HOUR
from repro.core.strategies import standard_schemes
from repro.engine import Cluster, compare_schemes
from repro.workloads import generate_mixed_workload

MTBF = 4 * HOUR
NODES = 10


def main() -> None:
    workload = generate_mixed_workload(count=12, seed=7,
                                       sf_range=(0.5, 800.0))
    workload.sort(key=lambda query: query.baseline_cost)
    cluster = Cluster(nodes=NODES, mttr=1.0)
    schemes = standard_schemes()

    print(f"{len(workload)} queries, MTBF = 4 hours/node, {NODES} nodes\n")
    header = f"{'query':<14s}{'baseline':>10s}"
    for scheme in schemes:
        header += f"{scheme.name:>19s}"
    header += "  near-best"
    print(header)

    wins = defaultdict(int)
    for index, query in enumerate(workload):
        rows = compare_schemes(
            schemes, query.plan, query.label, cluster,
            mtbf=MTBF, trace_count=5, base_seed=9000 + index,
        )
        line = f"{query.label:<14s}{query.baseline_cost:>9.0f}s"
        finished = [row for row in rows if not row.aborted]
        best_overhead = min(row.overhead_percent for row in finished)
        for row in rows:
            line += f"{row.formatted_overhead():>19s}"
        winners = [row.scheme for row in finished
                   if row.overhead_percent <= best_overhead + 2.0]
        line += ("  " + "/".join(w.split(" ")[0] for w in winners))
        for winner in winners:
            wins[winner] += 1
        print(line)

    print("\ntimes within 2 points of the per-query winner:")
    for scheme in schemes:
        print(f"  {scheme.name:<18s} {wins[scheme.name]:>2d} / "
              f"{len(workload)}")
    print(
        "\nShort queries are best served by not materializing anything;\n"
        "long queries need checkpoints.  No static scheme is near-best\n"
        "for every query -- only the cost-based scheme, which picks the\n"
        "sweet spot per query, stays on the winning frontier throughout."
    )


if __name__ == "__main__":
    main()
