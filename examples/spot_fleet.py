"""Spot fleet survival kit: the future-work extensions in action.

A nightly 90-minute feature-engineering pipeline runs on preemptible spot
instances whose real MTBF is unknown and much worse than assumed.  This
example chains the reproduction's three extensions:

1. estimate the fleet's MTBF from its failure log, with a confidence
   interval (``repro.stats.mtbf_estimation``);
2. let the cost-based optimizer pick checkpoints for that MTBF, and add
   mid-operator snapshots for the long UDF
   (``repro.core.checkpointing``);
3. run adaptively, re-optimizing at every materialization boundary as
   observed runtimes correct the optimizer's 5x-too-cheap estimates
   (``repro.engine.adaptive``).

Run with::

    python examples/spot_fleet.py
"""

from repro.core import (
    ClusterStats,
    CostBased,
    CostBasedWithOpCheckpoints,
    Operator,
    Plan,
)
from repro.engine import (
    AdaptiveExecutor,
    Cluster,
    SimulatedEngine,
    generate_trace,
)
from repro.stats.mtbf_estimation import estimate_from_trace
from repro.stats.perturbation import PerturbationKind, perturb_plan

NODES = 8
TRUE_MTBF = 900.0          # a preemption every 15 minutes per node


def pipeline() -> Plan:
    """Ingest -> heavy UDF -> join -> train -> publish (true costs)."""
    operators = [
        Operator(1, "Ingest(events)", 600.0, 120.0, state_ckpt_cost=20.0),
        Operator(2, "FeatureUDF", 2400.0, 150.0, state_ckpt_cost=12.0),
        Operator(3, "Join(dims)", 900.0, 200.0, state_ckpt_cost=30.0),
        Operator(4, "Train(batch)", 1200.0, 60.0, state_ckpt_cost=8.0),
        Operator(5, "Publish", 120.0, 5.0, materialize=True, free=False,
                 state_ckpt_cost=2.0),
    ]
    edges = [(1, 2), (2, 3), (3, 4), (4, 5)]
    return Plan.from_edges(operators, edges)


def main() -> None:
    true_plan = pipeline()
    baseline = true_plan.total_runtime_cost
    print(f"Pipeline: {len(true_plan)} stages, "
          f"~{baseline / 60:.0f} min failure-free\n")

    # 1. estimate the MTBF from last night's failure log ----------------
    failure_log = generate_trace(NODES, TRUE_MTBF, horizon=8 * 3600.0,
                                 seed=100)
    estimate = estimate_from_trace(failure_log)
    print(f"Step 1 -- last night's failure log: {estimate}")
    mtbf = estimate.mtbf
    stats = ClusterStats(mtbf=mtbf, mttr=5.0, nodes=NODES)

    # 2. checkpoints + mid-operator snapshots ---------------------------
    configured = CostBasedWithOpCheckpoints().configure(true_plan, stats)
    mats = [true_plan[i].name for i in configured.search.materialized_ids]
    print("\nStep 2 -- cost-based plan for that MTBF:")
    print(f"  materialize: {mats or 'nothing'}")
    for anchor, spec in sorted(configured.op_checkpoints.items()):
        print(f"  snapshot group ending at [{anchor}] "
              f"{true_plan[anchor].name} every {spec.interval:.0f}s "
              f"(cost {spec.snapshot_cost:.0f}s per snapshot)")

    cluster = Cluster(nodes=NODES, mttr=5.0)
    engine = SimulatedEngine(cluster)
    tonight = generate_trace(NODES, TRUE_MTBF, horizon=4_000_000.0,
                             seed=777)
    plain = engine.execute(CostBased().configure(true_plan, stats),
                           tonight)
    snapshotted = engine.execute(configured, tonight)
    print(f"  tonight without snapshots: {plain.runtime / 60:8.0f} min "
          f"({plain.share_restarts} share restarts)")
    print(f"  tonight with snapshots:    "
          f"{snapshotted.runtime / 60:8.0f} min "
          f"({snapshotted.share_restarts} share restarts)")

    # 3. adapt when the estimates were wrong ----------------------------
    believed = perturb_plan(true_plan, PerturbationKind.COMPUTE_AND_IO,
                            0.2)
    print("\nStep 3 -- suppose the optimizer believed everything was "
          "5x cheaper:")
    adaptive = AdaptiveExecutor(engine, stats)
    outcome = adaptive.execute(true_plan, estimated_plan=believed,
                               trace=tonight)
    print(f"  adaptive run finished in {outcome.runtime / 60:.0f} min; "
          f"correction factor converged to "
          f"{outcome.final_correction:.1f}")
    for event in outcome.reconfigurations:
        chosen = [op_id for op_id, flag in event.mat_config if flag]
        print(f"    t={event.time / 60:6.1f} min: after "
              f"[{event.completed_anchor}] "
              f"{true_plan[event.completed_anchor].name}, "
              f"correction {event.correction:.1f}, "
              f"remaining checkpoints -> {chosen or 'none'}")


if __name__ == "__main__":
    main()
