"""Cluster advisor: how the right fault-tolerance depends on the cluster.

Sweeps the four cluster setups of the paper's Figure 1 (MTBF x cluster
size) for one mid-sized query and reports, per setup, the success
probability without fault tolerance, the configuration the cost-based
optimizer picks, and the measured overhead of each scheme.

Run with::

    python examples/cluster_advisor.py
"""

from repro.core import failure
from repro.core.failure import HOUR, WEEK
from repro.core.strategies import CostBased, standard_schemes
from repro.engine import Cluster, compare_schemes
from repro.stats import default_parameters
from repro.tpch import build_query_plan

CLUSTERS = [
    ("Cluster 1: 100 spot nodes, MTBF 1 hour", HOUR, 100),
    ("Cluster 2: 100 nodes, MTBF 1 week", WEEK, 100),
    ("Cluster 3: 10 flaky nodes, MTBF 1 hour", HOUR, 10),
    ("Cluster 4: 10 solid nodes, MTBF 1 week", WEEK, 10),
]


def main() -> None:
    scale_factor = 30.0
    for label, mtbf, nodes in CLUSTERS:
        params = default_parameters(nodes=nodes)
        plan = build_query_plan("Q5", scale_factor, params)
        baseline = sum(op.runtime_cost for op in plan.operators.values())
        cluster = Cluster(nodes=nodes, mttr=1.0)
        stats = cluster.stats(mtbf)

        p_success = failure.success_probability(baseline, mtbf, nodes)
        configured = CostBased().configure(plan, stats)
        chosen = configured.search.materialized_ids

        print(f"=== {label} ===")
        print(f"  TPC-H Q5 @ SF {scale_factor:g}: "
              f"baseline ~{baseline:.0f}s")
        print(f"  P(no failure during one attempt): {100 * p_success:.1f}%")
        print(f"  cost-based checkpoints: "
              f"{list(chosen) or 'none (run it straight through)'}")

        rows = compare_schemes(
            standard_schemes(), plan, "Q5", cluster, mtbf,
            trace_count=5, base_seed=hash(label) % 10_000,
        )
        for row in rows:
            marker = "  <-- recommended" if row.scheme == "cost-based" \
                else ""
            print(f"    {row.scheme:<18s} overhead "
                  f"{row.formatted_overhead():>9s}{marker}")
        print()

    print(
        "Reading the sweep: on stable clusters any no-mat scheme is fine\n"
        "and materialization is wasted work; on large or flaky clusters\n"
        "a query barely ever finishes in one attempt and checkpoints are\n"
        "what makes it finish at all.  The cost model encodes exactly\n"
        "this trade-off, so its recommendation tracks the cluster."
    )


if __name__ == "__main__":
    main()
