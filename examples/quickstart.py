"""Quickstart: pick the optimal materialization configuration for a plan.

Builds a small DAG-structured execution plan, asks the cost-based
optimizer for the best fault-tolerant plan under two different cluster
setups, and shows how the chosen checkpoints change with the failure
rate.

Run with::

    python examples/quickstart.py
"""

from repro import ClusterStats, CostBased, Operator, Plan
from repro.core import collapse_plan, estimate_plan_cost


def build_plan() -> Plan:
    """A toy ETL pipeline: two scans, a join, a UDF, an aggregate."""
    operators = [
        # (id, name, tr(o) seconds, tm(o) seconds)
        Operator(1, "Scan(events)", 120.0, 45.0),
        Operator(2, "Scan(users)", 30.0, 10.0),
        Operator(3, "Join(events,users)", 300.0, 80.0),
        Operator(4, "Sessionize UDF", 240.0, 8.0),
        Operator(5, "Aggregate(day)", 60.0, 1.0,
                 materialize=True, free=False),   # the delivered result
    ]
    edges = [(1, 3), (2, 3), (3, 4), (4, 5)]
    return Plan.from_edges(operators, edges)


def main() -> None:
    plan = build_plan()
    print("Execution plan:")
    print(plan.pretty())
    print()

    setups = [
        ("stable cluster (MTBF = 1 week/node, 10 nodes)",
         ClusterStats(mtbf=7 * 24 * 3600.0, mttr=1.0, nodes=10)),
        ("flaky spot instances (MTBF = 20 min/node, 10 nodes)",
         ClusterStats(mtbf=20 * 60.0, mttr=1.0, nodes=10)),
    ]
    for label, stats in setups:
        configured = CostBased().configure(plan, stats)
        search = configured.search
        materialized = [
            plan[op_id].name for op_id in search.materialized_ids
        ]
        print(f"--- {label} ---")
        print(f"  estimated runtime under failures: {search.cost:8.1f} s")
        print(f"  checkpoints chosen: {materialized or 'none'}")
        print("  collapsed plan (the units of recovery):")
        collapsed = collapse_plan(configured.plan,
                                  const_pipe=stats.const_pipe)
        for line in collapsed.pretty().splitlines():
            print(f"    {line}")
        no_mat = estimate_plan_cost(
            plan.with_mat_config(
                {op_id: False for op_id in plan.free_operators}
            ),
            stats,
        )
        saving = 100.0 * (1.0 - search.cost / no_mat.cost)
        print(f"  vs running without checkpoints: {no_mat.cost:8.1f} s "
              f"({saving:.0f}% saved)")
        print()


if __name__ == "__main__":
    main()
