"""Failure replay: watch a query survive injected failures.

Runs TPC-H Q3 in the simulated engine under a deterministic failure
trace twice -- once with the cost-based materialization configuration and
once without any checkpoints -- and renders both executions as per-node
timelines so the recovery behaviour is visible: checkpointed runs restart
only the failed share from the last materialized intermediate.

This example also really *executes* the query on generated TPC-H data
first, so the plan being simulated is grounded in actual results.

Run with::

    python examples/failure_replay.py
"""

from repro.core.strategies import CostBased, NoMatLineage
from repro.engine import Cluster, SimulatedEngine, generate_trace
from repro.engine.viz import render_gantt
from repro.relational import execute
from repro.stats import default_parameters
from repro.tpch import QUERIES, build_query_plan, generate

NODES = 4
MTBF = 600.0           # a failure every ten minutes per node: brutal
SCALE_FACTOR = 40.0    # simulated scale
TINY_SF = 0.002        # really-executed scale


def main() -> None:
    # ground the plan: run the real query on generated data first
    tiny_db = generate(TINY_SF, seed=1)
    answer = execute(QUERIES["Q3"].physical_tree(tiny_db))
    print(f"Q3 on a generated TPC-H database (SF {TINY_SF:g}) -- "
          f"top shipping priorities:")
    print("  " + answer.pretty(limit=3).replace("\n", "\n  "))
    print()

    params = default_parameters(nodes=NODES)
    plan = build_query_plan("Q3", SCALE_FACTOR, params)
    cluster = Cluster(nodes=NODES, mttr=2.0)
    stats = cluster.stats(MTBF)
    engine = SimulatedEngine(cluster)
    trace = generate_trace(NODES, MTBF, horizon=100_000.0, seed=11)

    for scheme in (NoMatLineage(), CostBased()):
        configured = scheme.configure(plan, stats)
        result = engine.execute(configured, trace)
        baseline = engine.execute(configured).runtime
        print(f"--- {scheme.name} "
              f"(checkpoints: {[op_id for op_id, op in configured.plan.operators.items() if op.materialize and plan[op_id].free] or 'none'}) ---")
        print(f"  failure-free: {baseline:7.0f}s   "
              f"with failures: {result.runtime:7.0f}s   "
              f"share restarts: {result.share_restarts}")
        print(render_gantt(result, nodes=NODES))
        print()

    print("Legend: '#' useful work, 'x' attempts destroyed by a failure.")
    print("With checkpoints, a failure wastes only the running sub-plan;")
    print("without them, the whole lineage re-runs on the failed node.")


if __name__ == "__main__":
    main()
