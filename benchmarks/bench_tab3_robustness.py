"""Table 3: robustness of the cost model to perturbed statistics.

Perturbs the MTBF, the I/O costs, and compute + I/O costs by factors
0.1x / 0.5x / 2x / 10x before ranking Q5's 32 configurations, and reports
the baseline positions of the perturbed top-5.

Expected shapes (paper Exp. 3b): mild perturbations (0.5x / 2x) only
shuffle within the top handful of positions with negligible regret;
extreme perturbations (0.1x / 10x) push materially worse plans to the
top, with I/O-cost perturbations hurting the most.
"""

from repro.experiments import tab3_robustness


def test_tab3_robustness(benchmark, archive):
    result = benchmark.pedantic(tab3_robustness.run, rounds=1, iterations=1)
    archive("tab3_robustness", tab3_robustness.format_table(result))

    assert len(result.baseline_ranking) == 32
    by_label = {row.label: row for row in result.rows}

    # mild perturbations: the chosen plan stays near-optimal
    for row in result.rows:
        if row.factor in (0.5, 2.0):
            assert result.regret(row) < 1.05
            assert max(row.top5_baseline_positions) <= 12

    # extreme I/O misestimation is the most damaging case
    assert max(by_label["I/O costs x0.1"].top5_baseline_positions) > \
        max(by_label["I/O costs x0.5"].top5_baseline_positions)
    assert result.regret(by_label["I/O costs x0.1"]) > 1.1
