"""Static vs adaptive regret gate (``repro.experiments.adaptive_drift``).

Runs the adaptive-drift sweep -- frozen cost-based choice vs the
drift-aware re-planner over the same failure trace sets -- and writes
``BENCH_adaptive.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_adaptive.py           # full
    PYTHONPATH=src python benchmarks/bench_adaptive.py --quick   # CI mode

Reported numbers, per drift regime:

* ``static_regret`` / ``adaptive_regret`` -- mean simulated runtime of
  the frozen choice / the re-planning run, each divided by the regime's
  best *fixed* configuration (the oracle, simulated exhaustively);
* ``replans`` -- re-plan searches performed across all traces;
* ``identical_to_static`` -- whether the adaptive runtimes matched the
  static cell bit-for-bit.

Acceptance gates (exit status 1 on violation):

1. **Identity** -- on the zero-drift regime the adaptive runner performs
   zero re-plans and reproduces the static runtimes bit-for-bit: the
   envelope's false-trigger rate is zero when reality matches the model.
2. **Never worse** -- on every drifting regime ``adaptive_regret <=
   static_regret * (1 + tolerance)``.
3. **Pays somewhere** -- on at least one drifting regime the adaptive
   regret is *strictly* below static (by more than ``--margin``):
   closing the estimate->observe->re-optimize loop recoups real runtime,
   not noise.

Everything is deterministic (seeded traces, ``jobs=N`` bit-identical to
serial), so two runs of this script produce byte-identical reports.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List

from repro.experiments import adaptive_drift


def run_bench(
    query: str, scale_factor: float, mtbf: float, trace_count: int,
    jobs: int, tolerance: float, margin: float,
) -> Dict[str, Any]:
    started = time.perf_counter()
    result = adaptive_drift.run(
        query=query, scale_factor=scale_factor, mtbf=mtbf,
        trace_count=trace_count, jobs=jobs,
    )
    wall = time.perf_counter() - started

    rows: List[Dict[str, Any]] = []
    for row in result.rows:
        rows.append({
            "regime": row.regime,
            "effective_mtbf": row.effective_mtbf,
            "chosen_config": row.chosen_config,
            "oracle_config": row.oracle_config,
            "static_mean": row.static_mean,
            "adaptive_mean": row.adaptive_mean,
            "oracle_mean": row.oracle_mean,
            "static_regret": row.static_regret,
            "adaptive_regret": row.adaptive_regret,
            "replans": row.replans,
            "identical_to_static": row.identical_to_static,
        })

    zero = result.rows[0]
    drifting = result.rows[1:]
    gate_identity = zero.replans == 0 and zero.identical_to_static
    gate_never_worse = all(
        row.adaptive_regret <= row.static_regret * (1.0 + tolerance)
        for row in drifting
    )
    gate_pays = any(
        row.adaptive_regret < row.static_regret - margin
        for row in drifting
    )
    envelope = result.envelope
    return {
        "benchmark": "adaptive_replanning_regret",
        "workload": {
            "query": query,
            "scale_factor": scale_factor,
            "assumed_mtbf": mtbf,
            "trace_count": trace_count,
            "jobs": jobs,
            "configurations": len(result.config_labels),
            "regimes": [row.regime for row in result.rows],
        },
        "envelope": {
            "mtbf_ratio": envelope.mtbf_ratio,
            "runtime_ratio": envelope.runtime_ratio,
            "min_failures": envelope.min_failures,
            "confidence": envelope.confidence,
            "use_ci": envelope.use_ci,
        },
        "baseline_runtime": result.baseline,
        "rows": rows,
        "gates": {
            "zero_drift_identity": gate_identity,
            "never_worse": gate_never_worse,
            "strictly_better_somewhere": gate_pays,
            "tolerance": tolerance,
            "margin": margin,
        },
        "wall_seconds": wall,
        "cpu_count": os.cpu_count(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate adaptive re-planning regret against the "
                    "static cost-based choice; writes "
                    "BENCH_adaptive.json."
    )
    parser.add_argument("--query", default="Q5",
                        help="TPC-H query (default Q5)")
    parser.add_argument("--scale-factor", type=float, default=100.0,
                        help="TPC-H scale factor (default 100)")
    parser.add_argument("--mtbf", type=float, default=4.0 * 3600.0,
                        help="assumed per-node MTBF seconds "
                             "(default 14400; picked so the static "
                             "choice has a mid-plan checkpoint)")
    parser.add_argument("--traces", type=int, default=25,
                        help="failure traces per regime (default 25)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="parallel campaign workers (default 4; "
                             "bit-identical to --jobs 1)")
    parser.add_argument("--tolerance", type=float, default=0.005,
                        help="never-worse gate slack as a fraction of "
                             "static regret (default 0.5%%)")
    parser.add_argument("--margin", type=float, default=1e-6,
                        help="strict-win gate margin (default 1e-6)")
    parser.add_argument("--quick", action="store_true",
                        help="CI mode: 10 traces")
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_adaptive.json",
        help="where to write the JSON report "
             "(default <repo>/BENCH_adaptive.json)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.traces = 10
    report = run_bench(
        query=args.query, scale_factor=args.scale_factor,
        mtbf=args.mtbf, trace_count=args.traces, jobs=args.jobs,
        tolerance=args.tolerance, margin=args.margin,
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    for row in report["rows"]:
        identity = " (=static)" if row["identical_to_static"] else ""
        print(f"{row['regime']:<20s} static {row['static_regret']:.4f}x"
              f"  adaptive {row['adaptive_regret']:.4f}x"
              f"  replans {row['replans']}{identity}")
    gates = report["gates"]
    print(f"gates: identity={gates['zero_drift_identity']} "
          f"never_worse={gates['never_worse']} "
          f"pays={gates['strictly_better_somewhere']}  "
          f"({report['wall_seconds']:.1f}s)")
    print(f"wrote {args.output}")
    if not (gates["zero_drift_identity"] and gates["never_worse"]
            and gates["strictly_better_somewhere"]):
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
