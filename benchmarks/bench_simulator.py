"""Simulator campaign benchmarks: serial oracle vs prepared vs parallel.

The engineering claim behind the campaign engine
(:mod:`repro.engine.campaign`): the Section 5 measurement grid runs
several times faster through the prepared-execution path and the
process-pool fan-out, while producing *exactly* the rows the pre-change
serial loop produced.

The benchmark sweep is Figure 8's grid -- five TPC-H queries x four
fault-tolerance schemes x two MTBF settings -- with a raised trace count
so the per-trace work dominates fixed costs.  Three modes are timed:

* ``oracle``  -- the pre-change serial protocol, reconstructed: fresh
  ``engine.execute`` per trace (re-collapsing the plan every call), a
  fresh trace set per cell, fresh baselines, full event logging;
* ``serial``  -- the campaign with ``jobs=1`` (prepared execution,
  trace-set/baseline caches, muted timelines);
* ``jobs=N``  -- the same campaign fanned out over worker processes.

Every mode's rows are asserted equal to the oracle's before any number
is reported -- the speedup is only meaningful if the outputs match.

Besides the pytest-benchmark tests, the module doubles as a script::

    PYTHONPATH=src python benchmarks/bench_simulator.py

which writes ``BENCH_simulator.json`` (wall time and speedup per mode)
at the repository root.  ``--quick`` shrinks the sweep for CI.  See
``docs/perf.md`` for how to read it.
"""

import argparse
import json
import time
from pathlib import Path

import pytest

from repro.core.strategies import NoMatLineage, standard_schemes
from repro.engine.campaign import CampaignCell, run_campaign
from repro.engine.cluster import Cluster
from repro.engine.coordinator import _default_horizon
from repro.engine.executor import SimulatedEngine, TraceExhausted
from repro.engine.traces import extend_trace, generate_trace_set
from repro.stats.calibration import default_parameters
from repro.tpch.queries import build_query_plan

FIG8_QUERIES = ("Q1", "Q3", "Q5", "Q1C", "Q2C")
NODES = 10
BASE_SEED = 800


# ----------------------------------------------------------------------
# the sweep grid (Figure 8: query x scheme x low/high MTBF)
# ----------------------------------------------------------------------
def build_grid(scale_factor, trace_count, queries=FIG8_QUERIES):
    """The Figure 8 cells, with per-query baselines resolved."""
    params = default_parameters(nodes=NODES)
    cluster = Cluster(nodes=NODES, mttr=1.0)
    engine = SimulatedEngine(cluster)
    schemes = tuple(standard_schemes(preflight_lint=False))
    cells = []
    for query in queries:
        plan = build_query_plan(query, scale_factor, params)
        stats = cluster.stats(mtbf=1.0)
        baseline = engine.execute(
            NoMatLineage().configure(plan, stats)
        ).runtime
        for seed_offset, mtbf in ((0, 1.1 * baseline),
                                  (1, 10.0 * baseline)):
            cells.append(CampaignCell(
                label=query,
                plan=plan,
                mtbf=mtbf,
                schemes=schemes,
                trace_count=trace_count,
                base_seed=BASE_SEED + seed_offset,
                baseline=baseline,
            ))
    return cells, cluster


def run_oracle(cells, cluster):
    """The pre-change serial measurement loop, reconstructed.

    No prepared executions, no trace-set or baseline caches, full event
    logging: every ``execute`` call re-collapses the plan, every cell
    regenerates its traces, exactly like the per-experiment loops the
    campaign replaced.  Returns rows in campaign order and shape.
    """
    engine = SimulatedEngine(cluster)
    rows = []
    for cell_index, cell in enumerate(cells):
        stats = cluster.stats(cell.mtbf, const_pipe=cell.const_pipe)
        baseline = cell.baseline
        if baseline is None:
            baseline = engine.execute(
                NoMatLineage().configure(cell.plan, stats)
            ).runtime
        horizon = _default_horizon(baseline, cell.mtbf, cluster)
        for scheme in cell.targets():
            configured = scheme.configure(cell.plan, stats)
            traces = generate_trace_set(
                cluster.nodes, cell.mtbf, horizon,
                count=cell.trace_count, base_seed=cell.base_seed,
            )
            runtimes, aborted = [], 0
            for trace in traces:
                while True:
                    try:
                        result = engine.execute(configured, trace)
                        break
                    except TraceExhausted:
                        trace = extend_trace(trace, trace.horizon * 4)
                if result.aborted:
                    aborted += 1
                else:
                    runtimes.append(result.runtime)
            rows.append((
                cell_index, cell.label, configured.scheme,
                tuple(runtimes), aborted,
                tuple(op_id
                      for op_id, op in configured.plan.operators.items()
                      if op.materialize and cell.plan[op_id].free),
            ))
    return rows


def campaign_rows(results):
    """Project campaign results onto the oracle's comparison shape."""
    return [
        (r.cell_index, r.label, r.scheme, r.runtimes, r.aborted_runs,
         r.materialized_ids)
        for r in results
    ]


def run_comparison(scale_factor=100.0, trace_count=200, jobs=(4, 8)):
    """Time every mode over the identical sweep; verify equal rows."""
    cells, cluster = build_grid(scale_factor, trace_count)

    started = time.perf_counter()
    oracle = run_oracle(cells, cluster)
    oracle_s = time.perf_counter() - started

    modes = []
    for label, job_count in [("serial", 1)] + [
        (f"jobs={n}", n) for n in jobs
    ]:
        started = time.perf_counter()
        results = run_campaign(cells, cluster, jobs=job_count)
        elapsed = time.perf_counter() - started
        # the speedup only counts if the outputs are exactly equal
        assert campaign_rows(results) == oracle, (
            f"campaign ({label}) diverged from the serial oracle"
        )
        modes.append({
            "mode": label,
            "seconds": round(elapsed, 6),
            "speedup_vs_oracle": round(oracle_s / elapsed, 2),
            "equal_to_oracle": True,
        })
    return {
        "benchmark": "fig8_sweep",
        "queries": list(FIG8_QUERIES),
        "schemes": [s.name for s in standard_schemes()],
        "mtbf_settings": ["1.1x baseline", "10x baseline"],
        "scale_factor": scale_factor,
        "trace_count": trace_count,
        "nodes": NODES,
        "cells": len(cells),
        "units": sum(len(cell.targets()) for cell in cells),
        "oracle_seconds": round(oracle_s, 6),
        "modes": modes,
    }


# ----------------------------------------------------------------------
# pytest-benchmark tests (small grid: keep CI fast)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_grid():
    return build_grid(scale_factor=20.0, trace_count=10,
                      queries=("Q1", "Q5"))


def test_oracle_serial_loop(benchmark, small_grid):
    """The pre-change protocol (the baseline the campaign is judged by)."""
    cells, cluster = small_grid
    rows = benchmark(run_oracle, cells, cluster)
    assert len(rows) == 4 * len(cells)


def test_campaign_serial(benchmark, small_grid):
    """Campaign jobs=1: prepared executions + caches, same results."""
    cells, cluster = small_grid
    oracle = run_oracle(cells, cluster)
    results = benchmark(run_campaign, cells, cluster)
    assert campaign_rows(results) == oracle


def test_campaign_parallel(benchmark, small_grid):
    """Campaign jobs=4: adds process fan-out, still the same results."""
    cells, cluster = small_grid
    oracle = run_oracle(cells, cluster)
    results = benchmark(run_campaign, cells, cluster, jobs=4)
    assert campaign_rows(results) == oracle


# ----------------------------------------------------------------------
# script mode: the fixed Figure 8 sweep behind BENCH_simulator.json
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Time the simulation campaign (serial / prepared / "
                    "parallel) against the pre-change serial oracle on "
                    "the Figure 8 sweep."
    )
    parser.add_argument("--scale-factor", type=float, default=100.0)
    parser.add_argument("--trace-count", type=int, default=200,
                        help="traces per cell (default 200; the paper "
                             "protocol's 10 finishes too fast to time)")
    parser.add_argument("--jobs", type=int, nargs="*", default=[4, 8],
                        help="worker counts to benchmark (default 4 8)")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized sweep (SF 20, 40 traces, jobs=4)")
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_simulator.json",
        help="where to write the JSON report "
             "(default <repo>/BENCH_simulator.json)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        report = run_comparison(scale_factor=20.0, trace_count=40,
                                jobs=[4])
    else:
        report = run_comparison(scale_factor=args.scale_factor,
                                trace_count=args.trace_count,
                                jobs=args.jobs)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"oracle (pre-change serial loop): {report['oracle_seconds']:.3f}s "
          f"({report['cells']} cells, {report['units']} units, "
          f"{report['trace_count']} traces/cell)")
    for mode in report["modes"]:
        print(f"  campaign {mode['mode']:<8s} {mode['seconds']:.3f}s  "
              f"speedup {mode['speedup_vs_oracle']:.2f}x  "
              f"equal={mode['equal_to_oracle']}")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
