"""Figure 1: probability of success of a query vs. runtime.

Regenerates the four cluster curves of the paper's motivation figure.
Expected shape: Cluster 1 (MTBF=1h, n=100) collapses within minutes,
Cluster 4 (MTBF=1w, n=10) stays near 100 %, and Clusters 2/3 cross 50 %
inside the plotted range.
"""

from repro.experiments import fig1_success


def test_fig1_success_probability(benchmark, archive):
    result = benchmark(fig1_success.run)
    archive("fig1_success_probability", fig1_success.format_table(result))

    curves = result.curves
    final = {label: curve[-1] for label, curve in curves.items()}
    # Cluster 1 never finishes long queries; Cluster 4 almost always does
    assert final["Cluster 1 (MTBF=1 hour,n=100)"] < 1.0
    assert final["Cluster 4 (MTBF=1 week,n=10)"] > 85.0
    # the mid clusters cross 50 % within the plotted range: they start at
    # 100 % and end below the halfway mark, so success depends on runtime
    for label in ("Cluster 2 (MTBF=1 week,n=100)",
                  "Cluster 3 (MTBF=1 hour,n=10)"):
        assert curves[label][0] == 100.0
        assert curves[label][-1] < 50.0
