"""Benchmark the multi-tenant shared-cluster workload (PR 9).

Runs the full :mod:`repro.workload` pipeline -- thousands of queries
from priority-tenant classes, advisory-driven plan choice, spot-fleet
churn, priority admission queueing -- once at ``jobs=1`` and once at
``jobs=N``, and writes ``BENCH_multitenant.json`` at the repository
root::

    PYTHONPATH=src python benchmarks/bench_multitenant.py          # full
    PYTHONPATH=src python benchmarks/bench_multitenant.py --quick  # CI

Reported numbers:

* per-tenant-class aggregate FT overhead, latency p50/p99, queue wait
  mean/p99, chosen-vs-oracle regret;
* advice-cache economics (requests, hits, misses, hit rate, searches)
  over the zipf-skewed mix;
* ``jobs_equal`` -- the ``jobs=N`` payload compared field-for-field
  against ``jobs=1`` (the bit-identity acceptance gate);
* wall-clock seconds for both runs (informational; kept out of the
  equality payload).

Exit status is non-zero when any acceptance gate fails: error rows in
the campaign, advice-cache hit rate below the floor, or a ``jobs``
mismatch.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.workload import MultiTenantConfig, run_multitenant

#: the skewed mix must keep the advice cache at least this warm
HIT_RATE_FLOOR = 0.5


def run_bench(queries: int, trace_count: int, templates_per_class: int,
              churn: float, jobs: int, seed: int) -> dict:
    config = MultiTenantConfig(
        queries=queries,
        churn=churn,
        seed=seed,
        trace_count=trace_count,
        templates_per_class=templates_per_class,
    )
    start = time.perf_counter()
    serial = run_multitenant(config, jobs=1)
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    fanned = run_multitenant(config, jobs=jobs)
    fanned_seconds = time.perf_counter() - start

    payload = serial.to_payload()
    jobs_equal = payload == fanned.to_payload()
    report = dict(payload)
    report["jobs"] = {
        "compared": jobs,
        "jobs_equal": jobs_equal,
        "serial_seconds": round(serial_seconds, 3),
        "fanned_seconds": round(fanned_seconds, 3),
    }
    report["gates"] = {
        "error_rows": serial.error_rows,
        "hit_rate": serial.advice.hit_rate,
        "hit_rate_floor": HIT_RATE_FLOOR,
        "jobs_equal": jobs_equal,
        "passed": (serial.error_rows == 0
                   and serial.advice.hit_rate >= HIT_RATE_FLOOR
                   and jobs_equal),
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the multi-tenant workload at jobs=1 and "
                    "jobs=N and write BENCH_multitenant.json."
    )
    parser.add_argument("--queries", type=int, default=2500,
                        help="arrivals to simulate (default 2500)")
    parser.add_argument("--traces", type=int, default=3,
                        help="failure traces per measurement "
                             "(default 3)")
    parser.add_argument("--templates", type=int, default=4,
                        help="plan templates per tenant class "
                             "(default 4)")
    parser.add_argument("--churn", type=float, default=0.5,
                        help="spot-fleet reclaim intensity (default "
                             "0.5)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="fan-out compared against jobs=1 "
                             "(default 4)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true",
                        help="CI mode: 300 queries, 2 traces, 3 "
                             "templates per class")
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_multitenant.json",
        help="where to write the JSON report "
             "(default <repo>/BENCH_multitenant.json)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.queries, args.traces, args.templates = 300, 2, 3
    report = run_bench(
        queries=args.queries, trace_count=args.traces,
        templates_per_class=args.templates, churn=args.churn,
        jobs=args.jobs, seed=args.seed,
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    gates = report["gates"]
    cache = report["advice_cache"]
    print(f"{report['workload']['queries']} queries over "
          f"{report['workload']['tenant_classes']} classes "
          f"({report['workload']['distinct_groups']} groups): "
          f"hit-rate {cache['hit_rate']:.3f}  "
          f"searches {cache['searches']}  "
          f"error-rows {gates['error_rows']}  "
          f"jobs{report['jobs']['compared']}=="
          f"jobs1: {gates['jobs_equal']}  "
          f"serial {report['jobs']['serial_seconds']}s / "
          f"fanned {report['jobs']['fanned_seconds']}s")
    for row in report["classes"]:
        print(f"  {row['name']:<14s} prio {row['priority']} "
              f"queries {row['queries']:>5d}  "
              f"overhead {row['overhead_percent']:6.1f}%  "
              f"p50 {row['latency_p50']:8.1f}s  "
              f"p99 {row['latency_p99']:8.1f}s  "
              f"wait-p99 {row['wait_p99']:8.1f}s  "
              f"regret {row['regret']:.3f}x")
    print(f"wrote {args.output}")
    if not gates["passed"]:
        print("ACCEPTANCE GATE FAILED")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
