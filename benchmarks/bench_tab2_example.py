"""Table 2: the paper's worked cost-estimation example.

Regenerates the per-operator breakdown (t, w, gamma, a, T) and the two
path costs.  With the paper's own rounding protocol the printed values
(T_Pt1 = 8.13, T_Pt2 = 9.13) come out exactly; exact arithmetic yields
8.19 / 9.19.  Either way Pt2 is dominant.
"""

import pytest

from repro.experiments import tab2_example


def test_tab2_worked_example(benchmark, archive):
    result = benchmark(tab2_example.run)
    archive("tab2_example", tab2_example.format_table(result))

    assert result.rows["{1,2,3}"].gamma == pytest.approx(0.94, abs=0.005)
    assert result.rows["{4,5}"].attempts == 0.0
    assert result.rounded_cost_pt1 == pytest.approx(8.13, abs=0.005)
    assert result.rounded_cost_pt2 == pytest.approx(9.13, abs=0.005)
    assert result.dominant_path == "Pt2"
