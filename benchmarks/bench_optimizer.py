"""Optimizer micro-benchmarks: search throughput and pruning payoff.

Not a paper figure, but the engineering claim behind Section 4: the
pruning rules exist to make the fault-tolerant plan search fast enough
for a cost-based optimizer.  These benchmarks time the full search
(top-k join orders x materialization configurations) with and without
pruning, plus the simulator and cost model in isolation.
"""

import pytest

from repro.core.cost_model import ClusterStats
from repro.core.enumeration import estimate_plan_cost, find_best_ft_plan
from repro.core.failure import HOUR
from repro.core.strategies import NoMatLineage
from repro.engine.cluster import Cluster
from repro.engine.executor import SimulatedEngine
from repro.engine.traces import generate_trace
from repro.joinorder import q5_join_graph, top_k_plans, tree_to_plan
from repro.stats.calibration import default_parameters
from repro.tpch.queries import build_query_plan


@pytest.fixture(scope="module")
def q5_plan():
    return build_query_plan("Q5", 100.0, default_parameters())


@pytest.fixture(scope="module")
def top5_plans():
    graph = q5_join_graph(100.0)
    params = default_parameters()
    return [tree_to_plan(ranked.tree, graph, params)
            for ranked in top_k_plans(graph, k=5)]


@pytest.fixture(scope="module")
def stats_hour():
    return ClusterStats(mtbf=HOUR, mttr=1.0, nodes=10)


def test_single_plan_search(benchmark, q5_plan, stats_hour):
    """Full 2^5 enumeration for one plan (the common per-query case)."""
    from repro.core.pruning import PruningConfig

    result = benchmark(
        find_best_ft_plan, [q5_plan], stats_hour,
        pruning=PruningConfig.none(),
    )
    assert result.pruning.configs_enumerated == 32


def test_top_k_search_with_pruning(benchmark, top5_plans, stats_hour):
    """Top-5 join orders x configurations, all pruning rules active."""
    from repro.core.pruning import PruningConfig

    result = benchmark(
        find_best_ft_plan, top5_plans, stats_hour,
        pruning=PruningConfig.all(),
    )
    assert result.cost > 0


def test_top_k_search_without_pruning(benchmark, top5_plans, stats_hour):
    from repro.core.pruning import PruningConfig

    result = benchmark(
        find_best_ft_plan, top5_plans, stats_hour,
        pruning=PruningConfig.none(),
    )
    assert result.pruning.configs_enumerated == 5 * 32


def test_pruning_reduces_estimated_paths(top5_plans, stats_hour):
    """The payoff the rules are for: fewer cost-model invocations."""
    from repro.core.pruning import PruningConfig

    unpruned = find_best_ft_plan(top5_plans, stats_hour,
                                 pruning=PruningConfig.none())
    pruned = find_best_ft_plan(top5_plans, stats_hour,
                               pruning=PruningConfig.all())
    assert pruned.pruning.paths_estimated < \
        unpruned.pruning.paths_estimated
    # and the answers agree up to the documented rule-1/2 boundary gaps
    assert pruned.cost <= unpruned.cost * 1.01


def test_cost_model_throughput(benchmark, q5_plan, stats_hour):
    """One collapse + path scoring (the search's inner loop)."""
    benchmark(estimate_plan_cost, q5_plan, stats_hour)


def test_simulator_throughput(benchmark, q5_plan, stats_hour):
    """One simulated run with failures (the evaluation's inner loop)."""
    cluster = Cluster(nodes=10, mttr=1.0)
    engine = SimulatedEngine(cluster)
    configured = NoMatLineage().configure(q5_plan, stats_hour)
    trace = generate_trace(10, HOUR, horizon=40_000.0, seed=1)
    result = benchmark(engine.execute, configured, trace)
    assert result.finished


def test_join_order_dp(benchmark):
    """Top-5 DP over the Q5 join graph."""
    graph = q5_join_graph(100.0)
    ranked = benchmark(top_k_plans, graph, 5)
    assert len(ranked) == 5


def test_rule3_memo_variants(top5_plans, stats_hour, archive):
    """Ablation: Rule 3's Eq. 9 dominance memo vs the bestT check alone.

    The paper suggests memoizing *multiple* best dominant paths (one per
    collapsed-operator count) for more aggressive pruning; this measures
    how many cost-model calls the richer memo saves on the top-5 search.
    """
    from repro.core import cost_model
    from repro.core.collapse import collapse_plan
    from repro.core.enumeration import enumerate_mat_configs
    from repro.core.paths import enumerate_paths, path_total_costs
    from repro.core.pruning import DominantPathMemo

    def search(use_dominance: bool) -> int:
        memo = DominantPathMemo()
        estimates = 0
        for plan in top5_plans:
            for config in enumerate_mat_configs(plan):
                candidate = plan.with_mat_config(config)
                collapsed = collapse_plan(candidate)
                dominant_costs, dominant_total = None, -1.0
                skipped = False
                for path in enumerate_paths(collapsed):
                    costs = path_total_costs(path)
                    if cost_model.path_cost_failure_free(costs) >= \
                            memo.best_cost:
                        skipped = True
                        break
                    if use_dominance and memo.dominates(costs):
                        skipped = True
                        break
                    estimates += 1
                    total = cost_model.path_cost(costs, stats_hour)
                    if total >= memo.best_cost:
                        skipped = True
                        break
                    if total > dominant_total:
                        dominant_total, dominant_costs = total, costs
                if not skipped and dominant_costs is not None:
                    memo.record_dominant(dominant_costs, dominant_total)
        return estimates

    with_dominance = search(True)
    without_dominance = search(False)
    archive("ablation_rule3_memo", "\n".join([
        "Ablation: Rule 3 memo variants (Q5 top-5 join orders x 32 "
        "configs, MTBF = 1 hour)",
        f"bestT checks only:          {without_dominance} cost-model calls",
        f"+ Eq. 9 dominance memo:     {with_dominance} cost-model calls",
    ]))
    assert with_dominance <= without_dominance
