"""Optimizer micro-benchmarks: search throughput and pruning payoff.

Not a paper figure, but the engineering claim behind Section 4: the
pruning rules exist to make the fault-tolerant plan search fast enough
for a cost-based optimizer.  These benchmarks time the full search
(top-k join orders x materialization configurations) with and without
pruning, plus the simulator and cost model in isolation.

Besides the pytest-benchmark tests, the module doubles as a script::

    PYTHONPATH=src python benchmarks/bench_optimizer.py

which times the fast and naive engines over a fixed slice of the TPC-H
Q5 join-order sweep, runs the synthetic large-DAG scaling sweep of the
sharded search (serial fast baseline vs ``sharded_search`` at
``--parallelism`` workers, bit-identity checked on every point), and
writes ``BENCH_optimizer.json`` at the repository root.  ``--quick``
shrinks the scaling ladder for CI.  See ``docs/perf.md`` for how to
read it.
"""

import argparse
import json
import os
import time
from pathlib import Path

import pytest

from repro.core.cost_model import ClusterStats
from repro.core.enumeration import (
    _find_best_fast,
    _find_best_naive,
    estimate_plan_cost,
    find_best_ft_plan,
)
from repro.core.failure import HOUR
from repro.core.pruning import PruningConfig
from repro.core.shard import sharded_search
from repro.core.strategies import NoMatLineage
from repro.engine.cluster import Cluster
from repro.engine.executor import SimulatedEngine
from repro.engine.traces import generate_trace
from repro.joinorder import (
    q5_join_graph,
    scaling_specs,
    synthetic_plan,
    top_k_plans,
    tree_to_plan,
)
from repro.stats.calibration import default_parameters
from repro.tpch.queries import build_query_plan


@pytest.fixture(scope="module")
def q5_plan():
    return build_query_plan("Q5", 100.0, default_parameters())


@pytest.fixture(scope="module")
def top5_plans():
    graph = q5_join_graph(100.0)
    params = default_parameters()
    return [tree_to_plan(ranked.tree, graph, params)
            for ranked in top_k_plans(graph, k=5)]


@pytest.fixture(scope="module")
def stats_hour():
    return ClusterStats(mtbf=HOUR, mttr=1.0, nodes=10)


def test_single_plan_search(benchmark, q5_plan, stats_hour):
    """Full 2^5 enumeration for one plan (the common per-query case)."""
    from repro.core.pruning import PruningConfig

    result = benchmark(
        find_best_ft_plan, [q5_plan], stats_hour,
        pruning=PruningConfig.none(),
    )
    assert result.pruning.configs_enumerated == 32


def test_top_k_search_with_pruning(benchmark, top5_plans, stats_hour):
    """Top-5 join orders x configurations, all pruning rules active."""
    from repro.core.pruning import PruningConfig

    result = benchmark(
        find_best_ft_plan, top5_plans, stats_hour,
        pruning=PruningConfig.all(),
    )
    assert result.cost > 0


def test_top_k_search_without_pruning(benchmark, top5_plans, stats_hour):
    from repro.core.pruning import PruningConfig

    result = benchmark(
        find_best_ft_plan, top5_plans, stats_hour,
        pruning=PruningConfig.none(),
    )
    assert result.pruning.configs_enumerated == 5 * 32


def test_pruning_reduces_estimated_paths(top5_plans, stats_hour):
    """The payoff the rules are for: fewer cost-model invocations."""
    from repro.core.pruning import PruningConfig

    unpruned = find_best_ft_plan(top5_plans, stats_hour,
                                 pruning=PruningConfig.none())
    pruned = find_best_ft_plan(top5_plans, stats_hour,
                               pruning=PruningConfig.all())
    assert pruned.pruning.paths_estimated < \
        unpruned.pruning.paths_estimated
    # and the answers agree up to the documented rule-1/2 boundary gaps
    assert pruned.cost <= unpruned.cost * 1.01


def test_fast_engine_q5_sweep(benchmark, top5_plans, stats_hour):
    """The default engine over the top-5 sweep, no pruning (pure
    enumeration throughput)."""
    from repro.core.pruning import PruningConfig

    result = benchmark(
        find_best_ft_plan, top5_plans, stats_hour,
        pruning=PruningConfig.none(), engine="fast",
    )
    assert result.pruning.configs_enumerated == 5 * 32


def test_naive_engine_q5_sweep(benchmark, top5_plans, stats_hour):
    """The reference engine over the identical sweep, for comparison."""
    from repro.core.pruning import PruningConfig

    result = benchmark(
        find_best_ft_plan, top5_plans, stats_hour,
        pruning=PruningConfig.none(), engine="naive",
    )
    assert result.pruning.configs_enumerated == 5 * 32


def test_engines_agree_on_sweep(top5_plans, stats_hour):
    from repro.core.pruning import PruningConfig

    fast = find_best_ft_plan(top5_plans, stats_hour,
                             pruning=PruningConfig.all(), engine="fast")
    naive = find_best_ft_plan(top5_plans, stats_hour,
                              pruning=PruningConfig.all(), engine="naive")
    assert fast.cost == naive.cost
    assert fast.mat_config == naive.mat_config


def test_cost_model_throughput(benchmark, q5_plan, stats_hour):
    """One collapse + path scoring (the search's inner loop)."""
    benchmark(estimate_plan_cost, q5_plan, stats_hour)


def test_simulator_throughput(benchmark, q5_plan, stats_hour):
    """One simulated run with failures (the evaluation's inner loop)."""
    cluster = Cluster(nodes=10, mttr=1.0)
    engine = SimulatedEngine(cluster)
    configured = NoMatLineage().configure(q5_plan, stats_hour)
    trace = generate_trace(10, HOUR, horizon=40_000.0, seed=1)
    result = benchmark(engine.execute, configured, trace)
    assert result.finished


def test_join_order_dp(benchmark):
    """Top-5 DP over the Q5 join graph."""
    graph = q5_join_graph(100.0)
    ranked = benchmark(top_k_plans, graph, 5)
    assert len(ranked) == 5


def test_rule3_memo_variants(top5_plans, stats_hour, archive):
    """Ablation: Rule 3's Eq. 9 dominance memo vs the bestT check alone.

    The paper suggests memoizing *multiple* best dominant paths (one per
    collapsed-operator count) for more aggressive pruning; this measures
    how many cost-model calls the richer memo saves on the top-5 search.
    """
    from repro.core import cost_model
    from repro.core.collapse import collapse_plan
    from repro.core.enumeration import enumerate_mat_configs
    from repro.core.paths import enumerate_paths, path_total_costs
    from repro.core.pruning import DominantPathMemo

    def search(use_dominance: bool) -> int:
        memo = DominantPathMemo()
        estimates = 0
        for plan in top5_plans:
            for config in enumerate_mat_configs(plan):
                candidate = plan.with_mat_config(config)
                collapsed = collapse_plan(candidate)
                dominant_costs, dominant_total = None, -1.0
                skipped = False
                for path in enumerate_paths(collapsed):
                    costs = path_total_costs(path)
                    if cost_model.path_cost_failure_free(costs) >= \
                            memo.best_cost:
                        skipped = True
                        break
                    if use_dominance and memo.dominates(costs):
                        skipped = True
                        break
                    estimates += 1
                    total = cost_model.path_cost(costs, stats_hour)
                    if total >= memo.best_cost:
                        skipped = True
                        break
                    if total > dominant_total:
                        dominant_total, dominant_costs = total, costs
                if not skipped and dominant_costs is not None:
                    memo.record_dominant(dominant_costs, dominant_total)
        return estimates

    with_dominance = search(True)
    without_dominance = search(False)
    archive("ablation_rule3_memo", "\n".join([
        "Ablation: Rule 3 memo variants (Q5 top-5 join orders x 32 "
        "configs, MTBF = 1 hour)",
        f"bestT checks only:          {without_dominance} cost-model calls",
        f"+ Eq. 9 dominance memo:     {with_dominance} cost-model calls",
    ]))
    assert with_dominance <= without_dominance


# ----------------------------------------------------------------------
# script mode: the fixed Q5 sweep slice behind BENCH_optimizer.json
# ----------------------------------------------------------------------
def _sweep_plans(join_orders: int):
    """A fixed slice of the Q5 join-order space (deterministic)."""
    from repro.joinorder import enumerate_join_trees

    graph = q5_join_graph(100.0)
    params = default_parameters()
    plans = []
    for index, tree in enumerate(enumerate_join_trees(graph)):
        if index >= join_orders:
            break
        plans.append(tree_to_plan(tree, graph, params))
    return plans


def _time_engine(engine, plans, stats, pruning):
    started = time.perf_counter()
    result = find_best_ft_plan(
        plans, stats, pruning=pruning, engine=engine,
        preflight_lint=False,
    )
    elapsed = time.perf_counter() - started
    return result, elapsed


def run_engine_comparison(join_orders: int = 60):
    """Time fast vs naive over the identical sweep; verify equal results."""
    from repro.core.pruning import PruningConfig

    plans = _sweep_plans(join_orders)
    stats = ClusterStats(mtbf=HOUR, mttr=1.0, nodes=10)
    sweeps = []
    for label, pruning in (("none", PruningConfig.none()),
                           ("all", PruningConfig.all())):
        fast, fast_s = _time_engine("fast", plans, stats, pruning)
        naive, naive_s = _time_engine("naive", plans, stats, pruning)
        configs = fast.pruning.configs_enumerated
        sweeps.append({
            "pruning": label,
            "join_orders": len(plans),
            "configs_enumerated": configs,
            "equal_results": bool(
                fast.cost == naive.cost
                and fast.mat_config == naive.mat_config
            ),
            "engines": {
                "fast": {
                    "seconds": round(fast_s, 6),
                    "configs_per_sec": round(configs / fast_s, 1),
                },
                "naive": {
                    "seconds": round(naive_s, 6),
                    "configs_per_sec": round(configs / naive_s, 1),
                },
            },
            "speedup": round(naive_s / fast_s, 2),
        })
    return {
        "benchmark": "q5_join_order_sweep",
        "query": "Q5",
        "scale_factor": 100.0,
        "mtbf_seconds": HOUR,
        "nodes": 10,
        "sweeps": sweeps,
    }


# ----------------------------------------------------------------------
# script mode: the synthetic large-DAG scaling sweep (sharded search)
# ----------------------------------------------------------------------
def _result_key(result, plan_index: int = 0):
    """A ``SearchResult`` as the sharded engine's ``(cost, plan, mask)``."""
    mask = 0
    for bit, (_op, flag) in enumerate(result.mat_config):
        if flag:
            mask |= 1 << bit
    return (result.cost, plan_index, mask)


def _best_of(repeats, thunk):
    """(best seconds, last result) over ``repeats`` runs."""
    best_s, result = float("inf"), None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        result = thunk()
        best_s = min(best_s, time.perf_counter() - started)
    return best_s, result


def run_scaling_sweep(
    sizes=(20, 40, 60, 100),
    parallelism: int = 4,
    config_limit: int = 16384,
    repeats: int = 2,
    naive_max_size: int = 20,
):
    """Serial fast engine vs the sharded search on synthetic DAGs.

    Each point scans the same capped Gray subspace (``config_limit``
    configurations) of one seeded synthetic plan under a rare-failure
    regime (MTBF = 20x the plan's total runtime -- the regime where
    Rule 3's shared bound pays off).  The naive oracle additionally
    certifies the smallest (tractable) points.  Every engine must
    return the identical ``(cost, plan, mask)`` key.
    """
    pruning = PruningConfig.all()
    shards = 4 * parallelism
    points = []
    for spec in scaling_specs(tuple(sizes)):
        plan = synthetic_plan(spec)
        base = sum(op.runtime_cost for op in plan.operators.values())
        stats = ClusterStats(mtbf=base * 20.0, mttr=base * 0.1,
                             const_pipe=0.9)
        serial_s, serial = _best_of(repeats, lambda: _find_best_fast(
            [plan], stats, pruning, False, config_limit=config_limit))
        sharded_s, (sharded_key, sharded_stats) = _best_of(
            repeats, lambda: sharded_search(
                [plan], stats, pruning, parallelism=parallelism,
                shards=shards, config_limit=config_limit))
        equal = sharded_key == _result_key(serial)
        naive_checked = spec.n_joins <= naive_max_size
        if naive_checked:
            naive = _find_best_naive([plan], stats, pruning, False,
                                     config_limit=config_limit)
            equal = equal and sharded_key == _result_key(naive)
        enumerated = sharded_stats.configs_enumerated
        points.append({
            "n_free_operators": len(plan.free_operators),
            "seed": spec.seed,
            "config_limit": config_limit,
            "configs_enumerated": enumerated,
            "equal_results": bool(equal),
            "naive_checked": naive_checked,
            "serial_fast": {
                "seconds": round(serial_s, 6),
                "configs_per_sec": round(enumerated / serial_s, 1),
            },
            "sharded": {
                "seconds": round(sharded_s, 6),
                "configs_per_sec": round(enumerated / sharded_s, 1),
                "parallelism": parallelism,
                "shards": shards,
                "scored": sharded_stats.paths_estimated,
                "bound_skips": sharded_stats.rule3_plan_cutoffs,
                "bound_efficiency": round(
                    sharded_stats.rule3_plan_cutoffs / enumerated, 4),
            },
            "speedup": round(serial_s / sharded_s, 2),
            "shard_efficiency": round(
                serial_s / (sharded_s * parallelism), 3),
        })
    return {
        "benchmark": "synthetic_scaling_sweep",
        "regime": "rare-failure (mtbf = 20x plan runtime, "
                  "mttr = 0.1x, const_pipe = 0.9)",
        "pruning": "all",
        "cpu_count": os.cpu_count(),
        "points": points,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Time the fast vs naive search engines on a fixed "
                    "slice of the TPC-H Q5 join-order sweep, plus the "
                    "sharded search on the synthetic scaling ladder."
    )
    parser.add_argument("--join-orders", type=int, default=60,
                        help="sweep slice size (default 60)")
    parser.add_argument("--parallelism", type=int, default=4,
                        help="sharded-search worker count (default 4)")
    parser.add_argument("--quick", action="store_true",
                        help="CI mode: smaller ladder (n=20,40), "
                             "2048-config cap, single timing run")
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_optimizer.json",
        help="where to write the JSON report "
             "(default <repo>/BENCH_optimizer.json)",
    )
    args = parser.parse_args(argv)
    report = run_engine_comparison(join_orders=args.join_orders)
    if args.quick:
        report["scaling"] = run_scaling_sweep(
            sizes=(20, 40), parallelism=args.parallelism,
            config_limit=2048, repeats=1)
    else:
        report["scaling"] = run_scaling_sweep(
            parallelism=args.parallelism)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    for sweep in report["sweeps"]:
        engines = sweep["engines"]
        print(f"pruning={sweep['pruning']:<5s} "
              f"fast {engines['fast']['seconds']:.3f}s "
              f"({engines['fast']['configs_per_sec']:.0f} cfg/s)  "
              f"naive {engines['naive']['seconds']:.3f}s "
              f"({engines['naive']['configs_per_sec']:.0f} cfg/s)  "
              f"speedup {sweep['speedup']:.1f}x  "
              f"equal={sweep['equal_results']}")
    for point in report["scaling"]["points"]:
        sharded = point["sharded"]
        print(f"n={point['n_free_operators']:<3d} "
              f"serial {point['serial_fast']['seconds']:.3f}s  "
              f"sharded {sharded['seconds']:.3f}s "
              f"(p={sharded['parallelism']}, "
              f"{sharded['configs_per_sec']:.0f} cfg/s, "
              f"bound_eff={sharded['bound_efficiency']:.2f})  "
              f"speedup {point['speedup']:.2f}x  "
              f"equal={point['equal_results']}")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
