"""Figure 13: effectiveness of the pruning rules.

Sweeps all 1344 cross-product-free join orders of TPC-H Q5 (x 32
materialization configurations = 43,008 fault-tolerant plans) and
measures the fraction pruned by each rule for MTBFs of one week, one day
and one hour.

Expected shapes (paper Section 5.5): Rule 1 prunes a substantial,
MTBF-invariant fraction; Rules 2 and 3 prune no less at higher MTBFs;
all rules combined dominate each individual rule.  Absolute percentages
differ from the paper's because they depend on the optimizer's internal
cost units (see the experiment module's docstring).
"""

from repro.experiments import fig13_pruning


def test_fig13_pruning_effectiveness(benchmark, archive):
    result = benchmark.pedantic(fig13_pruning.run, rounds=1, iterations=1)
    archive("fig13_pruning", fig13_pruning.format_table(result))

    # the paper's join-order count
    assert result.join_orders == 1344
    assert all(e.total_ft_plans == 43_008 for e in result.effects)

    week, day, hour = result.effects

    # rule 1 is independent of the MTBF
    assert week.rule1_percent == day.rule1_percent == hour.rule1_percent
    assert week.rule1_percent > 10.0

    # rules 2 and 3 prune no less at higher MTBFs
    assert week.rule2_percent >= hour.rule2_percent
    # all rules dominate each individual eager rule
    for effect in result.effects:
        assert effect.all_rules_percent >= effect.rule1_percent - 1e-9
        assert effect.all_rules_percent >= effect.rule2_percent - 1e-9
