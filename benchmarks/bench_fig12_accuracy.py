"""Figure 12: accuracy of the cost model (Q5 @ SF 100).

Panel (a): actual vs estimated runtime of the chosen plan across MTBFs
from one month to 30 minutes.  Panel (b): actual vs estimated for all 32
materialization configurations at MTBF = 1 hour.

Expected shapes (paper Exp. 3a): 0 % error at high MTBF, growing
underestimation (up to ~30 %) at low MTBF, and a strong correlation
between the estimated and actual ranking of the 32 configurations.
"""

from repro.experiments import fig12_accuracy


def test_fig12_accuracy(benchmark, archive):
    result = benchmark.pedantic(fig12_accuracy.run, rounds=1, iterations=1)
    archive("fig12_accuracy", fig12_accuracy.format_table(result))

    month = result.by_mtbf[0]
    assert abs(month.error_percent) < 1.0

    # the model underestimates under high failure rates, within ~35 %
    low_mtbf_points = result.by_mtbf[-2:]
    assert any(p.error_percent < -5.0 for p in low_mtbf_points)
    assert all(p.error_percent > -40.0 for p in low_mtbf_points)

    # panel (b): estimated and actual rankings correlate strongly
    assert len(result.by_config) == 32
    assert result.rank_correlation > 0.9

    # the estimated range matches the paper's regime: the cheapest
    # configuration is ~baseline + one wasted half-run, the most
    # expensive materializes the big lineitem join
    cheapest, priciest = result.by_config[0], result.by_config[-1]
    assert priciest.estimated / cheapest.estimated > 1.2
    assert priciest.actual > cheapest.actual
