"""Benchmarks for the Section 7 future-work extensions.

Not paper figures -- these quantify the two extensions the paper's
conclusion sketches, implemented in this reproduction:

1. **Mid-operator checkpointing** (``repro.core.checkpointing``): a
   long-running operator snapshots its state at the Young-Daly interval,
   so mid-operator failures resume from the last snapshot.  Measured on
   a 2000 s UDF under MTBF = 10 min: without snapshots the operator is
   effectively unable to finish; with them it finishes with bounded
   overhead.
2. **Adaptive re-optimization** (``repro.engine.adaptive``): the
   materialization configuration is re-searched at every group boundary
   using observed runtimes.  Measured with a 10x cost underestimate: the
   static scheme skips the checkpoints it badly needs, the adaptive
   runner inserts them after the first observation.
"""

import pytest

from repro.core.cost_model import ClusterStats
from repro.core.plan import Operator, Plan, linear_plan
from repro.core.strategies import (
    ConfiguredPlan,
    CostBased,
    CostBasedWithOpCheckpoints,
    NoMatLineage,
    RecoveryMode,
)
from repro.engine.adaptive import AdaptiveExecutor
from repro.engine.cluster import Cluster
from repro.engine.executor import SimulatedEngine
from repro.engine.traces import generate_trace_set
from repro.stats.perturbation import PerturbationKind, perturb_plan


def _long_udf_plan() -> Plan:
    """A 2000 s snapshot-capable UDF between two cheap stages."""
    plan = Plan()
    plan.add_operator(Operator(1, "Prepare", 60.0, 2.0,
                               state_ckpt_cost=1.0))
    plan.add_operator(Operator(2, "LongUDF", 2000.0, 20.0,
                               state_ckpt_cost=5.0))
    plan.add_operator(Operator(3, "Deliver", 30.0, 1.0,
                               materialize=True, free=False,
                               state_ckpt_cost=1.0))
    plan.add_edge(1, 2)
    plan.add_edge(2, 3)
    return plan


def _mean(engine, configured, traces):
    from repro.engine.coordinator import execute_with_extension

    runtimes = [
        execute_with_extension(engine, configured, trace).runtime
        for trace in traces
    ]
    return sum(runtimes) / len(runtimes)


def test_mid_operator_checkpointing(benchmark, archive):
    """Extension 1: snapshots rescue long operators on flaky nodes."""
    plan = _long_udf_plan()
    mtbf = 600.0
    stats = ClusterStats(mtbf=mtbf, mttr=1.0, nodes=4)
    cluster = Cluster(nodes=4, mttr=1.0)
    engine = SimulatedEngine(cluster)
    traces = generate_trace_set(4, mtbf, horizon=400_000.0, count=6,
                                base_seed=31)

    def measure():
        plain = _mean(engine, CostBased().configure(plan, stats), traces)
        chunked_configured = CostBasedWithOpCheckpoints().configure(
            plan, stats
        )
        chunked = _mean(engine, chunked_configured, traces)
        return plain, chunked, chunked_configured

    plain, chunked, configured = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    spec = next(iter(configured.op_checkpoints.values()))
    lines = [
        "Extension: mid-operator checkpointing "
        "(2000s UDF, MTBF = 10 min/node, 4 nodes)",
        f"plain cost-based:        mean runtime {plain:10.0f}s",
        f"with operator snapshots: mean runtime {chunked:10.0f}s "
        f"(interval {spec.interval:.0f}s)",
        f"speedup: {plain / chunked:.1f}x",
    ]
    archive("extension_op_checkpointing", "\n".join(lines))

    assert chunked < plain / 2          # snapshots pay for themselves
    assert configured.op_checkpoints    # the scheme actually chunked


def test_adaptive_reoptimization(benchmark, archive):
    """Extension 2: observed runtimes correct a 10x underestimate."""
    # materialization costs half an operator's runtime: at the *believed*
    # (10x cheaper) scale the checkpoints are not worth their price, at
    # the true scale they are -- so the misestimate flips the decision
    true_plan = linear_plan(
        [(400.0, 200.0), (400.0, 200.0), (400.0, 200.0), (400.0, 200.0)]
    )
    estimated = perturb_plan(true_plan, PerturbationKind.COMPUTE_AND_IO,
                             0.1)
    mtbf = 600.0
    cluster = Cluster(nodes=4, mttr=1.0)
    engine = SimulatedEngine(cluster)
    stats = ClusterStats(mtbf=mtbf, mttr=1.0, nodes=4)
    traces = generate_trace_set(4, mtbf, horizon=400_000.0, count=6,
                                base_seed=57)

    def measure():
        misled = CostBased().configure(estimated, stats)
        static_plan = true_plan.with_mat_config({
            op_id: misled.plan[op_id].materialize
            for op_id in true_plan.free_operators
        })
        static_configured = ConfiguredPlan(
            plan=static_plan, recovery=RecoveryMode.FINE_GRAINED,
            scheme="static-misled",
        )
        static = _mean(engine, static_configured, traces)
        adaptive_runner = AdaptiveExecutor(engine, stats)
        adaptive_runs = [
            adaptive_runner.execute(true_plan, estimated_plan=estimated,
                                    trace=trace)
            for trace in traces
        ]
        adaptive = sum(r.runtime for r in adaptive_runs) / len(
            adaptive_runs
        )
        oracle = _mean(
            engine, CostBased().configure(true_plan, stats), traces
        )
        correction = adaptive_runs[0].final_correction
        return static, adaptive, oracle, correction

    static, adaptive, oracle, correction = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    lines = [
        "Extension: adaptive re-optimization "
        "(4 x 400s chain, optimizer misled 10x, MTBF = 10 min/node)",
        f"static (misled estimates):  mean runtime {static:9.0f}s",
        f"adaptive (learns on line):  mean runtime {adaptive:9.0f}s "
        f"(correction factor converged to {correction:.1f})",
        f"oracle (true estimates):    mean runtime {oracle:9.0f}s",
    ]
    archive("extension_adaptive", "\n".join(lines))

    assert adaptive < static * 0.95     # adapting pays off
    assert correction > 3.0             # and it really learned the 10x
    assert oracle <= adaptive + 1e-6    # but hindsight stays unbeaten
