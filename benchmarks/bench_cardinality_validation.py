"""Cardinality-model validation bench.

Generates TPC-H databases at two small scale factors, really executes
the workload in the mini engine, and compares each operator's measured
output cardinality against the analytical model -- the validation that
licences simulating the paper's SF 1-1000 experiments from the model
(DESIGN.md §2).
"""

from repro.experiments import cardinality_validation


def test_cardinality_model_validation(benchmark, archive):
    result = benchmark.pedantic(
        cardinality_validation.run, rounds=1, iterations=1
    )
    archive("cardinality_validation",
            cardinality_validation.format_table(result))

    # the model is close on average and never wildly off on the
    # matched operators (small-sample noise bounds the tail)
    assert result.mean_absolute_error < 0.20
    assert result.worst_absolute_error < 0.60
    # coverage: all four queries, both scale factors
    assert {p.query for p in result.points} == {"Q3", "Q5", "Q10", "Q2C"}
    assert len({p.scale_factor for p in result.points}) == 2
