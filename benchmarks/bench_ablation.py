"""Ablations of the design choices called out in DESIGN.md.

1. **Wasted-runtime approximation** -- the paper replaces the exact
   integral ``w(c)`` (Eq. 3) by ``t(c)/2`` (Eq. 4).  The ablation shows
   the approximation changes estimates by well under 10 % at realistic
   MTBFs and never changes the chosen configuration here.
2. **Per-node vs cluster-scaled MTBF** -- the paper's model rates each
   sub-plan against the per-node MTBF (optimistic); scaling by the node
   count (the superposition rate) makes the model pessimistic instead.
   The ablation quantifies both errors against the simulator.
3. **Fault-tolerant vs node-local intermediate storage** -- Section 2.2's
   caveat: with local storage, failures destroy materialized inputs and
   the engine pays lineage recomputation, so the model becomes more
   optimistic than with the paper's assumed fault-tolerant medium.
"""

import pytest

from repro.core.cost_model import ClusterStats
from repro.core.failure import HOUR
from repro.core.strategies import CostBased
from repro.engine.cluster import Cluster
from repro.engine.coordinator import execute_with_extension
from repro.engine.executor import SimulatedEngine
from repro.engine.storage import LocalStorage
from repro.engine.traces import generate_trace_set
from repro.stats.calibration import default_parameters
from repro.tpch.queries import build_query_plan


@pytest.fixture(scope="module")
def q5_plan():
    return build_query_plan("Q5", 100.0, default_parameters())


def _mean_runtime(engine, configured, mtbf, traces):
    runtimes = [
        execute_with_extension(engine, configured, trace).runtime
        for trace in traces
    ]
    return sum(runtimes) / len(runtimes)


def test_exact_vs_approximate_wasted_runtime(benchmark, q5_plan, archive):
    """Ablation 1: Eq. 3 vs the paper's t/2 approximation."""
    stats = ClusterStats(mtbf=HOUR, mttr=1.0, nodes=10)

    def run_both():
        approx = CostBased(exact_waste=False).configure(q5_plan, stats)
        exact = CostBased(exact_waste=True).configure(q5_plan, stats)
        return approx, exact

    approx, exact = benchmark(run_both)
    lines = [
        "Ablation: wasted-runtime model (Q5 @ SF 100, MTBF = 1 hour)",
        f"approx (t/2): cost={approx.search.cost:10.1f}  "
        f"materializes={approx.search.materialized_ids}",
        f"exact (Eq.3): cost={exact.search.cost:10.1f}  "
        f"materializes={exact.search.materialized_ids}",
    ]
    archive("ablation_wasted_runtime", "\n".join(lines))

    # the exact integral wastes slightly less -> slightly lower estimate
    assert exact.search.cost <= approx.search.cost
    assert exact.search.cost > 0.9 * approx.search.cost
    # and the selected configuration agrees
    assert exact.search.materialized_ids == approx.search.materialized_ids


def test_per_node_vs_scaled_mtbf(benchmark, q5_plan, archive):
    """Ablation 2: MTBF_cost = MTBF (paper) vs MTBF / n (superposition)."""
    mtbf = HOUR
    cluster = Cluster(nodes=10, mttr=1.0)
    engine = SimulatedEngine(cluster)
    per_node = ClusterStats(mtbf=mtbf, mttr=1.0, nodes=10)
    scaled = ClusterStats(mtbf=mtbf, mttr=1.0, nodes=10,
                          scale_mtbf_by_nodes=True)

    def measure():
        rows = []
        traces = generate_trace_set(10, mtbf, horizon=40_000.0,
                                    count=8, base_seed=4242)
        for label, stats in (("per-node", per_node), ("scaled", scaled)):
            configured = CostBased().configure(q5_plan, stats)
            actual = _mean_runtime(engine, configured, mtbf, traces)
            rows.append((label, configured.search.cost, actual))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["Ablation: MTBF scaling (Q5 @ SF 100, MTBF = 1 hour)",
             f"{'model':<10s}{'estimated(s)':>14s}{'actual(s)':>12s}"
             f"{'error':>9s}"]
    for label, estimated, actual in rows:
        error = 100.0 * (estimated - actual) / actual
        lines.append(f"{label:<10s}{estimated:>14.0f}{actual:>12.0f}"
                     f"{error:>8.1f}%")
    archive("ablation_mtbf_scaling", "\n".join(lines))

    (_, est_node, act_node), (_, est_scaled, act_scaled) = rows
    # the paper's per-node model underestimates; the scaled model
    # overestimates (it budgets ~10x the failures each share sees)
    assert est_node < act_node
    assert est_scaled > act_scaled


def test_weibull_failures(benchmark, q5_plan, archive):
    """Ablation: bursty (Weibull, shape 0.7) vs memoryless failures.

    The paper assumes exponential inter-arrivals; field studies find
    Weibull with shape < 1 fits node failures better.  With the *mean*
    MTBF held fixed, bursty failures cluster: quiet stretches help, but
    clusters hit recovery attempts too.  The ablation measures how the
    cost-based plan (chosen under the exponential assumption) fares when
    reality is bursty.
    """
    from repro.engine.traces import generate_weibull_trace

    mtbf = HOUR
    stats = ClusterStats(mtbf=mtbf, mttr=1.0, nodes=10)
    cluster = Cluster(nodes=10, mttr=1.0)
    engine = SimulatedEngine(cluster)
    configured = CostBased().configure(q5_plan, stats)

    def measure():
        results = {}
        for label, generator in (
            ("exponential", None),
            ("weibull(0.7)", 0.7),
            ("weibull(0.5)", 0.5),
        ):
            runtimes = []
            for seed in range(8):
                if generator is None:
                    from repro.engine.traces import generate_trace

                    trace = generate_trace(10, mtbf, 80_000.0,
                                           seed=6000 + seed)
                else:
                    trace = generate_weibull_trace(
                        10, mtbf, 80_000.0, seed=6000 + seed,
                        shape=generator,
                    )
                runtimes.append(
                    execute_with_extension(engine, configured,
                                           trace).runtime
                )
            results[label] = sum(runtimes) / len(runtimes)
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["Ablation: failure process (Q5 @ SF 100, mean MTBF = 1 hour, "
             "cost-based plan)",
             f"estimate (exponential model): {configured.search.cost:.0f}s"]
    for label, runtime in results.items():
        lines.append(f"{label:<14s} mean actual runtime: {runtime:.0f}s")
    archive("ablation_weibull", "\n".join(lines))

    # all processes share the mean rate, so runtimes stay in one regime
    values = list(results.values())
    assert max(values) < min(values) * 1.6


def test_success_percentile_sweep(benchmark, q5_plan, archive):
    """Ablation: the percentile S (paper fixes S = 0.95).

    S controls how pessimistically the model budgets retries: low S
    trusts the first attempt (fewer checkpoints), high S budgets many
    retries (more checkpoints).  The sweep shows the chosen
    configuration's *actual* runtime is flat around the paper's 0.95 --
    the choice is not finely tuned.
    """
    mtbf = HOUR
    cluster = Cluster(nodes=10, mttr=1.0)
    engine = SimulatedEngine(cluster)
    traces = generate_trace_set(10, mtbf, horizon=40_000.0,
                                count=8, base_seed=909)

    def sweep():
        rows = []
        for percentile in (0.50, 0.80, 0.90, 0.95, 0.99):
            stats = ClusterStats(mtbf=mtbf, mttr=1.0, nodes=10,
                                 success_percentile=percentile)
            configured = CostBased().configure(q5_plan, stats)
            actual = _mean_runtime(engine, configured, mtbf, traces)
            rows.append((percentile, configured.search.materialized_ids,
                         configured.search.cost, actual))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation: success percentile S (Q5 @ SF 100, MTBF = 1 hour)",
             f"{'S':>6s}  {'materializes':<16s}{'estimated(s)':>13s}"
             f"{'actual(s)':>11s}"]
    for percentile, mats, estimated, actual in rows:
        lines.append(f"{percentile:>6.2f}  {str(list(mats)):<16s}"
                     f"{estimated:>13.0f}{actual:>11.0f}")
    archive("ablation_percentile", "\n".join(lines))

    actuals = [actual for _, _, _, actual in rows]
    paper_choice = dict(
        (p, actual) for p, _, _, actual in rows
    )[0.95]
    # the paper's S = 0.95 is within 10 % of the best S in the sweep
    assert paper_choice <= min(actuals) * 1.10


def test_fault_tolerant_vs_local_storage(benchmark, q5_plan, archive):
    """Ablation 3: Section 2.2 -- losing intermediates costs extra."""
    mtbf = HOUR
    stats = ClusterStats(mtbf=mtbf, mttr=1.0, nodes=10)
    configured = CostBased().configure(q5_plan, stats)
    traces = generate_trace_set(10, mtbf, horizon=40_000.0,
                                count=8, base_seed=777)

    def measure():
        results = {}
        for label, cluster in (
            ("fault-tolerant", Cluster(nodes=10, mttr=1.0)),
            ("local", Cluster(nodes=10, mttr=1.0,
                              storage=LocalStorage())),
        ):
            engine = SimulatedEngine(cluster)
            results[label] = _mean_runtime(engine, configured, mtbf, traces)
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["Ablation: storage medium (Q5 @ SF 100, MTBF = 1 hour)",
             f"estimate (assumes durable intermediates): "
             f"{configured.search.cost:.0f}s"]
    for label, actual in results.items():
        lines.append(f"{label:<16s} actual mean runtime: {actual:.0f}s")
    archive("ablation_storage", "\n".join(lines))

    # local storage pays lineage recomputation on every retry
    assert results["local"] >= results["fault-tolerant"]
