"""Figure 11: overhead vs. MTBF (Q5 @ SF 100, ~905 s baseline).

Paper reference values (overhead %):

==================  ========  ========  ========
scheme              1 week    1 day     1 hour
==================  ========  ========  ========
all-mat             34.13     40.93     73.83
no-mat (lineage)    0         29.34     84.66
no-mat (restart)    0         57.74     231.80
cost-based          0         29.30     52.12
==================  ========  ========  ========

Expected shapes: at one week the no-mat schemes and cost-based are free
while all-mat pays exactly the ~34 % tax; overheads grow as the MTBF
drops, restart fastest; cost-based is always lowest.
"""

import pytest

from repro.experiments import fig11_mtbf


def test_fig11_varying_mtbf(benchmark, archive):
    result = benchmark.pedantic(fig11_mtbf.run, rounds=1, iterations=1)
    archive("fig11_varying_mtbf", fig11_mtbf.format_table(result))

    week = {c.scheme: c for c in
            result.by_cluster["Cluster A (10 nodes, MTBF=1 week)"]}
    day = {c.scheme: c for c in
           result.by_cluster["Cluster B (10 nodes, MTBF=1 day)"]}
    hour = {c.scheme: c for c in
            result.by_cluster["Cluster C (10 nodes, MTBF=1 hour)"]}

    # the baseline anchor
    assert result.baseline == pytest.approx(905.33, rel=0.02)

    # paper row 1: all-mat = 34.13 / 40.93 / rising
    assert week["all-mat"].overhead_percent == pytest.approx(34.1, abs=2.0)
    assert day["all-mat"].overhead_percent == pytest.approx(40.9, abs=6.0)
    assert hour["all-mat"].overhead_percent > day["all-mat"].overhead_percent

    # paper rows 2-4 at one week: everything else is free
    for scheme in ("no-mat (lineage)", "no-mat (restart)", "cost-based"):
        assert abs(week[scheme].overhead_percent) < 3.0

    # restart degrades fastest at one hour
    assert hour["no-mat (restart)"].overhead_percent > \
        hour["no-mat (lineage)"].overhead_percent

    # cost-based is lowest (or tied) in every cluster
    for cells in (week, day, hour):
        finished = [c.overhead_percent for s, c in cells.items()
                    if not c.aborted and s != "cost-based"]
        assert cells["cost-based"].overhead_percent <= min(finished) + 5.0
