"""Figure 8: scheme overheads for varying queries (Q1/Q3/Q5/Q1C/Q2C).

TPC-H SF = 100, 10 nodes; MTBF = 1.1x baseline (panel a) and 10x baseline
(panel b), 10 failure traces per setting shared across schemes.

Expected shapes (paper Section 5.2): no-mat (restart) aborts every query
at low MTBF; the cost-based scheme always has the least or comparable
overhead; Q1 (no free operator) ties the fine-grained schemes; the
all-mat scheme pays a clear materialization tax on Q1C/Q2C.
"""

from repro.experiments import fig8_queries


def test_fig8_varying_queries(benchmark, archive):
    result = benchmark.pedantic(fig8_queries.run, rounds=1, iterations=1)
    archive("fig8_varying_queries", fig8_queries.format_table(result))

    low = {(c.query, c.scheme): c for c in result.low_mtbf_cells}
    high = {(c.query, c.scheme): c for c in result.high_mtbf_cells}

    # restart aborts everything under high failure rates
    for query in ("Q1", "Q3", "Q5", "Q1C", "Q2C"):
        assert low[(query, "no-mat (restart)")].aborted

    # cost-based is best or tied per query at both rates
    for cells in (low, high):
        for query in ("Q1", "Q3", "Q5", "Q1C", "Q2C"):
            finished = [
                cell.overhead_percent
                for (q, scheme), cell in cells.items()
                if q == query and not cell.aborted
                and scheme != "cost-based"
            ]
            assert cells[(query, "cost-based")].overhead_percent <= \
                min(finished) * 1.15 + 8.0

    # Q1C's mid-plan aggregate gives cost-based a clear win over all-mat
    assert high[("Q1C", "all-mat")].overhead_percent > \
        high[("Q1C", "cost-based")].overhead_percent
