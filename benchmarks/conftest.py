"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures.  The
formatted table is printed (visible with ``pytest -s``) and archived under
``benchmarks/results/`` so the paper-vs-measured comparison in
EXPERIMENTS.md can be refreshed from the artifacts.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def archive(results_dir):
    """Persist a rendered experiment table and echo it to stdout."""

    def _archive(name: str, table: str) -> None:
        (results_dir / f"{name}.txt").write_text(table + "\n")
        print(f"\n{table}\n")

    return _archive
