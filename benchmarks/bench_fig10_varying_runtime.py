"""Figure 10: overhead vs. query runtime (Q5, SF 1 to 3000, MTBF = 1 day).

Expected shapes (paper Exp. 2a): all schemes start near 0 % for
short-running queries except all-mat, whose overhead starts at Q5's
~34 % materialization tax; the no-mat schemes' overhead grows with
runtime (restart fastest); the cost-based scheme is the lower envelope.
"""

from repro.experiments import fig10_runtime


def test_fig10_varying_runtime(benchmark, archive):
    result = benchmark.pedantic(fig10_runtime.run, rounds=1, iterations=1)
    archive("fig10_varying_runtime", fig10_runtime.format_table(result))

    cells = {(c.query, c.scheme): c for c in result.cells}
    shortest = f"Q5@SF{result.scale_factors[0]:g}"
    longest = f"Q5@SF{result.scale_factors[-1]:g}"

    # short queries: no-mat schemes are free, all-mat pays the tax
    assert cells[(shortest, "cost-based")].overhead_percent < 5.0
    assert cells[(shortest, "all-mat")].overhead_percent > 25.0

    # overhead grows with runtime for the no-mat schemes
    lineage = [c for c in result.cells if c.scheme == "no-mat (lineage)"]
    assert lineage[-1].overhead_percent > lineage[0].overhead_percent + 20

    # cost-based stays the lower envelope for the longest query
    finished = [
        cells[(longest, s)].overhead_percent
        for s in ("all-mat", "no-mat (lineage)", "no-mat (restart)")
        if not cells[(longest, s)].aborted
    ]
    assert cells[(longest, "cost-based")].overhead_percent <= \
        min(finished) * 1.2 + 5.0

    # for long queries the cost-based scheme materializes something
    assert cells[(longest, "cost-based")].materialized_ids != ()
