"""Load harness for the advisory service (``repro.serve``).

Measures what the caching/batching layers of PR 8 actually buy: the
harness stands up the real HTTP service (ephemeral port), fires
thousands of concurrent ``POST /advise`` requests from a zipf-skewed
mix of (TPC-H plan, jittered cluster stats, scheme) keys -- the traffic
shape a fleet-wide advisor sees, where a few hot queries dominate and
every request carries slightly different measured stats -- and writes
``BENCH_serve.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full load
    PYTHONPATH=src python benchmarks/bench_serve.py --quick    # CI mode

Reported numbers:

* ``latency_ms`` p50/p90/p99/max over every request (client-observed,
  connection setup included);
* ``throughput_rps`` (completed requests / wall seconds);
* ``cache`` hit/miss/eviction counts and ``hit_rate``;
* ``counters`` -- the engine's ``serve.*`` traffic accounting
  (coalesced followers, sheds, searches actually run);
* ``advice_equal_direct`` -- every sampled response compared against a
  fresh, cache-less, serial :func:`repro.serve.direct_advice` call; the
  bit-identity acceptance gate.

The zipf sampling and the stats jitter are seeded: two runs issue the
same request sequence.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import threading
import time
import urllib.request
from pathlib import Path
from typing import Any, Dict, List, Tuple

from repro import obs
from repro.core.cost_model import ClusterStats
from repro.core.plan import Operator, Plan
from repro.core.serialize import plan_to_dict, stats_to_dict
from repro.serve import AdvisoryEngine, direct_advice
from repro.serve.app import create_server
from repro.stats.calibration import default_parameters
from repro.tpch.queries import build_query_plan

SEED = 20150531  # SIGMOD'15


def paper_plan() -> Plan:
    """The Figure 2/3 plan (same shape the test suite pins)."""
    operators = [
        Operator(1, "Scan R", 1.0, 1.0),
        Operator(2, "Scan S", 2.0, 1.0),
        Operator(3, "HashJoin", 2.0, 1.0, materialize=True),
        Operator(4, "Repartition", 1.0, 1.0),
        Operator(5, "MapUDF", 2.0, 1.0, materialize=True),
        Operator(6, "ReduceUDF", 1.0, 0.0, materialize=True, free=False),
        Operator(7, "ReduceUDF", 2.0, 0.0, materialize=True, free=False),
    ]
    edges = [(1, 3), (2, 3), (3, 4), (4, 5), (5, 6), (5, 7)]
    return Plan.from_edges(operators, edges)


def build_workload() -> List[Dict[str, Any]]:
    """The distinct request keys, hottest first (zipf rank order).

    Plans x cluster profiles x schemes.  The profiles are the *centers*;
    each issued request jitters mtbf/mttr around its center so raw stats
    are almost never bit-equal -- cache hits must come from bucketing.
    """
    params = default_parameters()
    plans = [
        ("paper-fig2", paper_plan()),
        ("Q3@sf100", build_query_plan("Q3", 100.0, params)),
        ("Q5@sf100", build_query_plan("Q5", 100.0, params)),
        ("Q1@sf100", build_query_plan("Q1", 100.0, params)),
        ("Q10@sf100", build_query_plan("Q10", 100.0, params)),
        ("Q5@sf10", build_query_plan("Q5", 10.0, params)),
        ("Q6@sf100", build_query_plan("Q6", 100.0, params)),
        ("Q13@sf100", build_query_plan("Q13", 100.0, params)),
    ]
    profiles = [
        ("hourly-failures", 3600.0, 60.0, 10),
        ("daily-failures", 86400.0, 300.0, 100),
        ("table2-adversarial", 60.0, 0.0, 1),
        ("flaky-cluster", 600.0, 30.0, 20),
    ]
    schemes = ["cost-based", "cost-based", "cost-based", "all-mat"]
    keys: List[Dict[str, Any]] = []
    for (plan_name, plan), (profile, mtbf, mttr, nodes), scheme in (
        (p, c, s) for p in plans for c in profiles for s in schemes
    ):
        keys.append({
            "plan_name": plan_name,
            "plan": plan,
            "profile": profile,
            "mtbf": mtbf,
            "mttr": mttr,
            "nodes": nodes,
            "scheme": scheme,
        })
    return keys


def sample_requests(
    keys: List[Dict[str, Any]], count: int, zipf_s: float,
    rng: random.Random,
) -> List[Dict[str, Any]]:
    """``count`` requests, key popularity ~ 1/rank^s, stats jittered."""
    weights = [1.0 / (rank + 1) ** zipf_s for rank in range(len(keys))]
    requests = []
    for _ in range(count):
        key = rng.choices(keys, weights=weights)[0]
        jitter = rng.uniform(0.93, 1.07)  # ~ +/-7%: inside +/-1 bucket
        stats = ClusterStats(
            mtbf=key["mtbf"] * jitter,
            mttr=key["mttr"] * rng.uniform(0.9, 1.1),
            nodes=key["nodes"],
        )
        requests.append({
            "key": key,
            "stats": stats,
            "body": json.dumps({
                "plan": plan_to_dict(key["plan"]),
                "stats": stats_to_dict(stats),
                "scheme": key["scheme"],
            }).encode("utf-8"),
        })
    return requests


def fire_load(
    base_url: str, requests_list: List[Dict[str, Any]], clients: int,
) -> Tuple[List[float], float, int]:
    """Drive the request list through ``clients`` concurrent threads.

    Returns (per-request latencies in seconds, wall seconds, errors).
    """
    url = f"{base_url}/advise"
    work = list(enumerate(requests_list))
    position = {"next": 0}
    position_lock = threading.Lock()
    latencies: List[float] = [0.0] * len(requests_list)
    errors = [0]
    barrier = threading.Barrier(clients + 1)

    def client() -> None:
        barrier.wait()
        while True:
            with position_lock:
                if position["next"] >= len(work):
                    return
                index, request = work[position["next"]]
                position["next"] += 1
            http_request = urllib.request.Request(
                url, data=request["body"],
                headers={"Content-Type": "application/json"},
            )
            started = time.perf_counter()
            try:
                with urllib.request.urlopen(
                    http_request, timeout=120.0
                ) as response:
                    payload = json.loads(response.read())
                request["advice"] = payload["advice"]
            except Exception:
                errors[0] += 1
            latencies[index] = time.perf_counter() - started

    threads = [threading.Thread(target=client) for _ in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    wall_started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_started
    return latencies, wall, errors[0]


def percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def check_bit_identity(
    engine: AdvisoryEngine, requests_list: List[Dict[str, Any]],
    samples: int, rng: random.Random,
) -> Tuple[bool, int]:
    """Compare sampled HTTP responses against fresh direct searches."""
    answered = [r for r in requests_list if "advice" in r]
    picked = rng.sample(answered, min(samples, len(answered)))
    equal = True
    for request in picked:
        reference = direct_advice(
            request["key"]["plan"], request["stats"], engine,
            request["key"]["scheme"],
        ).to_dict()
        if request["advice"] != reference:
            equal = False
    return equal, len(picked)


def run_load(
    total_requests: int, clients: int, workers: int, cache_size: int,
    zipf_s: float, samples: int,
) -> Dict[str, Any]:
    keys = build_workload()
    rng = random.Random(SEED)
    requests_list = sample_requests(keys, total_requests, zipf_s, rng)
    engine = AdvisoryEngine(cache_size=cache_size)
    # queue sized to the client pool: the harness measures latency under
    # full concurrency, not shed behaviour (sheds still get counted)
    engine.start(workers=workers, max_queue=max(64, clients * 4))
    server = create_server(engine)
    host, port = server.server_address[:2]
    server_thread = threading.Thread(target=server.serve_forever,
                                     daemon=True)
    server_thread.start()
    try:
        with obs.recording() as recorder:
            latencies, wall, errors = fire_load(
                f"http://{host}:{port}", requests_list, clients
            )
            counters = {
                name: value
                for name, value in sorted(recorder.counters.items())
                if name.startswith(("serve.", "search.shard_resize"))
            }
        equal, sampled = check_bit_identity(
            engine, requests_list, samples, rng
        )
        cache_stats = engine.cache.stats() if engine.cache else None
    finally:
        server.shutdown()
        server.server_close()
        engine.stop()
    ordered = sorted(latencies)
    lookups = (cache_stats["hits"] + cache_stats["misses"]
               if cache_stats else 0)
    return {
        "benchmark": "advisory_service_load",
        "workload": {
            "distinct_keys": len(keys),
            "total_requests": total_requests,
            "concurrent_clients": clients,
            "zipf_s": zipf_s,
            "stats_jitter": "mtbf +/-7%, mttr +/-10% per request",
        },
        "service": {
            "workers": workers,
            "cache_size": cache_size,
            "transport": "http (ThreadingHTTPServer, stdlib)",
        },
        "latency_ms": {
            "p50": percentile(ordered, 0.50) * 1e3,
            "p90": percentile(ordered, 0.90) * 1e3,
            "p99": percentile(ordered, 0.99) * 1e3,
            "max": (ordered[-1] if ordered else 0.0) * 1e3,
        },
        "throughput_rps": (total_requests / wall) if wall else 0.0,
        "wall_seconds": wall,
        "errors": errors,
        "cache": dict(cache_stats or {}, hit_rate=(
            cache_stats["hits"] / lookups if lookups else 0.0
        )) if cache_stats else None,
        "counters": counters,
        "advice_equal_direct": equal,
        "equality_samples": sampled,
        "cpu_count": os.cpu_count(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Load-test the advisory HTTP service and write "
                    "BENCH_serve.json."
    )
    parser.add_argument("--requests", type=int, default=2000,
                        help="total requests to issue (default 2000)")
    parser.add_argument("--clients", type=int, default=256,
                        help="concurrent client threads (default 256)")
    parser.add_argument("--workers", type=int, default=8,
                        help="engine worker threads (default 8)")
    parser.add_argument("--cache-size", type=int, default=1024,
                        help="advice cache capacity (default 1024)")
    parser.add_argument("--zipf", type=float, default=1.1,
                        help="zipf skew exponent s (default 1.1)")
    parser.add_argument("--samples", type=int, default=25,
                        help="responses checked against direct search")
    parser.add_argument("--quick", action="store_true",
                        help="CI mode: 400 requests over 208 clients, "
                             "8 equality samples")
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_serve.json",
        help="where to write the JSON report "
             "(default <repo>/BENCH_serve.json)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.requests, args.clients, args.samples = 400, 208, 8
    report = run_load(
        total_requests=args.requests, clients=args.clients,
        workers=args.workers, cache_size=args.cache_size,
        zipf_s=args.zipf, samples=args.samples,
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    latency = report["latency_ms"]
    cache = report["cache"]
    print(f"{report['workload']['total_requests']} requests, "
          f"{report['workload']['concurrent_clients']} clients: "
          f"p50 {latency['p50']:.1f}ms p99 {latency['p99']:.1f}ms  "
          f"{report['throughput_rps']:.0f} req/s  "
          f"hit-rate {cache['hit_rate']:.3f}  "
          f"searches {report['counters'].get('serve.searches', 0)}  "
          f"equal_direct={report['advice_equal_direct']} "
          f"({report['equality_samples']} sampled)  "
          f"errors={report['errors']}")
    print(f"wrote {args.output}")
    if report["errors"] or not report["advice_equal_direct"]:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
