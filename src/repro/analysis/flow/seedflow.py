"""D-rules: whole-program seed-flow analysis.

The simulator's contract is that every random draw replays bit-for-bit
from an explicit seed.  ``C001``/``C002`` check RNG *construction sites*
one statement at a time; these rules follow the seed itself -- through
assignments inside a function (a small intraprocedural taint pass) and
through the call graph across functions:

* ``D001`` -- a function accepts a seed-named parameter, never reads it,
  and (itself or via a callee) constructs an RNG: the caller's seed is
  silently ignored.
* ``D002`` -- a seed-derived variable is unconditionally overwritten by
  a constant and then still used: the derivation is dead, every caller
  gets the same stream.
* ``D003`` -- an RNG is constructed from a bare constant while a real
  seed is statically in reach (a seed parameter / seed-derived variable
  in the same function, or a seed parameter in a transitive caller):
  the seed died on its way to the construction site.
* ``D004`` -- an RNG stored in a shared binding (module global or
  ``self`` attribute) was constructed without a derived seed, and a
  *different* function draws from it: the draw's result depends on
  global call order, not on a seed.

"Seed-derived" is reference-based: any expression that mentions a
seed-named parameter or an already-derived variable derives from it
(``default_rng([seed, node])``, ``seed * 31 + shard`` both count).  A
constant seed is only an error where a derivation was available --
defaults like ``def run(seed=0)`` stay legal.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..diagnostics import (
    Diagnostic,
    DiagnosticSink,
    Location,
    Severity,
    register_rule,
)
from .callgraph import FunctionInfo, Program, dotted_name

SEED_NOT_THREADED = register_rule(
    "D001", Severity.ERROR,
    "seed parameter accepted but never used by an RNG-reaching function",
    "thread the parameter into every RNG construction this function "
    "reaches (or drop the parameter); an ignored seed silently breaks "
    "replay-from-seed",
)
SEED_OVERWRITTEN = register_rule(
    "D002", Severity.ERROR,
    "derived seed overwritten by a constant before use",
    "remove the constant reassignment -- after it, every caller's seed "
    "produces the same stream",
)
SEED_OUT_OF_REACH = register_rule(
    "D003", Severity.ERROR,
    "RNG constructed from a constant while a real seed is in reach",
    "pass the in-scope seed (or a value derived from it) instead of the "
    "constant; derive per-stream seeds like default_rng([seed, tag])",
)
SHARED_RNG_UNSEEDED = register_rule(
    "D004", Severity.ERROR,
    "draw from a shared RNG that was not constructed from a derived seed",
    "construct the shared RNG from an explicit seed parameter, or make "
    "the draw site create its own seeded generator",
)

#: parameter / variable names that carry a seed
SEED_NAME = re.compile(r"(^|_)seed(s)?(_|$)", re.IGNORECASE)

#: RNG constructor call names (dotted suffixes)
_RNG_CONSTRUCTORS = ("random.Random", "default_rng")

#: methods that draw from an RNG object
_DRAW_METHODS = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "expovariate",
    "betavariate", "gammavariate", "paretovariate", "weibullvariate",
    "triangular", "vonmisesvariate", "lognormvariate", "getrandbits",
    "normal", "exponential", "integers", "permutation", "poisson",
    "standard_normal", "binomial", "weibull",
})

# seed-expression classifications
_MISSING = "missing"      # no seed argument at all (C001/C002 territory)
_CONSTANT = "constant"    # references no name: literals only
_DERIVED = "derived"      # references a seed-derived name
_OTHER = "other"          # references some non-seed name (allowed)


def is_rng_constructor(call: ast.Call,
                       name: Optional[str]) -> bool:
    """Is this call a known RNG construction?"""
    if name is None:
        return False
    if name in ("Random", "random.Random"):
        return True
    return name == "default_rng" or name.endswith(".default_rng")


def seed_argument(call: ast.Call) -> Optional[ast.AST]:
    """The seed expression of an RNG construction (None when absent)."""
    if call.args:
        first = call.args[0]
        if isinstance(first, ast.Constant) and first.value is None:
            return None
        return first
    for keyword in call.keywords:
        if keyword.arg == "seed":
            return keyword.value
    return None


def _referenced_names(node: ast.AST) -> Set[str]:
    """Every Name load (plus attribute bases) inside ``node``."""
    names: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.add(child.id)
    return names


def classify_seed_expr(expr: Optional[ast.AST],
                       tainted: Set[str]) -> str:
    if expr is None:
        return _MISSING
    names = _referenced_names(expr)
    if not names:
        return _CONSTANT
    if names & tainted:
        return _DERIVED
    return _OTHER


@dataclass
class SeedFacts:
    """Intraprocedural seed-flow facts for one function."""

    function: FunctionInfo
    seed_params: Tuple[str, ...] = ()
    read_names: Set[str] = field(default_factory=set)
    #: seed-derived names at end of the pass (over-approximate)
    tainted: Set[str] = field(default_factory=set)
    #: (assign node, name) -- unconditional constant overwrite of a
    #: derived seed that is still read afterwards
    dead_derivations: List[Tuple[ast.AST, str]] = field(
        default_factory=list
    )
    #: (call node, seed classification) for every RNG construction
    constructions: List[Tuple[ast.Call, str]] = field(
        default_factory=list
    )

    @property
    def has_seed_source(self) -> bool:
        return bool(self.seed_params) or bool(self.tainted)


def _assign_targets(node: ast.AST) -> List[str]:
    targets: List[str] = []
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Name):
                targets.append(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                targets.extend(
                    e.id for e in target.elts if isinstance(e, ast.Name)
                )
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        if isinstance(node.target, ast.Name):
            targets.append(node.target.id)
    return targets


def _is_constant_expr(node: ast.AST) -> bool:
    return not _referenced_names(node)


def analyze_function(function: FunctionInfo) -> SeedFacts:
    """Run the intraprocedural pass over one function body."""
    facts = SeedFacts(function=function)
    facts.seed_params = tuple(
        p for p in function.params
        if p not in ("self", "cls") and SEED_NAME.search(p)
    )
    body = list(ast.iter_child_nodes(function.node))

    # reads: every Name load anywhere in the body (nested defs included
    # -- a seed captured by a closure counts as used)
    for node in ast.walk(function.node):  # type: ignore[arg-type]
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            facts.read_names.add(node.id)

    # taint: fixpoint over assignments (order-free over-approximation)
    tainted: Set[str] = set(facts.seed_params)
    assigns = [
        node for node in ast.walk(function.node)
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign))
    ]
    changed = True
    while changed:
        changed = False
        for node in assigns:
            value = getattr(node, "value", None)
            if value is None:
                continue
            if _referenced_names(value) & tainted:
                for target in _assign_targets(node):
                    if target not in tainted:
                        tainted.add(target)
                        changed = True
    facts.tainted = tainted

    # dead derivations (D002): straight-line statements of the function
    # body only -- a conditional overwrite is not provably dead
    derived_so_far: Set[str] = set(facts.seed_params)
    statements = _straight_line(body)
    for statement in statements:
        if not isinstance(statement, (ast.Assign, ast.AnnAssign)):
            continue
        value = getattr(statement, "value", None)
        if value is None:
            continue
        targets = _assign_targets(statement)
        if _referenced_names(value) & derived_so_far:
            derived_so_far.update(targets)
            continue
        if _is_constant_expr(value):
            for name in targets:
                if name in derived_so_far and _read_after(
                        function.node, statement, name):
                    facts.dead_derivations.append((statement, name))

    # RNG constructions
    for call, _resolved in function.calls:
        name = dotted_name(call.func)
        if is_rng_constructor(call, name):
            classification = classify_seed_expr(
                seed_argument(call), tainted
            )
            facts.constructions.append((call, classification))
    return facts


def _straight_line(body: List[ast.AST]) -> List[ast.stmt]:
    """Unconditionally executed statements (descending through With)."""
    flat: List[ast.stmt] = []
    for node in body:
        if isinstance(node, ast.stmt):
            flat.append(node)
            if isinstance(node, (ast.With, ast.AsyncWith)):
                flat.extend(_straight_line(list(node.body)))
    return flat


def _read_after(function_node: ast.AST, statement: ast.stmt,
                name: str) -> bool:
    after = getattr(statement, "end_lineno", statement.lineno)
    for node in ast.walk(function_node):
        if (isinstance(node, ast.Name) and node.id == name
                and isinstance(node.ctx, ast.Load)
                and getattr(node, "lineno", 0) > after):
            return True
    return False


# ----------------------------------------------------------------------
# shared (module-global / attribute) RNG bindings
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SharedRng:
    """An RNG stored where several functions can draw from it."""

    key: str                      #: ``module:NAME`` or ``module:Cls.attr``
    classification: str           #: seed classification at construction
    owner: Optional[str]          #: constructing function (None = module)
    filename: str
    line: int


def _collect_shared_rngs(program: Program) -> Dict[str, SharedRng]:
    shared: Dict[str, SharedRng] = {}
    for module in program.modules.values():
        # module-level `NAME = <rng ctor>` bindings
        for name, value in module.module_assigns.items():
            if isinstance(value, ast.Call) and is_rng_constructor(
                    value, dotted_name(value.func)):
                classification = classify_seed_expr(
                    seed_argument(value), set()
                )
                shared[f"{module.name}:{name}"] = SharedRng(
                    key=f"{module.name}:{name}",
                    classification=classification,
                    owner=None,
                    filename=module.filename,
                    line=value.lineno,
                )
        # `self.attr = <rng ctor>` inside methods
        for function in module.functions.values():
            if function.class_name is None:
                continue
            for node in ast.walk(function.node):
                if not isinstance(node, ast.Assign):
                    continue
                if not (isinstance(node.value, ast.Call)
                        and is_rng_constructor(
                            node.value, dotted_name(node.value.func))):
                    continue
                facts_tainted = {
                    p for p in function.params if SEED_NAME.search(p)
                }
                for target in node.targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        key = (f"{module.name}:{function.class_name}"
                               f".{target.attr}")
                        classification = classify_seed_expr(
                            seed_argument(node.value),
                            analyze_function(function).tainted
                            or facts_tainted,
                        )
                        shared[key] = SharedRng(
                            key=key,
                            classification=classification,
                            owner=function.qualname,
                            filename=module.filename,
                            line=node.lineno,
                        )
    return shared


def _draw_base(call: ast.Call) -> Optional[Tuple[str, str]]:
    """``(kind, name)`` of a draw call's receiver.

    ``("name", "X")`` for ``X.random()``, ``("attr", "a")`` for
    ``self.a.random()``; None for anything else or non-draw methods.
    """
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr not in _DRAW_METHODS:
        return None
    base = func.value
    if isinstance(base, ast.Name):
        return ("name", base.id)
    if (isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"):
        return ("attr", base.attr)
    return None


# ----------------------------------------------------------------------
# the pass
# ----------------------------------------------------------------------
def check_seed_flow(program: Program) -> List[Diagnostic]:
    """Run D001-D004 over an analyzed program."""
    sink = DiagnosticSink()
    facts_by_function: Dict[str, SeedFacts] = {
        f.qualname: analyze_function(f)
        for f in program.sorted_functions()
    }

    # which functions construct an RNG anywhere (for D001 reach checks)
    constructs = {
        qualname for qualname, facts in facts_by_function.items()
        if facts.constructions
    }

    # which functions have a seed parameter (for D003 caller checks)
    has_seed_param = {
        qualname for qualname, facts in facts_by_function.items()
        if facts.seed_params
    }

    shared_rngs = _collect_shared_rngs(program)

    def location(function: FunctionInfo, node: ast.AST) -> Location:
        return Location(
            file=function.filename,
            line=getattr(node, "lineno", function.line),
            column=getattr(node, "col_offset", None),
        )

    for function in program.sorted_functions():
        facts = facts_by_function[function.qualname]

        # D001: seed parameter accepted but never read
        unread = [p for p in facts.seed_params
                  if p not in facts.read_names]
        if unread:
            reaches_rng = bool(facts.constructions) or bool(
                program.reachable_from(function.qualname) & constructs
            )
            if reaches_rng:
                for param in unread:
                    sink.emit(
                        SEED_NOT_THREADED, location(function, function.node),
                        f"{function.qualname} accepts seed parameter "
                        f"{param!r} but never uses it, yet reaches an "
                        "RNG construction",
                    )

        # D002: derived seed overwritten by a constant
        for statement, name in facts.dead_derivations:
            sink.emit(
                SEED_OVERWRITTEN, location(function, statement),
                f"seed-derived variable {name!r} is overwritten by a "
                "constant and then used; the derivation above it is "
                "dead",
            )

        # D003: constant-seeded construction while a seed is in reach
        for call, classification in facts.constructions:
            if classification != _CONSTANT:
                continue
            if facts.has_seed_source:
                sink.emit(
                    SEED_OUT_OF_REACH, location(function, call),
                    "RNG constructed from a constant although "
                    f"{function.qualname} has a seed in scope",
                )
                continue
            seeded_callers = (
                program.transitive_callers(function.qualname)
                & has_seed_param
            )
            if seeded_callers:
                nearest = sorted(seeded_callers)[0]
                sink.emit(
                    SEED_OUT_OF_REACH, location(function, call),
                    "RNG constructed from a constant; a seed parameter "
                    f"exists upstream (e.g. {nearest}) but is not "
                    "threaded down to this call",
                )

        # D004: draws from shared, non-derived-seed RNG bindings
        for call, _resolved in function.calls:
            base = _draw_base(call)
            if base is None:
                continue
            kind, name = base
            if kind == "name":
                key = f"{function.module}:{name}"
            else:
                if function.class_name is None:
                    continue
                key = f"{function.module}:{function.class_name}.{name}"
            binding = shared_rngs.get(key)
            if binding is None:
                continue
            if binding.classification not in (_MISSING, _CONSTANT):
                continue
            if binding.owner == function.qualname:
                continue  # construction and draw in the same function
            sink.emit(
                SHARED_RNG_UNSEEDED, location(function, call),
                f"draw from shared RNG {key!r}, constructed "
                f"{'without a seed' if binding.classification == _MISSING else 'from a constant'} "
                f"at {binding.filename}:{binding.line}; results depend "
                "on call order, not on a seed",
            )

    return sink.diagnostics
