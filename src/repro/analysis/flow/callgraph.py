"""Module-level program model and call graph for the flow pass.

The statement-at-a-time rules in :mod:`repro.analysis.code_lint` cannot
see a seed that dies two calls up the stack.  This module gives the flow
rules (:mod:`repro.analysis.flow.seedflow` and friends) the structure
they need: every analyzed file is parsed once into a :class:`ModuleInfo`
(imports, module-level bindings, functions with their AST), functions
get stable qualified names (``repro.engine.campaign:_maybe_crash``,
``mod:Class.method``), and calls between analyzed functions are resolved
best-effort into a call graph with forward (:meth:`Program.callees`) and
reverse (:meth:`Program.callers`) edges plus cached transitive
reachability.

Resolution is deliberately conservative: a call that cannot be resolved
inside the analyzed file set (NumPy, the stdlib, dynamic dispatch) is
simply an external edge and never produces a finding by itself.  The
supported forms cover this codebase's idiom:

* plain names -- a module-level function of the same module;
* ``self.meth(...)`` / ``cls.meth(...)`` -- a method of the enclosing
  class;
* ``alias.func(...)`` where ``alias`` was bound by ``import`` /
  ``from ... import`` -- a function of another analyzed module;
* names bound by ``from .mod import func`` -- the target function.

Known limitations (documented in ``docs/analysis.md``): no tracking of
functions stored in containers or passed as values (other than the
pool-payload positions the S-rules inspect), no inheritance resolution,
one shared namespace per module (a local rebinding a module-level name
shadows it for resolution purposes only when assigned in that
function).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


def module_name_for(path: str) -> str:
    """Dotted module name for ``path``, derived from ``__init__.py`` chains.

    ``src/repro/engine/campaign.py`` -> ``repro.engine.campaign``; a file
    outside any package (e.g. a lint fixture) is just its stem.
    """
    path = os.path.abspath(path)
    directory, filename = os.path.split(path)
    stem = os.path.splitext(filename)[0]
    parts = [stem] if stem != "__init__" else []
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        if not package:  # pragma: no cover - filesystem root
            break
        parts.append(package)
    return ".".join(reversed(parts)) if parts else stem


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class FunctionInfo:
    """One analyzed function or method."""

    qualname: str                 #: ``module:fn`` / ``module:Class.fn``
    module: str
    name: str                     #: bare function name
    filename: str
    node: ast.AST                 #: FunctionDef / AsyncFunctionDef
    class_name: Optional[str] = None
    params: Tuple[str, ...] = ()
    #: names of functions/classes defined *inside* this function (their
    #: pickles capture the enclosing frame -- the S-rules care)
    local_defs: Set[str] = field(default_factory=set)
    #: resolved program-internal callees (qualnames)
    callees: Set[str] = field(default_factory=set)
    #: every Call node in the body, with its resolved target (or None)
    calls: List[Tuple[ast.Call, Optional[str]]] = field(
        default_factory=list
    )

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 0)


@dataclass
class ModuleInfo:
    """One parsed source file."""

    name: str
    filename: str
    tree: ast.Module
    #: local alias -> dotted module (``np`` -> ``numpy``) for ``import``
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: local name -> ``module:object`` for ``from m import o [as n]``
    object_imports: Dict[str, str] = field(default_factory=dict)
    #: module-level assigned names -> the (last) value expression
    module_assigns: Dict[str, ast.AST] = field(default_factory=dict)
    #: functions keyed by local path (``fn`` or ``Class.fn``)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)


def _collect_params(node: ast.AST) -> Tuple[str, ...]:
    args = node.args  # type: ignore[attr-defined]
    names = [a.arg for a in getattr(args, "posonlyargs", [])]
    names += [a.arg for a in args.args]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    names += [a.arg for a in args.kwonlyargs]
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return tuple(names)


def _resolve_relative(module: str, level: int,
                      target: Optional[str]) -> str:
    """Absolute module for a ``from ...target import x`` statement."""
    base = module.split(".")
    # level 1 = the containing package of `module`
    base = base[: max(len(base) - level, 0)]
    if target:
        base = base + target.split(".")
    return ".".join(base)


class _ModuleScanner(ast.NodeVisitor):
    """First pass: index one module's imports, globals and functions."""

    def __init__(self, info: ModuleInfo) -> None:
        self.info = info
        self._class_stack: List[str] = []
        self._func_stack: List[FunctionInfo] = []

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.info.module_aliases[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        source = node.module
        if node.level:
            source = _resolve_relative(self.info.name, node.level,
                                       node.module)
        if source is None:
            return
        for alias in node.names:
            local = alias.asname or alias.name
            self.info.object_imports[local] = f"{source}:{alias.name}"

    # -- module-level bindings ----------------------------------------
    def _record_assign(self, target: ast.AST, value: ast.AST) -> None:
        if (not self._func_stack and not self._class_stack
                and isinstance(target, ast.Name)):
            self.info.module_assigns[target.id] = value

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_assign(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_assign(node.target, node.value)
        self.generic_visit(node)

    # -- functions -----------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._func_stack:
            self._func_stack[-1].local_defs.add(node.name)
            return  # don't index functions of function-local classes
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node: ast.AST, name: str) -> None:
        if self._func_stack:
            # nested function: record for closure checks, keep indexing
            # its body under the *outer* function's entry is wrong --
            # give it its own entry so calls inside it resolve too.
            self._func_stack[-1].local_defs.add(name)
            local_path = f"{self._func_stack[-1].qualname.split(':', 1)[1]}.<locals>.{name}"
        else:
            local_path = (
                f"{self._class_stack[-1]}.{name}"
                if self._class_stack else name
            )
        info = FunctionInfo(
            qualname=f"{self.info.name}:{local_path}",
            module=self.info.name,
            name=name,
            filename=self.info.filename,
            node=node,
            class_name=self._class_stack[-1] if self._class_stack else None,
            params=_collect_params(node),
        )
        self.info.functions[local_path] = info
        self._func_stack.append(info)
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self._func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name)


class Program:
    """The analyzed file set: modules, functions, and the call graph."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self._reachable_cache: Dict[str, Set[str]] = {}
        self._callers: Dict[str, Set[str]] = {}

    # -- construction --------------------------------------------------
    @classmethod
    def build(cls, files: Iterable[str]) -> "Program":
        program = cls()
        for path in files:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            program.add_source(source, path)
        program.link()
        return program

    @classmethod
    def from_sources(
        cls, sources: Sequence[Tuple[str, str]]
    ) -> "Program":
        """Build from ``(source, filename)`` pairs (tests, fixtures)."""
        program = cls()
        for source, filename in sources:
            program.add_source(source, filename)
        program.link()
        return program

    def add_source(self, source: str, filename: str) -> None:
        try:
            tree = ast.parse(source, filename=filename)
        except SyntaxError:
            # the code linter reports C000; the flow pass just skips it
            return
        info = ModuleInfo(name=module_name_for(filename),
                          filename=filename, tree=tree)
        _ModuleScanner(info).visit(tree)
        self.modules[info.name] = info
        for function in info.functions.values():
            self.functions[function.qualname] = function

    # -- call resolution -----------------------------------------------
    def resolve_call(self, module: ModuleInfo,
                     function: FunctionInfo,
                     call: ast.Call) -> Optional[str]:
        """Qualname of the analyzed function this call targets, if any."""
        name = dotted_name(call.func)
        if name is None:
            return None
        parts = name.split(".")
        head = parts[0]
        # self.meth() / cls.meth() inside a class
        if (head in ("self", "cls") and len(parts) == 2
                and function.class_name is not None):
            local = f"{function.class_name}.{parts[1]}"
            target = module.functions.get(local)
            return target.qualname if target else None
        if len(parts) == 1:
            # a plain name: same-module function, or a from-import
            target = module.functions.get(head)
            if target is not None:
                return target.qualname
            imported = module.object_imports.get(head)
            if imported is not None:
                target_module, obj = imported.split(":", 1)
                return self._function_in(target_module, obj)
            return None
        # alias.func(...) through an `import` binding
        alias_target = module.module_aliases.get(head)
        if alias_target is not None and len(parts) == 2:
            return self._function_in(alias_target, parts[1])
        # from-imported *module*: `from repro import obs` binds obs
        imported = module.object_imports.get(head)
        if imported is not None and len(parts) == 2:
            target_module, obj = imported.split(":", 1)
            submodule = f"{target_module}.{obj}"
            return self._function_in(submodule, parts[1])
        return None

    def _function_in(self, module: str, name: str) -> Optional[str]:
        info = self.modules.get(module)
        if info is None:
            return None
        target = info.functions.get(name)
        return target.qualname if target else None

    def link(self) -> None:
        """Second pass: resolve every call site and build the edges."""
        for module in self.modules.values():
            for function in module.functions.values():
                for node in ast.walk(function.node):
                    if not isinstance(node, ast.Call):
                        continue
                    resolved = self.resolve_call(module, function, node)
                    function.calls.append((node, resolved))
                    if resolved is not None:
                        function.callees.add(resolved)
                        self._callers.setdefault(resolved, set()).add(
                            function.qualname
                        )
        self._reachable_cache.clear()

    # -- graph queries --------------------------------------------------
    def callees(self, qualname: str) -> Set[str]:
        function = self.functions.get(qualname)
        return set(function.callees) if function else set()

    def callers(self, qualname: str) -> Set[str]:
        return set(self._callers.get(qualname, ()))

    def reachable_from(self, qualname: str) -> Set[str]:
        """Every analyzed function transitively callable from here
        (excluding ``qualname`` itself unless it is in a cycle)."""
        cached = self._reachable_cache.get(qualname)
        if cached is not None:
            return cached
        seen: Set[str] = set()
        frontier = list(self.callees(qualname))
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.callees(current))
        self._reachable_cache[qualname] = seen
        return seen

    def transitive_callers(self, qualname: str) -> Set[str]:
        """Every analyzed function that can transitively reach here."""
        seen: Set[str] = set()
        frontier = list(self.callers(qualname))
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.callers(current))
        return seen

    def sorted_functions(self) -> List[FunctionInfo]:
        """All functions in (filename, line) order -- stable reporting."""
        return sorted(
            self.functions.values(),
            key=lambda f: (f.filename, f.line, f.qualname),
        )
