"""Whole-program flow analysis: seed threading, pool safety, merge order.

Where :mod:`repro.analysis.code_lint` checks one statement at a time,
this subpackage builds a module-level call graph over the analyzed tree
(:mod:`repro.analysis.flow.callgraph`) and runs three interprocedural
rule families on it:

* ``D0xx`` (:mod:`.seedflow`) -- every RNG construction must be
  reachable from an explicit seed parameter or derivation;
* ``S0xx`` (:mod:`.poolsafety`) -- pool payloads must pickle, workers
  must not mutate unsanctioned module globals, ``os._exit`` stays in
  ``chaos``;
* ``O0xx`` (:mod:`.mergeorder`) -- set iteration must not feed
  order-sensitive accumulation, directory listings must be sorted.

Entry point: :func:`lint_flow` (mirrors ``code_lint.lint_paths``); run
from the CLI with ``python -m repro lint --flow``.  The runtime
counterpart -- fingerprint-based replay divergence localization -- lives
in :mod:`repro.analysis.sanitizer`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..code_lint import iter_python_files
from ..diagnostics import Diagnostic
from .callgraph import FunctionInfo, ModuleInfo, Program
from .mergeorder import check_merge_order
from .poolsafety import SANCTIONED_WORKER_GLOBALS, check_pool_safety
from .seedflow import check_seed_flow

__all__ = [
    "FunctionInfo",
    "ModuleInfo",
    "Program",
    "SANCTIONED_WORKER_GLOBALS",
    "check_merge_order",
    "check_pool_safety",
    "check_seed_flow",
    "lint_flow",
    "lint_flow_sources",
]


def _run_all(program: Program) -> List[Diagnostic]:
    diagnostics = (
        check_seed_flow(program)
        + check_pool_safety(program)
        + check_merge_order(program)
    )
    return sorted(
        diagnostics,
        key=lambda d: (d.location.file or "", d.location.line or 0,
                       d.location.column or 0, d.rule_id),
    )


def lint_flow(paths: Sequence[str]) -> List[Diagnostic]:
    """Run the D/S/O families over every ``.py`` file under ``paths``.

    All files are loaded into one :class:`Program` first so calls across
    modules resolve; passing a partial tree narrows the call graph and
    with it the analysis (documented limitation).
    """
    program = Program.build(iter_python_files(paths))
    return _run_all(program)


def lint_flow_sources(
    sources: Sequence[Tuple[str, str]],
) -> List[Diagnostic]:
    """As :func:`lint_flow`, over ``(source, filename)`` pairs (tests)."""
    program = Program.from_sources(sources)
    return _run_all(program)
