"""O-rules: iteration order feeding merge paths must be stabilized.

Campaign rows, recorder merges and cost roll-ups are compared
bit-for-bit across job counts.  Iterating a ``set`` (whose order is a
function of hash seeding and insertion history) into any order-sensitive
accumulation -- float sums, list building, emitted output -- silently
breaks that contract, as does enumerating a directory without sorting.

* ``O001`` -- a loop or comprehension iterates a statically set-typed
  value and its body feeds an order-sensitive sink (``append``/
  ``extend``/``insert``, arithmetic ``+=``/``-=``/``*=``, ``yield``,
  ``sum``/``list``/``tuple``/``join`` over the generator).  Bodies that
  only do order-independent work -- set/dict stores keyed by the loop
  variable, ``.add``/``.update``, ``|=``, membership tests -- are not
  flagged.
* ``O002`` -- a filesystem enumeration (``os.listdir``, ``os.scandir``,
  ``glob.glob``/``iglob``, ``Path.iterdir``/``glob``/``rglob``) whose
  result is consumed without an immediate ``sorted(...)`` wrap (or an
  order-erasing consumer such as ``set``/``len``/membership).

Set-typedness is inferred, conservatively, from literals
(``{a, b}``, set comprehensions), ``set(...)``/``frozenset(...)``
constructor calls, ``Set[...]``/``FrozenSet[...]`` annotations on
parameters and assignments, set-operator expressions (``|``, ``&``,
``-``, ``^`` over a known set), and unpacking ``.items()``/``.values()``
of a ``Dict[_, Set[_]]``-annotated mapping.  Anything the inference
cannot prove to be a set is left alone -- the rule prefers false
negatives over noise.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..diagnostics import (
    Diagnostic,
    DiagnosticSink,
    Location,
    Severity,
    register_rule,
)
from .callgraph import FunctionInfo, Program, dotted_name

UNSTABLE_SET_ORDER = register_rule(
    "O001", Severity.ERROR,
    "set iteration feeds order-sensitive accumulation",
    "wrap the iterable in sorted(...) before accumulating; set order "
    "varies with hash seeding and insertion history, so float sums and "
    "built lists diverge between runs and job counts",
)
UNSORTED_FS_ENUMERATION = register_rule(
    "O002", Severity.ERROR,
    "filesystem enumeration consumed without sorted()",
    "os.listdir/glob/iterdir order is filesystem-dependent; wrap the "
    "call in sorted(...) before iterating or storing the result",
)

_LOOP = (ast.For, ast.AsyncFor)
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp,
                   ast.GeneratorExp)

#: consumers of a generator/list over a set that stay order-sensitive
_ORDER_SENSITIVE_CONSUMERS = frozenset({"sum", "list", "tuple", "join"})
#: consumers that erase or impose order -- never findings
_ORDER_ERASING_CONSUMERS = frozenset({
    "sorted", "set", "frozenset", "len", "min", "max", "any", "all",
    "sum_unordered",  # reserved escape hatch
})

_FS_ENUMERATION_CALLS = frozenset({
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
})
_FS_ENUMERATION_METHODS = frozenset({"iterdir", "rglob"})
_SET_ANNOTATION_NAMES = frozenset({
    "Set", "FrozenSet", "MutableSet", "AbstractSet", "set", "frozenset",
})
_DICT_ANNOTATION_NAMES = frozenset({"Dict", "dict", "Mapping",
                                    "MutableMapping", "DefaultDict"})


def _annotation_base(annotation: ast.AST) -> Optional[str]:
    name = dotted_name(annotation)
    if name is None:
        return None
    return name.split(".")[-1]


def _is_set_annotation(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Subscript):
        return _is_set_annotation(annotation.value)
    return _annotation_base(annotation) in _SET_ANNOTATION_NAMES


def _is_dict_of_set_annotation(annotation: Optional[ast.AST]) -> bool:
    """``Dict[_, Set[_]]`` and friends."""
    if not isinstance(annotation, ast.Subscript):
        return False
    if _annotation_base(annotation.value) not in _DICT_ANNOTATION_NAMES:
        return False
    slice_node: ast.AST = annotation.slice
    if isinstance(slice_node, ast.Index):  # pragma: no cover - py<3.9
        slice_node = slice_node.value  # type: ignore[attr-defined]
    if isinstance(slice_node, ast.Tuple) and len(slice_node.elts) == 2:
        return _is_set_annotation(slice_node.elts[1])
    return False


def _is_set_constructor(expr: ast.AST) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        name = dotted_name(expr.func)
        return name in ("set", "frozenset")
    return False


class _SetTypes:
    """Per-function conservative set-typedness facts."""

    def __init__(self, function: FunctionInfo) -> None:
        self.set_names: Set[str] = set()
        self.dict_of_set_names: Set[str] = set()
        self._collect(function)

    def _collect(self, function: FunctionInfo) -> None:
        node = function.node
        args = node.args  # type: ignore[attr-defined]
        for arg in (list(getattr(args, "posonlyargs", []))
                    + list(args.args) + list(args.kwonlyargs)):
            if _is_set_annotation(arg.annotation):
                self.set_names.add(arg.arg)
            elif _is_dict_of_set_annotation(arg.annotation):
                self.dict_of_set_names.add(arg.arg)
        # two passes so a later loop can use an earlier annotation
        for stmt in ast.walk(node):
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)):
                if _is_set_annotation(stmt.annotation):
                    self.set_names.add(stmt.target.id)
                elif _is_dict_of_set_annotation(stmt.annotation):
                    self.dict_of_set_names.add(stmt.target.id)
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign):
                if self.is_set_expr(stmt.value):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            self.set_names.add(target.id)
            targets = _loop_targets(stmt)
            if targets is not None:
                target, iterable = targets
                self._type_loop_target(target, iterable)
            elif isinstance(stmt, _COMPREHENSIONS):
                for generator in stmt.generators:
                    self._type_loop_target(generator.target,
                                           generator.iter)

    def _type_loop_target(self, target: ast.AST,
                          iterable: ast.AST) -> None:
        """``for k, v in dict_of_set.items()`` makes ``v`` a set."""
        if not (isinstance(iterable, ast.Call)
                and isinstance(iterable.func, ast.Attribute)
                and isinstance(iterable.func.value, ast.Name)
                and iterable.func.value.id in self.dict_of_set_names):
            return
        method = iterable.func.attr
        if (method == "items"
                and isinstance(target, (ast.Tuple, ast.List))
                and len(target.elts) == 2
                and isinstance(target.elts[1], ast.Name)):
            self.set_names.add(target.elts[1].id)
        elif method == "values" and isinstance(target, ast.Name):
            self.set_names.add(target.id)

    def is_set_expr(self, expr: ast.AST) -> bool:
        if _is_set_constructor(expr):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in self.set_names
        if (isinstance(expr, ast.Subscript)
                and isinstance(expr.value, ast.Name)):
            return expr.value.id in self.dict_of_set_names
        if (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "values"
                and isinstance(expr.func.value, ast.Name)):
            return expr.func.value.id in self.dict_of_set_names
        if isinstance(expr, ast.BinOp) and isinstance(
                expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return (self.is_set_expr(expr.left)
                    or self.is_set_expr(expr.right))
        return False


def _loop_targets(
    stmt: ast.AST,
) -> Optional[Tuple[ast.AST, ast.AST]]:
    if isinstance(stmt, _LOOP):
        return stmt.target, stmt.iter
    return None


def _target_names(target: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


def _names_in(expr: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(expr) if isinstance(n, ast.Name)}


def _body_is_order_sensitive(body: Iterable[ast.stmt],
                             loop_names: Set[str]) -> Optional[ast.AST]:
    """First order-sensitive statement in a loop body, or ``None``.

    Order-independent work -- dict/set stores keyed by the loop
    variable, ``.add``/``.update``/``discard``, set-union ``|=``,
    membership tests, conditionals around such work -- is skipped.
    """
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign):
                if isinstance(node.op, (ast.Add, ast.Sub, ast.Mult,
                                        ast.Div)):
                    # d[x] += ... keyed by the loop var is a grouped
                    # accumulation -- still order-sensitive for floats,
                    # but x-keyed stores see each key once per element,
                    # so only flag scalar accumulators.
                    if isinstance(node.target, ast.Name):
                        return node
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (isinstance(target, ast.Subscript)
                            and loop_names & _names_in(target.slice)):
                        continue  # keyed by the loop variable
                    if isinstance(target, ast.Subscript):
                        return node
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                return node
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in (
                        "append", "extend", "insert", "write"):
                    return node
                if dotted_name(func) == "print":
                    return node
    return None


def _parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _consumer_name(call: ast.Call) -> Optional[str]:
    """Bare consumer name: ``sum`` for ``sum(...)``, ``join`` for
    ``", ".join(...)``."""
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    name = dotted_name(call.func)
    return name.split(".")[-1] if name else None


def _check_function_o001(function: FunctionInfo,
                         sink: DiagnosticSink) -> None:
    types = _SetTypes(function)
    parents = _parent_map(function.node)

    for node in ast.walk(function.node):
        # explicit for-loops over a set expression
        if isinstance(node, _LOOP) and types.is_set_expr(node.iter):
            sensitive = _body_is_order_sensitive(
                node.body, _target_names(node.target)
            )
            if sensitive is not None:
                sink.emit(
                    UNSTABLE_SET_ORDER,
                    Location(file=function.filename,
                             line=node.iter.lineno,
                             column=node.iter.col_offset),
                    f"{function.qualname} iterates a set into an "
                    "order-sensitive accumulation (line "
                    f"{getattr(sensitive, 'lineno', node.lineno)}); "
                    "wrap the iterable in sorted(...)",
                )
            continue
        # comprehensions / generators over a set expression
        if isinstance(node, _COMPREHENSIONS):
            if not any(types.is_set_expr(gen.iter)
                       for gen in node.generators):
                continue
            if isinstance(node, (ast.SetComp, ast.DictComp)):
                continue  # produce unordered values -- order-neutral
            parent = parents.get(node)
            if isinstance(node, ast.GeneratorExp):
                if not isinstance(parent, ast.Call):
                    continue
                consumer = _consumer_name(parent)
                if consumer in _ORDER_ERASING_CONSUMERS:
                    continue
                if consumer not in _ORDER_SENSITIVE_CONSUMERS:
                    continue
            else:  # ListComp: an ordered container from unordered input
                if (isinstance(parent, ast.Call)
                        and _consumer_name(parent)
                        in _ORDER_ERASING_CONSUMERS):
                    continue
            sink.emit(
                UNSTABLE_SET_ORDER,
                Location(file=function.filename,
                         line=node.lineno, column=node.col_offset),
                f"{function.qualname} accumulates over a set in "
                "nondeterministic order; sort the iterable first",
            )


def _is_fs_enumeration(call: ast.Call) -> bool:
    name = dotted_name(call.func)
    if name in _FS_ENUMERATION_CALLS:
        return True
    if (isinstance(call.func, ast.Attribute)
            and call.func.attr in _FS_ENUMERATION_METHODS):
        return True
    # path.glob(...) -- only when the receiver looks path-like, to keep
    # random_obj.glob from tripping the rule
    if (isinstance(call.func, ast.Attribute)
            and call.func.attr == "glob"
            and isinstance(call.func.value, ast.Name)
            and "path" in call.func.value.id.lower()):
        return True
    return False


def _check_function_o002(function: FunctionInfo,
                         sink: DiagnosticSink) -> None:
    parents = _parent_map(function.node)
    for call, _resolved in function.calls:
        if not _is_fs_enumeration(call):
            continue
        parent = parents.get(call)
        if isinstance(parent, ast.Call):
            consumer = _consumer_name(parent)
            if consumer in _ORDER_ERASING_CONSUMERS:
                continue
        if isinstance(parent, ast.Compare):  # membership test
            continue
        sink.emit(
            UNSORTED_FS_ENUMERATION,
            Location(file=function.filename,
                     line=call.lineno, column=call.col_offset),
            f"{function.qualname} consumes "
            f"{dotted_name(call.func) or 'a directory listing'} without "
            "sorted(); enumeration order is filesystem-dependent",
        )


def check_merge_order(program: Program) -> List[Diagnostic]:
    """Run O001/O002 over an analyzed program."""
    sink = DiagnosticSink()
    for function in program.sorted_functions():
        _check_function_o001(function, sink)
        _check_function_o002(function, sink)
    return sink.diagnostics
