"""S-rules: what may cross a process-pool boundary, and what workers
may touch.

The campaign engine and the parallel search guarantee ``jobs=N ==
jobs=1`` only because everything shipped to a worker pickles cleanly and
workers stay purely computational.  These rules certify both properties
statically:

* ``S001`` -- a pool payload (a ``submit``/``map`` function or argument,
  an ``initializer``/``initargs`` entry, a ``campaign_map`` function)
  is statically unpicklable: a lambda, a function or class defined
  inside the enclosing function (pickling captures the local frame), a
  generator expression, or an open file handle.
* ``S002`` -- a function reachable from a pool-worker entry point
  mutates a module global that is not one of the sanctioned
  process-local registries (trace/baseline memo caches, the worker
  state dict, the obs recorder).  Unsanctioned global writes diverge
  between the serial and pooled paths.
* ``S003`` -- ``os._exit`` outside the ``chaos`` package.  A hard exit
  is the chaos layer's fault-injection primitive; anywhere else it is a
  correctness bug (it skips ``finally`` blocks and pool cleanup).

Worker entry points are discovered from the call sites themselves: any
function passed in the callable position of ``submit``/``map``/
``apply_async``/``campaign_map`` or as a pool ``initializer=``.  The
reachable set is the transitive call-graph closure from those entries.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..diagnostics import (
    Diagnostic,
    DiagnosticSink,
    Location,
    Severity,
    register_rule,
)
from .callgraph import FunctionInfo, ModuleInfo, Program, dotted_name

UNPICKLABLE_PAYLOAD = register_rule(
    "S001", Severity.ERROR,
    "statically unpicklable payload shipped across a pool boundary",
    "ship module-level functions and plain data; lambdas, closures, "
    "local classes, generators and open handles cannot cross a "
    "ProcessPoolExecutor boundary",
)
WORKER_GLOBAL_MUTATION = register_rule(
    "S002", Severity.ERROR,
    "pool-worker-reachable function mutates an unsanctioned module global",
    "route worker state through the sanctioned per-process registries "
    "(worker-state dict, trace/baseline memo caches) or return it with "
    "the result; ad-hoc globals diverge between jobs=1 and jobs=N",
)
HARD_EXIT_OUTSIDE_CHAOS = register_rule(
    "S003", Severity.ERROR,
    "os._exit outside the chaos package",
    "only the chaos layer may hard-kill a process (worker-crash "
    "injection); everywhere else raise or return an error instead",
)

#: module globals workers may mutate: the per-process registries that
#: memoize deterministic pure functions (so mutation order cannot change
#: results) plus the worker-state/recorder plumbing itself.
SANCTIONED_WORKER_GLOBALS: FrozenSet[str] = frozenset({
    "_WORKER_STATE",
    "_RECORDER",
    "_TRACE_SET_CACHE",
    "_TRACE_CACHE_STATS",
    "_BASELINE_MEMO",
    "_PREFLIGHT_SEEN",
    "_preflight_check",
})

#: pool-class constructors (resolved through imports where possible)
_POOL_CONSTRUCTORS = frozenset({
    "ProcessPoolExecutor", "Pool", "ThreadPoolExecutor",
})
_POOL_CONSTRUCTOR_SUFFIXES = (
    ".ProcessPoolExecutor", ".Pool", ".ThreadPoolExecutor",
)

#: pool methods whose first argument is the shipped callable
_POOL_DISPATCH_METHODS = frozenset({
    "submit", "map", "imap", "imap_unordered", "starmap", "apply",
    "apply_async", "map_async",
})

#: program functions that behave like a pool dispatch (callable first)
_DISPATCH_FUNCTIONS = frozenset({"campaign_map"})

#: list-mutating / dict-mutating method names counting as a write
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "clear", "pop",
    "popitem", "setdefault", "remove", "discard", "sort", "reverse",
})


def _is_pool_constructor(call: ast.Call,
                         module: ModuleInfo) -> bool:
    name = dotted_name(call.func)
    if name is None:
        return False
    if name in _POOL_CONSTRUCTORS:
        imported = module.object_imports.get(name, "")
        return imported.startswith(("concurrent.futures",
                                    "multiprocessing")) or not imported
    return name.endswith(_POOL_CONSTRUCTOR_SUFFIXES)


def _pool_vars(function: FunctionInfo,
               module: ModuleInfo) -> Set[str]:
    """Local names bound to a pool object in this function."""
    pools: Set[str] = set()
    for node in ast.walk(function.node):
        if isinstance(node, ast.Assign):
            if (isinstance(node.value, ast.Call)
                    and _is_pool_constructor(node.value, module)):
                pools.update(
                    t.id for t in node.targets if isinstance(t, ast.Name)
                )
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if (isinstance(item.context_expr, ast.Call)
                        and _is_pool_constructor(item.context_expr, module)
                        and isinstance(item.optional_vars, ast.Name)):
                    pools.add(item.optional_vars.id)
    return pools


@dataclass(frozen=True)
class _Payload:
    """One expression shipped across a pool boundary."""

    expr: ast.AST
    call: ast.Call
    is_callable_slot: bool        #: the fn position (worker entry point)


def _payloads_of(function: FunctionInfo, module: ModuleInfo,
                 pool_vars: Set[str]) -> List[_Payload]:
    payloads: List[_Payload] = []
    for call, resolved in function.calls:
        func = call.func
        # pool.method(fn, *args) on a known pool variable
        if (isinstance(func, ast.Attribute)
                and func.attr in _POOL_DISPATCH_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in pool_vars):
            for index, arg in enumerate(call.args):
                payloads.append(_Payload(arg, call, index == 0))
            continue
        # pool constructors: initializer= / initargs=
        if _is_pool_constructor(call, module):
            for keyword in call.keywords:
                if keyword.arg == "initializer":
                    payloads.append(_Payload(keyword.value, call, True))
                elif keyword.arg == "initargs":
                    value = keyword.value
                    elements = (
                        value.elts
                        if isinstance(value, (ast.Tuple, ast.List))
                        else [value]
                    )
                    for element in elements:
                        payloads.append(_Payload(element, call, False))
            continue
        # campaign_map-style dispatch helpers
        name = dotted_name(func)
        base = name.split(".")[-1] if name else ""
        if (base in _DISPATCH_FUNCTIONS
                or (resolved is not None
                    and resolved.split(":")[-1] in _DISPATCH_FUNCTIONS)):
            if call.args:
                payloads.append(_Payload(call.args[0], call, True))
    return payloads


def _local_unpicklable_bindings(
    function: FunctionInfo,
) -> Dict[str, str]:
    """Local names bound to values that cannot cross the boundary."""
    bindings: Dict[str, str] = {}
    for name in function.local_defs:
        bindings[name] = "a function or class defined in the enclosing " \
                         "function (its pickle captures the local frame)"
    for node in ast.walk(function.node):
        if not isinstance(node, ast.Assign):
            continue
        reason: Optional[str] = None
        if isinstance(node.value, ast.Lambda):
            reason = "a lambda"
        elif isinstance(node.value, ast.GeneratorExp):
            reason = "a generator expression"
        elif (isinstance(node.value, ast.Call)
                and dotted_name(node.value.func) in ("open", "io.open")):
            reason = "an open file handle"
        if reason is None:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                bindings[target.id] = reason
    return bindings


def _check_payload(payload: _Payload, function: FunctionInfo,
                   bindings: Dict[str, str], sink: DiagnosticSink,
                   filename: str) -> None:
    stack: List[ast.AST] = [payload.expr]
    while stack:
        expr = stack.pop()
        reason: Optional[str] = None
        if isinstance(expr, ast.Lambda):
            reason = "a lambda"
        elif isinstance(expr, ast.GeneratorExp):
            reason = "a generator expression"
        elif (isinstance(expr, ast.Call)
                and dotted_name(expr.func) in ("open", "io.open")):
            reason = "an open file handle"
        elif isinstance(expr, ast.Name) and expr.id in bindings:
            reason = bindings[expr.id]
        elif isinstance(expr, (ast.Tuple, ast.List)):
            stack.extend(expr.elts)
        elif isinstance(expr, ast.Starred):
            stack.append(expr.value)
        elif (isinstance(expr, ast.Call)
                and dotted_name(expr.func) in ("partial",
                                               "functools.partial")):
            stack.extend(expr.args)
            stack.extend(k.value for k in expr.keywords)
        if reason is not None:
            sink.emit(
                UNPICKLABLE_PAYLOAD,
                Location(file=filename,
                         line=getattr(expr, "lineno", payload.call.lineno),
                         column=getattr(expr, "col_offset", None)),
                f"pool payload in {function.qualname} is {reason}; it "
                "cannot be pickled into a worker process",
            )


def _worker_entry_points(program: Program) -> Set[str]:
    entries: Set[str] = set()
    for module in program.modules.values():
        for function in module.functions.values():
            pool_vars = _pool_vars(function, module)
            for payload in _payloads_of(function, module, pool_vars):
                if not payload.is_callable_slot:
                    continue
                expr = payload.expr
                if isinstance(expr, ast.Name):
                    resolved = _resolve_name(program, module, expr.id)
                    if resolved is not None:
                        entries.add(resolved)
                else:
                    name = dotted_name(expr)
                    if name and "." in name:
                        resolved = _resolve_dotted(program, module, name)
                        if resolved is not None:
                            entries.add(resolved)
    return entries


def _resolve_name(program: Program, module: ModuleInfo,
                  name: str) -> Optional[str]:
    target = module.functions.get(name)
    if target is not None:
        return target.qualname
    imported = module.object_imports.get(name)
    if imported is not None:
        target_module, obj = imported.split(":", 1)
        info = program.modules.get(target_module)
        if info is not None and obj in info.functions:
            return info.functions[obj].qualname
    return None


def _resolve_dotted(program: Program, module: ModuleInfo,
                    name: str) -> Optional[str]:
    parts = name.split(".")
    alias_target = module.module_aliases.get(parts[0])
    if alias_target is not None and len(parts) == 2:
        info = program.modules.get(alias_target)
        if info is not None and parts[1] in info.functions:
            return info.functions[parts[1]].qualname
    return None


def _module_level_names(module: ModuleInfo) -> Set[str]:
    names = set(module.module_assigns)
    for node in module.tree.body:
        if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name):
            names.add(node.target.id)
    return names


def _local_names(function: FunctionInfo) -> Set[str]:
    """Names assigned (bare) inside the function -- they shadow globals
    unless declared ``global``."""
    names: Set[str] = set(function.params)
    declared_global: Set[str] = set()
    for node in ast.walk(function.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            for target in (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            ):
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
            elif isinstance(node.target, (ast.Tuple, ast.List)):
                names.update(
                    e.id for e in node.target.elts
                    if isinstance(e, ast.Name)
                )
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name):
                    names.add(item.optional_vars.id)
    return names - declared_global


def _global_mutations(
    function: FunctionInfo, module: ModuleInfo,
    sanctioned: FrozenSet[str],
) -> List[Tuple[ast.AST, str]]:
    """(node, global name) writes to unsanctioned module globals."""
    module_names = _module_level_names(module)
    locals_ = _local_names(function)
    declared_global: Set[str] = set()
    for node in ast.walk(function.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    mutations: List[Tuple[ast.AST, str]] = []

    def is_global(name: str) -> bool:
        if name in sanctioned:
            return False
        if name in declared_global:
            return True
        return name in module_names and name not in locals_

    for node in ast.walk(function.node):
        # rebinding through `global NAME; NAME = ...`
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if (isinstance(target, ast.Name)
                        and target.id in declared_global
                        and is_global(target.id)):
                    mutations.append((node, target.id))
                # NAME[...] = / NAME.attr = on a module-level binding
                elif (isinstance(target, (ast.Subscript, ast.Attribute))
                        and isinstance(target.value, ast.Name)
                        and is_global(target.value.id)):
                    mutations.append((node, target.value.id))
        # NAME.append(...) etc. on a module-level binding
        elif (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATING_METHODS
                and isinstance(node.func.value, ast.Name)
                and is_global(node.func.value.id)):
            mutations.append((node, node.func.value.id))
    return mutations


def check_pool_safety(
    program: Program,
    sanctioned: FrozenSet[str] = SANCTIONED_WORKER_GLOBALS,
) -> List[Diagnostic]:
    """Run S001-S003 over an analyzed program."""
    sink = DiagnosticSink()

    # S001: payload picklability at every dispatch site
    for module in program.modules.values():
        for function in module.functions.values():
            pool_vars = _pool_vars(function, module)
            payloads = _payloads_of(function, module, pool_vars)
            if not payloads:
                continue
            bindings = _local_unpicklable_bindings(function)
            for payload in payloads:
                _check_payload(payload, function, bindings, sink,
                               module.filename)

    # S002: global mutation from worker-reachable functions
    entries = _worker_entry_points(program)
    worker_reachable: Set[str] = set(entries)
    for entry in entries:
        worker_reachable |= program.reachable_from(entry)
    for qualname in sorted(worker_reachable):
        function = program.functions.get(qualname)
        if function is None:
            continue
        module = program.modules.get(function.module)
        if module is None:
            continue
        for node, name in _global_mutations(function, module, sanctioned):
            sink.emit(
                WORKER_GLOBAL_MUTATION,
                Location(file=function.filename,
                         line=getattr(node, "lineno", function.line),
                         column=getattr(node, "col_offset", None)),
                f"{function.qualname} runs in pool workers and mutates "
                f"module global {name!r}; worker-side writes to it are "
                "lost (or diverge) when the unit runs serially",
            )

    # S003: os._exit confined to the chaos package
    for module in program.modules.values():
        in_chaos = "/chaos/" in module.filename.replace("\\", "/") or \
            module.name.startswith("repro.chaos")
        if in_chaos:
            continue
        for function in module.functions.values():
            for call, _resolved in function.calls:
                if dotted_name(call.func) == "os._exit":
                    sink.emit(
                        HARD_EXIT_OUTSIDE_CHAOS,
                        Location(file=module.filename,
                                 line=call.lineno,
                                 column=call.col_offset),
                        f"os._exit in {function.qualname}; hard process "
                        "kills belong to the chaos layer's injection "
                        "primitives only",
                    )
    return sink.diagnostics
