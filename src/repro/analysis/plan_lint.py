"""Static linter for plans, materialization configs, and collapsed plans.

The cost-based scheme only beats blind strategies when every candidate
``[P, M_P]`` is structurally sound and the cost model's invariants hold.
This pass validates all of that *without executing anything*:

* **structure** -- cycles, dangling/inconsistent edges, empty plans,
  negative/NaN/inf costs (``P001``-``P004``);
* **configurations** -- flags for unknown operators, attempts to flip a
  bound (``f(o) = 0``) operator (``P005``-``P006``);
* **collapsed plans** -- every anchor materialized or a sink, group
  membership covering the plan, dominant paths consistent with the
  recorded runtime (``P007``-``P009``), plus the ``P010`` advisory for
  materialized sinks;
* **cost-model invariants** -- ``eta(c)`` in ``[0, 1]``, the wasted-work
  bound ``w(c) <= t(c)/2``, the attempts floor ``1 + a(c) >= 1``, and
  runtime monotonicity ``T(c) >= t(c)``, each evaluated symbolically over
  a grid of :class:`~repro.core.cost_model.ClusterStats`
  (``M001``-``M004``).

The entry points are :func:`lint_plan` (structure + collapse +
invariants for the plan's current flags), :func:`lint_mat_config`
(a candidate configuration against its plan) and :func:`lint_collapsed`
(an already-built collapsed plan, e.g. from a custom collapse
implementation).  ``engine.coordinator`` and ``core.enumeration`` call
:func:`preflight_check` before touching a plan; pass
``preflight_lint=False`` there to opt out.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..core import cost_model
from ..core.collapse import CollapsedPlan, collapse_plan
from ..core.cost_model import ClusterStats
from ..core.plan import Plan, PlanError
from .diagnostics import (
    Diagnostic,
    DiagnosticSink,
    Location,
    Severity,
    register_rule,
    require_clean,
)

# ----------------------------------------------------------------------
# rule catalog
# ----------------------------------------------------------------------
EMPTY_PLAN = register_rule(
    "P001", Severity.ERROR,
    "plan has no operators",
    "build the plan before linting; an empty DAG cannot be scheduled",
)
CYCLE = register_rule(
    "P002", Severity.ERROR,
    "plan contains a cycle",
    "plans must be DAGs; check the edge list for a back edge",
)
DANGLING_EDGE = register_rule(
    "P003", Severity.ERROR,
    "edge references a missing operator or the adjacency lists disagree",
    "use Plan.add_operator/add_edge instead of mutating internals",
)
INVALID_COST = register_rule(
    "P004", Severity.ERROR,
    "operator or group cost is negative, NaN, or infinite",
    "cost estimates must be finite and >= 0; check the statistics layer",
)
BOUND_FLIP = register_rule(
    "P005", Severity.ERROR,
    "configuration flips the m(o) flag of a bound (f(o)=0) operator",
    "bound operators are excluded from enumeration; drop them from the "
    "configuration or re-bind the operator",
)
UNKNOWN_OPERATOR = register_rule(
    "P006", Severity.ERROR,
    "configuration references an operator id not in the plan",
    "configurations may only name the plan's free operators",
)
ANCHOR_NOT_MATERIALIZED = register_rule(
    "P007", Severity.ERROR,
    "collapsed group anchored on an operator that neither materializes "
    "nor is a sink",
    "a recovery unit must end at a materialization boundary (or stream "
    "to the client from a sink)",
)
COVERAGE_GAP = register_rule(
    "P008", Severity.ERROR,
    "collapsed groups do not cover every plan operator",
    "every operator must belong to at least one recovery unit; re-run "
    "collapse_plan",
)
DOMINANT_PATH_MISMATCH = register_rule(
    "P009", Severity.ERROR,
    "a group's dominant path is inconsistent with its members or its "
    "recorded runtime cost",
    "the dominant path must lie inside the group, end at the anchor, "
    "and sum (with the CONST_pipe discount) to tr(c)",
)
SINK_MATERIALIZATION = register_rule(
    "P010", Severity.WARNING,
    "a free sink materializes its output",
    "sink outputs leave the plan; materializing them pays tm without "
    "shortening any recovery",
)
ETA_BOUNDS = register_rule(
    "M001", Severity.ERROR,
    "per-attempt failure probability eta(c) falls outside [0, 1]",
    "eta = 1 - exp(-t/MTBF) is a probability; non-finite t(c) or a "
    "broken stats grid produces this",
)
WASTE_BOUND = register_rule(
    "M002", Severity.ERROR,
    "wasted work w(c) exceeds the paper's t(c)/2 approximation bound",
    "Eq. 3's exact waste is bounded by t(c)/2 (Eq. 4); a violation "
    "means corrupted costs",
)
ATTEMPTS_FLOOR = register_rule(
    "M003", Severity.ERROR,
    "total attempts 1 + a(c) dropped below one (or became NaN)",
    "a(c) counts *extra* attempts and must be >= 0 (Eq. 6)",
)
RUNTIME_MONOTONE = register_rule(
    "M004", Severity.ERROR,
    "runtime under failures T(c) is below the failure-free runtime t(c)",
    "T(c) = t(c) + a(c)(w(c) + MTTR) can never undercut t(c) (Eq. 8)",
)

#: relative tolerance for the numeric invariant comparisons
_REL_TOL = 1e-9


def default_stats_grid() -> List[ClusterStats]:
    """The grid the invariant rules are evaluated over.

    Spans three MTBF decades (one minute, one hour, one day) crossed
    with repair-free and slow-repair clusters -- enough to exercise both
    the high-failure and the asymptotic regimes of Equations 2-8.
    """
    grid = []
    for mtbf in (60.0, 3600.0, 86400.0):
        for mttr in (0.0, 30.0):
            grid.append(ClusterStats(mtbf=mtbf, mttr=mttr, nodes=10))
    return grid


# ----------------------------------------------------------------------
# structural checks
# ----------------------------------------------------------------------
def _finite_nonnegative(value: Optional[float]) -> bool:
    return value is None or (math.isfinite(value) and value >= 0)


def _loc(plan_name: Optional[str], obj: str) -> Location:
    return Location(plan=plan_name, obj=obj)


def _check_structure(plan: Plan, sink: DiagnosticSink,
                     plan_name: Optional[str]) -> bool:
    """Emit P001-P004; return True when the plan is safe to collapse."""
    if not plan.operators:
        sink.emit(EMPTY_PLAN, _loc(plan_name, "plan"),
                  "plan has no operators")
        return False

    sound = True
    known = set(plan.operators)
    consumers: Mapping[int, Sequence[int]] = plan._consumers
    producers: Mapping[int, Sequence[int]] = plan._producers
    for op_id in known:
        for consumer_id in consumers.get(op_id, ()):  # forward edges
            if consumer_id not in known:
                sink.emit(
                    DANGLING_EDGE, _loc(plan_name, f"edge {op_id}->{consumer_id}"),
                    f"edge {op_id} -> {consumer_id} points at an operator "
                    "that is not in the plan",
                )
                sound = False
            elif op_id not in producers.get(consumer_id, ()):
                sink.emit(
                    DANGLING_EDGE, _loc(plan_name, f"edge {op_id}->{consumer_id}"),
                    f"edge {op_id} -> {consumer_id} is missing from the "
                    "reverse adjacency list",
                )
                sound = False
        for producer_id in producers.get(op_id, ()):  # reverse edges
            if producer_id not in known:
                sink.emit(
                    DANGLING_EDGE, _loc(plan_name, f"edge {producer_id}->{op_id}"),
                    f"operator {op_id} lists missing producer {producer_id}",
                )
                sound = False

    if sound and _has_cycle(plan):
        sink.emit(CYCLE, _loc(plan_name, "plan"),
                  "the operator graph contains a cycle")
        sound = False

    for op_id, operator in sorted(plan.operators.items()):
        bad_fields = [
            name for name, value in (
                ("runtime_cost", operator.runtime_cost),
                ("mat_cost", operator.mat_cost),
                ("state_ckpt_cost", operator.state_ckpt_cost),
            )
            if not _finite_nonnegative(value)
        ]
        if bad_fields:
            sink.emit(
                INVALID_COST,
                _loc(plan_name, f"operator {op_id} ({operator.name})"),
                f"operator {op_id} has invalid {', '.join(bad_fields)}",
            )
            sound = False
    return sound


def _has_cycle(plan: Plan) -> bool:
    """Kahn's algorithm over the raw adjacency, never raising."""
    in_degree = {op_id: len(plan._producers.get(op_id, ()))
                 for op_id in plan.operators}
    ready = [op_id for op_id, deg in in_degree.items() if deg == 0]
    seen = 0
    while ready:
        op_id = ready.pop()
        seen += 1
        for consumer_id in plan._consumers.get(op_id, ()):
            if consumer_id not in in_degree:
                continue
            in_degree[consumer_id] -= 1
            if in_degree[consumer_id] == 0:
                ready.append(consumer_id)
    return seen != len(plan.operators)


# ----------------------------------------------------------------------
# configuration checks
# ----------------------------------------------------------------------
def lint_mat_config(
    plan: Plan,
    mat_config: Iterable[Tuple[int, bool]],
    plan_name: Optional[str] = None,
) -> List[Diagnostic]:
    """Validate a candidate materialization configuration (P005, P006)."""
    sink = DiagnosticSink()
    for op_id, flag in dict(mat_config).items():
        if op_id not in plan.operators:
            sink.emit(
                UNKNOWN_OPERATOR, _loc(plan_name, f"config[{op_id}]"),
                f"configuration names operator {op_id}, which is not in "
                "the plan",
            )
            continue
        operator = plan[op_id]
        if not operator.free and flag != operator.materialize:
            sink.emit(
                BOUND_FLIP,
                _loc(plan_name, f"operator {op_id} ({operator.name})"),
                f"operator {op_id} is bound to m(o)={int(operator.materialize)} "
                f"but the configuration sets m(o)={int(flag)}",
            )
    return sink.diagnostics


# ----------------------------------------------------------------------
# collapsed-plan and invariant checks
# ----------------------------------------------------------------------
def lint_collapsed(
    plan: Plan,
    collapsed: CollapsedPlan,
    stats_grid: Optional[Sequence[ClusterStats]] = None,
    const_pipe: float = 1.0,
    plan_name: Optional[str] = None,
) -> List[Diagnostic]:
    """Validate a collapsed plan against its source plan (P004, P007-P009)
    and evaluate the cost-model invariants over ``stats_grid`` (M001-M004).
    """
    sink = DiagnosticSink()
    if stats_grid is None:
        stats_grid = default_stats_grid()

    sinks_of_plan = set(plan.sinks)
    covered: Set[int] = set()
    for anchor_id in sorted(collapsed.groups):
        group = collapsed.groups[anchor_id]
        obj = f"group {group}"
        covered |= group.members

        if anchor_id not in plan.operators:
            sink.emit(COVERAGE_GAP, _loc(plan_name, obj),
                      f"anchor {anchor_id} is not a plan operator")
            continue
        anchor = plan[anchor_id]
        if not anchor.materialize and anchor_id not in sinks_of_plan:
            sink.emit(
                ANCHOR_NOT_MATERIALIZED, _loc(plan_name, obj),
                f"anchor {anchor_id} ({anchor.name}) has m(o)=0 and has "
                "consumers; its group has no recovery boundary",
            )

        cost_ok = True
        for field_name, value in (("runtime_cost", group.runtime_cost),
                                  ("mat_cost", group.mat_cost)):
            if not _finite_nonnegative(value):
                sink.emit(
                    INVALID_COST, _loc(plan_name, obj),
                    f"collapsed group {group} has invalid {field_name} "
                    f"({value!r})",
                )
                cost_ok = False

        _check_dominant_path(plan, group, const_pipe, sink, plan_name, obj)
        if cost_ok:
            sink.diagnostics.extend(
                lint_invariants(group.total_cost, stats_grid,
                                obj=obj, plan_name=plan_name)
            )

    missing = set(plan.operators) - covered
    if missing:
        sink.emit(
            COVERAGE_GAP, _loc(plan_name, "collapsed plan"),
            f"operators {sorted(missing)} belong to no collapsed group",
        )

    # bound-materialized sinks are the engine writing the query result;
    # only a *free* sink the enumeration chose to materialize is waste.
    for sink_id in sorted(sinks_of_plan):
        if (sink_id in plan.operators and plan[sink_id].materialize
                and plan[sink_id].free):
            sink.emit(
                SINK_MATERIALIZATION,
                _loc(plan_name, f"operator {sink_id} ({plan[sink_id].name})"),
                f"sink {sink_id} materializes its output "
                f"(tm={plan[sink_id].mat_cost:g}) with no downstream "
                "consumer to recover",
            )
    return sink.diagnostics


def _check_dominant_path(
    plan: Plan,
    group,
    const_pipe: float,
    sink: DiagnosticSink,
    plan_name: Optional[str],
    obj: str,
) -> None:
    path = group.dominant_path
    if not path or path[-1] != group.anchor_id:
        sink.emit(
            DOMINANT_PATH_MISMATCH, _loc(plan_name, obj),
            f"dominant path {list(path)} does not end at anchor "
            f"{group.anchor_id}",
        )
        return
    stray = [op_id for op_id in path if op_id not in group.members]
    if stray:
        sink.emit(
            DOMINANT_PATH_MISMATCH, _loc(plan_name, obj),
            f"dominant path operators {stray} are not members of the group",
        )
        return
    if any(op_id not in plan.operators for op_id in path):
        return  # coverage rule already reported the missing operator
    path_runtime = sum(plan[op_id].runtime_cost for op_id in path)
    pipe = const_pipe if len(path) > 1 else 1.0
    expected = path_runtime * pipe
    if not math.isfinite(expected) or not math.isfinite(group.runtime_cost):
        return  # P004 owns non-finite costs
    if not math.isclose(group.runtime_cost, expected, rel_tol=_REL_TOL,
                        abs_tol=1e-12):
        sink.emit(
            DOMINANT_PATH_MISMATCH, _loc(plan_name, obj),
            f"recorded tr(c)={group.runtime_cost:g} but the dominant path "
            f"sums to {expected:g} (CONST_pipe={pipe:g})",
        )


def lint_invariants(
    total_cost: float,
    stats_grid: Optional[Sequence[ClusterStats]] = None,
    eta_fn=None,
    waste_fn=None,
    attempts_fn=None,
    runtime_fn=None,
    obj: str = "t(c)",
    plan_name: Optional[str] = None,
) -> List[Diagnostic]:
    """Evaluate the M001-M004 invariants for one collapsed-operator cost.

    The four model functions default to the paper's implementation in
    :mod:`repro.core.cost_model`; pass replacements to validate an
    alternative cost-model implementation (e.g. a new wasted-work
    approximation) against the invariants before trusting its estimates:

    * ``eta_fn(t, mtbf_cost) -> eta(c)``           must land in ``[0, 1]``
    * ``waste_fn(t, mtbf_cost) -> w(c)``           must stay ``<= t/2``
    * ``attempts_fn(t, mtbf_cost, S) -> a(c)``     must keep ``1 + a >= 1``
    * ``runtime_fn(t, stats) -> T(c)``             must keep ``T >= t``
    """
    sink = DiagnosticSink()
    if stats_grid is None:
        stats_grid = default_stats_grid()
    eta_fn = eta_fn or cost_model.failure_probability
    waste_fn = waste_fn or cost_model.wasted_runtime_exact
    attempts_fn = attempts_fn or cost_model.attempts
    runtime_fn = runtime_fn or cost_model.operator_runtime
    for stats in stats_grid:
        mtbf_cost = stats.mtbf_cost
        try:
            eta = eta_fn(total_cost, mtbf_cost)
            wasted = waste_fn(total_cost, mtbf_cost)
            extra = attempts_fn(
                total_cost, mtbf_cost, stats.success_percentile
            )
            runtime = runtime_fn(total_cost, stats)
        except (ValueError, OverflowError) as exc:
            sink.emit(
                INVALID_COST, _loc(plan_name, obj),
                f"cost model rejected t(c)={total_cost!r} at "
                f"MTBF={stats.mtbf:g}: {exc}",
            )
            return sink.diagnostics
        grid_point = f"MTBF={stats.mtbf:g}s MTTR={stats.mttr:g}s"
        if not (0.0 <= eta <= 1.0):  # NaN also lands here
            sink.emit(
                ETA_BOUNDS, _loc(plan_name, obj),
                f"eta(c)={eta!r} outside [0, 1] at {grid_point}",
            )
        half = total_cost / 2.0
        if not (wasted <= half * (1.0 + _REL_TOL) or
                math.isclose(wasted, half, rel_tol=_REL_TOL)):
            sink.emit(
                WASTE_BOUND, _loc(plan_name, obj),
                f"w(c)={wasted!r} exceeds t(c)/2={half!r} at {grid_point}",
            )
        if not (1.0 + extra >= 1.0):  # catches extra < 0 and NaN
            sink.emit(
                ATTEMPTS_FLOOR, _loc(plan_name, obj),
                f"1 + a(c) = {1.0 + extra!r} < 1 at {grid_point}",
            )
        if not (runtime >= total_cost * (1.0 - _REL_TOL)):
            sink.emit(
                RUNTIME_MONOTONE, _loc(plan_name, obj),
                f"T(c)={runtime!r} below t(c)={total_cost!r} at {grid_point}",
            )
    return sink.diagnostics


# ----------------------------------------------------------------------
# top-level entry points
# ----------------------------------------------------------------------
def lint_plan(
    plan: Plan,
    stats_grid: Optional[Sequence[ClusterStats]] = None,
    const_pipe: float = 1.0,
    plan_name: Optional[str] = None,
) -> List[Diagnostic]:
    """Full static validation of one plan under its current ``m(o)`` flags.

    Runs the structural rules first; only when the plan is structurally
    sound does it collapse the plan and run the collapsed-plan and
    cost-model invariant rules (a broken DAG cannot be collapsed
    meaningfully).
    """
    sink = DiagnosticSink()
    sound = _check_structure(plan, sink, plan_name)
    if sound:
        try:
            collapsed = collapse_plan(plan, const_pipe=const_pipe)
        except (PlanError, ValueError) as exc:
            sink.emit(
                DANGLING_EDGE, _loc(plan_name, "plan"),
                f"collapse failed on a structurally-valid plan: {exc}",
            )
        else:
            sink.diagnostics.extend(
                lint_collapsed(plan, collapsed, stats_grid=stats_grid,
                               const_pipe=const_pipe, plan_name=plan_name)
            )
    return sink.diagnostics


def preflight_check(
    plan: Plan,
    stats: Optional[ClusterStats] = None,
    plan_name: Optional[str] = None,
) -> None:
    """Cheap pre-execution gate used by the coordinator and the search.

    Lints the plan over a single-point grid (the caller's own stats,
    when given) and raises
    :class:`~repro.analysis.diagnostics.LintError` on error-severity
    findings.  Warnings (e.g. ``P010``) do not block execution.
    """
    grid = [stats] if stats is not None else None
    const_pipe = stats.const_pipe if stats is not None else 1.0
    require_clean(
        lint_plan(plan, stats_grid=grid, const_pipe=const_pipe,
                  plan_name=plan_name)
    )
