"""Static analysis: plan/invariant linting and custom AST code rules.

Two passes over one diagnostics framework:

* :mod:`repro.analysis.plan_lint` -- validates :class:`~repro.core.plan.Plan`
  DAGs, materialization configurations, collapsed plans, and the cost
  model's invariants without executing anything (rules ``P0xx``/``M0xx``);
* :mod:`repro.analysis.code_lint` -- ``ast``-based rules for repo-specific
  hazards such as unseeded RNGs in the deterministic simulator (rules
  ``C0xx``).

Run both from the command line with ``python -m repro lint``; the rule
catalog is documented in ``docs/analysis.md``.
"""

from .code_lint import (
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    module_is_deterministic,
)
from .diagnostics import (
    RULES,
    Diagnostic,
    DiagnosticSink,
    LintError,
    Location,
    Rule,
    Severity,
    format_json,
    format_text,
    has_errors,
    max_severity,
    register_rule,
    require_clean,
)
from .plan_lint import (
    default_stats_grid,
    lint_collapsed,
    lint_invariants,
    lint_mat_config,
    lint_plan,
    preflight_check,
)

__all__ = [
    "RULES",
    "Diagnostic",
    "DiagnosticSink",
    "LintError",
    "Location",
    "Rule",
    "Severity",
    "default_stats_grid",
    "format_json",
    "format_text",
    "has_errors",
    "iter_python_files",
    "lint_collapsed",
    "lint_file",
    "lint_invariants",
    "lint_mat_config",
    "lint_paths",
    "lint_plan",
    "lint_source",
    "max_severity",
    "module_is_deterministic",
    "preflight_check",
    "register_rule",
    "require_clean",
]
