"""Static analysis: plan/invariant linting, AST rules, and flow analysis.

Four passes over one diagnostics framework:

* :mod:`repro.analysis.plan_lint` -- validates :class:`~repro.core.plan.Plan`
  DAGs, materialization configurations, collapsed plans, and the cost
  model's invariants without executing anything (rules ``P0xx``/``M0xx``);
* :mod:`repro.analysis.code_lint` -- ``ast``-based rules for repo-specific
  hazards such as unseeded RNGs in the deterministic simulator (rules
  ``C0xx``);
* :mod:`repro.analysis.flow` -- whole-program call-graph + dataflow
  analysis: seed threading (``D0xx``), pool safety (``S0xx``) and merge
  order (``O0xx``);
* :mod:`repro.analysis.sanitizer` -- the *runtime* counterpart of the
  flow pass: fingerprint-based jobs=1 vs jobs=N replay comparison with
  per-unit divergence localization (imported lazily by the CLI -- it
  pulls in the campaign engine).

Run the static passes from the command line with ``python -m repro
lint`` (``--baseline FILE`` suppresses recorded findings) and the
sanitizer with ``python -m repro sanitize``; the rule catalog is
documented in ``docs/analysis.md``.
"""

from .code_lint import (
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    module_is_deterministic,
)
from .diagnostics import (
    RULES,
    Diagnostic,
    DiagnosticSink,
    LintError,
    Location,
    Rule,
    Severity,
    apply_baseline,
    baseline_key,
    format_json,
    format_text,
    has_errors,
    load_baseline,
    max_severity,
    register_rule,
    require_clean,
    write_baseline,
)
from .flow import lint_flow
from .plan_lint import (
    default_stats_grid,
    lint_collapsed,
    lint_invariants,
    lint_mat_config,
    lint_plan,
    preflight_check,
)

__all__ = [
    "RULES",
    "Diagnostic",
    "DiagnosticSink",
    "LintError",
    "Location",
    "Rule",
    "Severity",
    "apply_baseline",
    "baseline_key",
    "default_stats_grid",
    "format_json",
    "format_text",
    "has_errors",
    "iter_python_files",
    "lint_collapsed",
    "lint_file",
    "lint_flow",
    "lint_invariants",
    "lint_mat_config",
    "lint_paths",
    "lint_plan",
    "lint_source",
    "load_baseline",
    "max_severity",
    "module_is_deterministic",
    "preflight_check",
    "register_rule",
    "require_clean",
    "write_baseline",
]
