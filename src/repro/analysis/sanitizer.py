"""Runtime replay sanitizer: localize jobs=1 vs jobs=N divergence.

The static flow pass (:mod:`repro.analysis.flow`) proves seed threading
and pool safety; this module checks the resulting contract *at runtime*
and, when it breaks, says **where**.  It fingerprints every unit result
of a campaign plus the merged artifact, runs the same workload at two
job counts, and reports the first divergent unit with its span path --
turning "bit-identical" from a bare test assertion into a localizable
diagnosis.

Fingerprints are stdlib-only (``hashlib.blake2b`` over a canonical
encoding): floats hash by their IEEE-754 bits via ``struct``, so a
single last-bit difference from a reordered float sum is caught;
container types are length-prefixed and type-tagged so ``(1,)`` and
``[1]`` differ; dicts and sets are encoded in sorted order so the
fingerprint itself never depends on iteration order.

Typical use (also wired to ``python -m repro sanitize``)::

    from repro.analysis.sanitizer import replay_campaign
    report = replay_campaign(cells, cluster, jobs=4)
    if not report.ok:
        print(report.describe())    # first divergent unit + span path
"""

from __future__ import annotations

import dataclasses
import hashlib
import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

_FINGERPRINT_BYTES = 8


def _encode(value: Any, out: "bytearray") -> None:
    """Append a canonical, type-tagged encoding of ``value``."""
    if value is None:
        out += b"N"
    elif isinstance(value, bool):          # before int: bool is an int
        out += b"b1" if value else b"b0"
    elif isinstance(value, int):
        data = str(value).encode("ascii")
        out += b"i" + str(len(data)).encode("ascii") + b":" + data
    elif isinstance(value, float):
        # IEEE bits, not repr: catches last-bit reassociation drift and
        # distinguishes -0.0 / nan payloads
        out += b"f" + struct.pack("<d", value)
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out += b"s" + str(len(data)).encode("ascii") + b":" + data
    elif isinstance(value, bytes):
        out += b"y" + str(len(value)).encode("ascii") + b":" + value
    elif isinstance(value, (tuple, list)):
        out += b"t(" if isinstance(value, tuple) else b"l("
        for item in value:
            _encode(item, out)
        out += b")"
    elif isinstance(value, dict):
        out += b"d("
        for key in sorted(value, key=repr):
            _encode(key, out)
            _encode(value[key], out)
        out += b")"
    elif isinstance(value, (set, frozenset)):
        encoded = []
        for item in value:
            buffer = bytearray()
            _encode(item, buffer)
            encoded.append(bytes(buffer))
        out += b"S("
        for item in sorted(encoded):
            out += item
        out += b")"
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        out += b"D" + type(value).__name__.encode("utf-8") + b"("
        for field_info in dataclasses.fields(value):
            _encode(field_info.name, out)
            _encode(getattr(value, field_info.name), out)
        out += b")"
    else:
        # last resort: a stable repr (covers enums, Paths, ...); objects
        # with address-bearing default reprs should not appear in rows
        out += b"r" + repr(value).encode("utf-8")


def fingerprint(value: Any) -> str:
    """Short stable hex fingerprint of an (almost) arbitrary value."""
    out = bytearray()
    _encode(value, out)
    return hashlib.blake2b(
        bytes(out), digest_size=_FINGERPRINT_BYTES
    ).hexdigest()


def unit_fingerprints(rows: Sequence[Any]) -> List[str]:
    """Per-unit fingerprints of a campaign's result rows, in unit order."""
    return [fingerprint(row) for row in rows]


@dataclass(frozen=True)
class UnitDivergence:
    """One unit whose fingerprint differs between the two runs."""

    unit_index: int
    span_path: str                   #: campaign/cell[i]:label/unit[...]
    fingerprint_a: str
    fingerprint_b: str

    def describe(self) -> str:
        return (
            f"unit {self.unit_index} diverged at {self.span_path}: "
            f"{self.fingerprint_a} != {self.fingerprint_b}"
        )


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of one jobs=A vs jobs=B replay comparison."""

    jobs_a: int
    jobs_b: int
    unit_count: int
    divergences: Tuple[UnitDivergence, ...]
    merged_fingerprint_a: str
    merged_fingerprint_b: str
    #: deterministic-counter deltas: name -> (run A total, run B total)
    counter_deltas: Tuple[Tuple[str, int, int], ...] = ()

    @property
    def ok(self) -> bool:
        return (not self.divergences
                and self.merged_fingerprint_a == self.merged_fingerprint_b
                and not self.counter_deltas)

    @property
    def first_divergence(self) -> Optional[UnitDivergence]:
        return self.divergences[0] if self.divergences else None

    def describe(self) -> str:
        """Human-readable verdict, leading with the first divergence."""
        if self.ok:
            return (
                f"replay clean: {self.unit_count} unit fingerprints and "
                f"the merged artifact identical at jobs={self.jobs_a} "
                f"vs jobs={self.jobs_b}"
            )
        lines = [
            f"replay DIVERGED between jobs={self.jobs_a} and "
            f"jobs={self.jobs_b}:"
        ]
        first = self.first_divergence
        if first is not None:
            lines.append("  first divergent unit: " + first.describe())
            if len(self.divergences) > 1:
                lines.append(
                    f"  ({len(self.divergences) - 1} further unit(s) "
                    "diverged)"
                )
        elif self.merged_fingerprint_a != self.merged_fingerprint_b:
            lines.append(
                "  every unit matched but the merged artifact differs "
                f"({self.merged_fingerprint_a} != "
                f"{self.merged_fingerprint_b}): suspect merge order"
            )
        for name, total_a, total_b in self.counter_deltas:
            lines.append(
                f"  counter {name!r}: {total_a} != {total_b}"
            )
        return "\n".join(lines)


def _span_path(row: Any, unit_index: int) -> str:
    """Span-path label of one unit, from its result row's identity."""
    cell = getattr(row, "cell_index", None)
    label = getattr(row, "label", None)
    scheme = getattr(row, "scheme", None)
    mtbf = getattr(row, "mtbf", None)
    path = "campaign"
    if cell is not None:
        path += f"/cell[{cell}]"
        if label:
            path += f":{label}"
    path += f"/unit[{unit_index}]"
    if scheme:
        path += f":{scheme}"
    if mtbf is not None:
        path += f"@mtbf={mtbf:g}"
    return path


def compare_runs(
    rows_a: Sequence[Any],
    rows_b: Sequence[Any],
    counters_a: Optional[Dict[str, int]] = None,
    counters_b: Optional[Dict[str, int]] = None,
    jobs_a: int = 1,
    jobs_b: int = 1,
) -> ReplayReport:
    """Fingerprint-compare two runs of the same workload.

    Separable from :func:`replay_campaign` so tests can hand-inject a
    divergent row and assert on the localization.  A length mismatch is
    reported as a divergence at the first missing unit.
    """
    prints_a = unit_fingerprints(rows_a)
    prints_b = unit_fingerprints(rows_b)
    divergences: List[UnitDivergence] = []
    for index in range(max(len(prints_a), len(prints_b))):
        print_a = prints_a[index] if index < len(prints_a) else "<absent>"
        print_b = prints_b[index] if index < len(prints_b) else "<absent>"
        if print_a == print_b:
            continue
        row = (rows_a[index] if index < len(rows_a)
               else rows_b[index] if index < len(rows_b) else None)
        divergences.append(UnitDivergence(
            unit_index=index,
            span_path=_span_path(row, index),
            fingerprint_a=print_a,
            fingerprint_b=print_b,
        ))
    deltas: List[Tuple[str, int, int]] = []
    if counters_a is not None and counters_b is not None:
        for name in sorted(set(counters_a) | set(counters_b)):
            total_a = counters_a.get(name, 0)
            total_b = counters_b.get(name, 0)
            if total_a != total_b:
                deltas.append((name, total_a, total_b))
    return ReplayReport(
        jobs_a=jobs_a,
        jobs_b=jobs_b,
        unit_count=max(len(rows_a), len(rows_b)),
        divergences=tuple(divergences),
        merged_fingerprint_a=fingerprint(list(prints_a)),
        merged_fingerprint_b=fingerprint(list(prints_b)),
        counter_deltas=tuple(deltas),
    )


def replay_campaign(
    cells: Sequence[Any],
    cluster: Any,
    jobs: int = 4,
    chaos: Optional[Any] = None,
    compare_counters: bool = True,
) -> ReplayReport:
    """Run ``cells`` at jobs=1 and jobs=``jobs``; compare fingerprints.

    Each run records under its own :mod:`repro.obs` recorder; counter
    totals are compared through
    :meth:`~repro.obs.recorder.Recorder.deterministic_counters`, which
    excludes the process-local cache/retry namespaces.
    """
    from .. import obs
    from ..engine.campaign import run_campaign

    if jobs < 2:
        raise ValueError("replay needs jobs >= 2 to exercise the pool")

    with obs.recording() as recorder_serial:
        rows_serial = run_campaign(list(cells), cluster, jobs=1,
                                   chaos=chaos)
        counters_serial = recorder_serial.deterministic_counters()
    with obs.recording() as recorder_pool:
        rows_pool = run_campaign(list(cells), cluster, jobs=jobs,
                                 chaos=chaos)
        counters_pool = recorder_pool.deterministic_counters()
    return compare_runs(
        rows_serial, rows_pool,
        counters_serial if compare_counters else None,
        counters_pool if compare_counters else None,
        jobs_a=1, jobs_b=jobs,
    )


def replay_sharded_search(
    plans: Sequence[Any],
    stats: Any,
    pruning: Optional[Any] = None,
    shards: int = 8,
    parallelism: int = 2,
    config_limit: Optional[int] = None,
) -> ReplayReport:
    """Replay one search at shards=1 vs sharded/pooled; compare.

    The sharded subsystem promises a reduce that is independent of shard
    count, worker count and bound-propagation timing.  This replay runs
    the identical workload twice -- once as a single in-process shard,
    once over ``shards`` shards on ``parallelism`` workers -- and
    fingerprints the winning ``(cost, plan, mask)`` key per plan set,
    plus the deterministic counters
    (:meth:`~repro.obs.recorder.Recorder.deterministic_counters`), which
    exclude the scheduling-dependent bound/prefilter tallies by design.
    """
    from .. import obs
    from ..core.pruning import PruningConfig
    from ..core.shard import sharded_search

    if pruning is None:
        pruning = PruningConfig.all()
    with obs.recording() as recorder_serial:
        key_serial, stats_serial = sharded_search(
            list(plans), stats, pruning, shards=1, parallelism=1,
            config_limit=config_limit,
        )
        counters_serial = recorder_serial.deterministic_counters()
    with obs.recording() as recorder_pool:
        key_pool, stats_pool = sharded_search(
            list(plans), stats, pruning, shards=shards,
            parallelism=parallelism, config_limit=config_limit,
        )
        counters_pool = recorder_pool.deterministic_counters()
    rows_serial = [
        (key_serial, stats_serial.configs_total,
         stats_serial.configs_enumerated),
    ]
    rows_pool = [
        (key_pool, stats_pool.configs_total,
         stats_pool.configs_enumerated),
    ]
    return compare_runs(
        rows_serial, rows_pool, counters_serial, counters_pool,
        jobs_a=1, jobs_b=parallelism,
    )


def quick_search_workload() -> Tuple[List[Any], Any, Optional[int]]:
    """A small (plans, stats, config_limit) triple for CI quick replay.

    A synthetic 12-join DAG: large enough that shards=8 cuts genuinely
    different Gray ranges, small enough to finish in seconds.
    """
    from ..core.cost_model import ClusterStats
    from ..joinorder.synthetic import SyntheticSpec, synthetic_plan

    plan = synthetic_plan(SyntheticSpec(n_joins=12, seed=4))
    base = sum(op.runtime_cost for op in plan.operators.values())
    stats = ClusterStats(mtbf=base * 20.0, mttr=base * 0.1,
                         const_pipe=0.9)
    return [plan], stats, 1024


def quick_workload() -> Tuple[List[Any], Any]:
    """A small (cells, cluster) pair for CI quick-mode replay.

    Two plans x two MTBFs, few traces: enough units to exercise the
    chunking and merge paths at jobs=4 while staying fast.
    """
    from ..core.plan import linear_plan
    from ..engine.campaign import CampaignCell
    from ..engine.cluster import Cluster

    chain = linear_plan([(4.0, 1.0), (6.0, 2.0), (3.0, 1.5), (5.0, 1.0)])
    short = linear_plan([(8.0, 2.5), (2.0, 0.5)])
    cells = [
        CampaignCell(label="quick-chain", plan=chain, mtbf=mtbf,
                     trace_count=3, base_seed=7)
        for mtbf in (25.0, 80.0)
    ] + [
        CampaignCell(label="quick-short", plan=short, mtbf=40.0,
                     trace_count=3, base_seed=11),
    ]
    return cells, Cluster(nodes=4, mttr=1.0)
