"""Shared diagnostics framework for the static-analysis passes.

Both linters -- the plan linter (:mod:`repro.analysis.plan_lint`) and the
AST code linter (:mod:`repro.analysis.code_lint`) -- report their findings
through the same vocabulary: a :class:`Diagnostic` carries a stable rule
id, a :class:`Severity`, a :class:`Location` (a source file/line for code
findings, an operator/group for plan findings), a human-readable message,
and a fix hint.  The rule catalog itself is first-class
(:data:`RULES`), so the CLI can list it and the docs stay in sync with
the implementation.

Rule id namespaces:

* ``P0xx`` -- structural plan/configuration rules,
* ``M0xx`` -- cost-model invariant rules (evaluated over a grid of
  :class:`~repro.core.cost_model.ClusterStats`),
* ``C0xx`` -- AST code rules for repo-specific hazards.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence


class Severity(enum.IntEnum):
    """Finding severity; ordered so ``max()`` picks the worst."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Location:
    """Where a finding points.

    Code findings fill ``file``/``line``/``column``; plan findings fill
    ``obj`` with a description of the offending plan object (an operator,
    a collapsed group, a configuration entry) and optionally ``plan`` with
    the plan's name.
    """

    file: Optional[str] = None
    line: Optional[int] = None
    column: Optional[int] = None
    plan: Optional[str] = None
    obj: Optional[str] = None

    def __str__(self) -> str:
        if self.file is not None:
            text = self.file
            if self.line is not None:
                text += f":{self.line}"
                if self.column is not None:
                    text += f":{self.column}"
            return text
        parts = [part for part in (self.plan, self.obj) if part]
        return " ".join(parts) if parts else "<unknown>"

    def as_dict(self) -> Dict[str, Any]:
        return {
            key: value
            for key, value in (
                ("file", self.file),
                ("line", self.line),
                ("column", self.column),
                ("plan", self.plan),
                ("obj", self.obj),
            )
            if value is not None
        }


@dataclass(frozen=True)
class Rule:
    """One entry of the rule catalog."""

    rule_id: str
    severity: Severity
    summary: str
    hint: str

    def at(self, location: Location, message: str,
           severity: Optional[Severity] = None,
           hint: Optional[str] = None) -> "Diagnostic":
        """Instantiate a finding of this rule at ``location``."""
        return Diagnostic(
            rule_id=self.rule_id,
            severity=self.severity if severity is None else severity,
            location=location,
            message=message,
            hint=self.hint if hint is None else hint,
        )


@dataclass(frozen=True)
class Diagnostic:
    """One finding of either linter."""

    rule_id: str
    severity: Severity
    location: Location
    message: str
    hint: str = ""

    def format(self) -> str:
        text = f"{self.location}: {self.rule_id} {self.severity}: {self.message}"
        if self.hint:
            text += f"  [hint: {self.hint}]"
        return text

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "rule_id": self.rule_id,
            "severity": str(self.severity),
            "location": self.location.as_dict(),
            "message": self.message,
        }
        if self.hint:
            payload["hint"] = self.hint
        return payload


#: global rule catalog, populated by the linter modules at import time
RULES: Dict[str, Rule] = {}


def register_rule(rule_id: str, severity: Severity, summary: str,
                  hint: str) -> Rule:
    """Add a rule to the catalog; ids must be unique and stable."""
    if rule_id in RULES:
        raise ValueError(f"duplicate rule id {rule_id}")
    rule = Rule(rule_id=rule_id, severity=severity, summary=summary,
                hint=hint)
    RULES[rule_id] = rule
    return rule


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    """True when any finding is error-severity."""
    return any(d.severity >= Severity.ERROR for d in diagnostics)


def max_severity(diagnostics: Sequence[Diagnostic]) -> Optional[Severity]:
    """The worst severity present, or ``None`` for a clean result."""
    if not diagnostics:
        return None
    return max(d.severity for d in diagnostics)


def format_text(diagnostics: Sequence[Diagnostic]) -> str:
    """Render findings plus a one-line summary, for terminals."""
    lines = [d.format() for d in diagnostics]
    errors = sum(1 for d in diagnostics if d.severity >= Severity.ERROR)
    warnings = sum(1 for d in diagnostics
                   if d.severity == Severity.WARNING)
    lines.append(
        f"{len(diagnostics)} finding(s): {errors} error(s), "
        f"{warnings} warning(s)"
    )
    return "\n".join(lines)


#: schema tag pinned into every JSON export; bump only on breaking
#: shape changes so downstream tooling can assert compatibility.
JSON_SCHEMA = "repro-lint/1"


def _export_order(diagnostic: Diagnostic) -> tuple:
    location = diagnostic.location
    return (
        location.file or "",
        location.plan or "",
        location.obj or "",
        location.line or 0,
        location.column or 0,
        diagnostic.rule_id,
        diagnostic.message,
    )


def format_json(diagnostics: Sequence[Diagnostic]) -> str:
    """Render findings as a JSON document for tooling.

    The export is fully deterministic: object keys are sorted and the
    findings themselves are emitted in (file, plan, line, rule) order,
    independent of the order the passes produced them -- so diffs of
    exported reports reflect real changes only.
    """
    ordered = sorted(diagnostics, key=_export_order)
    payload = {
        "schema": JSON_SCHEMA,
        "findings": [d.as_dict() for d in ordered],
        "errors": sum(1 for d in diagnostics
                      if d.severity >= Severity.ERROR),
        "warnings": sum(1 for d in diagnostics
                        if d.severity == Severity.WARNING),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# baselines: land a strict pass without blocking on pre-existing debt
# ----------------------------------------------------------------------
#: baseline file schema tag (independent of the findings export);
#: named SUPPRESSION_* because 'baseline' is a cost-valued identifier
#: fragment to the C004 rule
SUPPRESSION_SCHEMA = "repro-lint-baseline/1"


def baseline_key(diagnostic: Diagnostic) -> str:
    """Stable identity of a finding for baseline comparison.

    Deliberately excludes the line/column so that unrelated edits above
    a baselined finding do not resurface it; two findings of the same
    rule with the same message in the same file still collapse to one
    key, which is the behaviour a suppression file wants.
    """
    location = diagnostic.location
    where = location.file or " ".join(
        part for part in (location.plan, location.obj) if part
    )
    return f"{diagnostic.rule_id}|{where}|{diagnostic.message}"


def write_baseline(path: str,
                   diagnostics: Sequence[Diagnostic]) -> int:
    """Record current findings at ``path``; returns the key count."""
    keys = sorted({baseline_key(d) for d in diagnostics})
    payload = {"schema": SUPPRESSION_SCHEMA, "keys": keys}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(keys)


def load_baseline(path: str) -> "set[str]":
    """Read a baseline file written by :func:`write_baseline`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("schema") != \
            SUPPRESSION_SCHEMA:
        raise ValueError(
            f"{path}: not a {SUPPRESSION_SCHEMA} baseline file"
        )
    keys = payload.get("keys", [])
    if not isinstance(keys, list):
        raise ValueError(f"{path}: malformed baseline key list")
    return set(keys)


def apply_baseline(diagnostics: Sequence[Diagnostic],
                   baseline: "set[str]") -> List[Diagnostic]:
    """Drop findings whose :func:`baseline_key` is baselined."""
    return [d for d in diagnostics if baseline_key(d) not in baseline]


class LintError(ValueError):
    """Raised by :func:`require_clean` when error findings are present."""

    def __init__(self, diagnostics: Sequence[Diagnostic]) -> None:
        self.diagnostics: List[Diagnostic] = list(diagnostics)
        errors = [d for d in self.diagnostics
                  if d.severity >= Severity.ERROR]
        detail = "; ".join(d.format() for d in errors[:5])
        if len(errors) > 5:
            detail += f"; ... and {len(errors) - 5} more"
        super().__init__(f"lint found {len(errors)} error(s): {detail}")


def require_clean(diagnostics: Sequence[Diagnostic]) -> None:
    """Raise :class:`LintError` when any error-severity finding exists."""
    if has_errors(diagnostics):
        raise LintError(diagnostics)


@dataclass
class DiagnosticSink:
    """Accumulates findings during a lint pass (internal helper)."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def emit(self, rule: Rule, location: Location, message: str,
             severity: Optional[Severity] = None,
             hint: Optional[str] = None) -> None:
        self.diagnostics.append(
            rule.at(location, message, severity=severity, hint=hint)
        )
