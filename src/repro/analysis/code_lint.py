"""Custom AST lint rules for repo-specific hazards.

Generic linters do not know that this codebase contains a *deterministic*
failure simulator whose results must be reproducible bit-for-bit from a
seed, or that engine cost values are floats that must never be compared
with ``==``.  This pass encodes those house rules:

* ``C001`` -- unseeded ``random.Random()`` / global ``random.*`` draws,
* ``C002`` -- unseeded NumPy RNG (``np.random.default_rng()`` with no
  seed, or legacy global draws like ``np.random.rand``),
* ``C003`` -- wall-clock reads (``time.time()``, ``datetime.now()``, ...)
  inside the deterministic simulator/core modules,
* ``C004`` -- float ``==`` / ``!=`` on cost-valued expressions,
* ``C005`` -- mutable default arguments,
* ``C006`` -- bare or silent ``except`` handlers.

Entry points: :func:`lint_source` (one source string),
:func:`lint_file`, and :func:`lint_paths` (recursive over a tree,
skipping ``tests``/hidden directories).  Findings use the shared
:mod:`repro.analysis.diagnostics` vocabulary.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Iterable, List, Optional, Sequence

from .diagnostics import (
    Diagnostic,
    DiagnosticSink,
    Location,
    Severity,
    register_rule,
)

SYNTAX_ERROR = register_rule(
    "C000", Severity.ERROR,
    "file does not parse",
    "fix the syntax error; nothing else can be checked until it parses",
)
UNSEEDED_RANDOM = register_rule(
    "C001", Severity.ERROR,
    "unseeded stdlib RNG (random.Random() or a global random.* draw)",
    "pass an explicit seed, e.g. random.Random(seed); the simulator "
    "must replay identically from a seed",
)
UNSEEDED_NP_RANDOM = register_rule(
    "C002", Severity.ERROR,
    "unseeded NumPy RNG (default_rng() without a seed, or a legacy "
    "np.random.* global draw)",
    "use np.random.default_rng(seed) with a derived, explicit seed",
)
WALL_CLOCK = register_rule(
    "C003", Severity.ERROR,
    "wall-clock read inside a deterministic simulator/core module",
    "simulated time must come from the trace/timeline, never from "
    "time.time()/datetime.now()",
)
FLOAT_COST_EQ = register_rule(
    "C004", Severity.ERROR,
    "float == / != on a cost-valued expression",
    "use math.isclose (or an ordered comparison) -- cost arithmetic "
    "accumulates rounding error",
)
MUTABLE_DEFAULT = register_rule(
    "C005", Severity.ERROR,
    "mutable default argument",
    "default to None and create the list/dict/set inside the function",
)
SILENT_EXCEPT = register_rule(
    "C006", Severity.ERROR,
    "bare or silent except handler",
    "catch specific exceptions and at least log or re-raise; bare "
    "'except:' also swallows KeyboardInterrupt",
)

#: modules whose execution must be deterministic: the simulator, the
#: engine around it, the optimizer core it shares cost code with, and
#: the observability layer whose merged counters must replay.
DETERMINISTIC_PACKAGES = ("engine", "core", "obs")

#: path suffixes exempt from the wall-clock rule inside those packages:
#: the recorder legitimately timestamps spans with ``perf_counter``, and
#: the sharded search times shard scans (``ShardOutcome.duration``) to
#: feed adaptive shard sizing -- telemetry that never touches results.
WALL_CLOCK_ALLOWLIST = ("obs/recorder.py", "core/shard.py")

#: identifier fragments that mark a float expression as cost-valued
_COST_NAME = re.compile(
    r"(^|_)(cost|costs|runtime|runtimes|mtbf|mttr|overhead|waste|wasted"
    r"|makespan|horizon|eta|gamma|baseline)(_|$)",
    re.IGNORECASE,
)

#: stdlib ``random`` module functions that draw from the global RNG
_GLOBAL_RANDOM_DRAWS = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "expovariate",
    "betavariate", "gammavariate", "paretovariate", "weibullvariate",
    "triangular", "vonmisesvariate", "lognormvariate", "getrandbits",
})

#: legacy ``np.random`` global-state draws (the pre-Generator API)
_NP_GLOBAL_DRAWS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "uniform", "normal", "exponential",
    "poisson", "binomial", "beta", "gamma", "weibull", "seed",
})

#: wall-clock calls: (module-ish prefix, attribute)
_WALL_CLOCK_CALLS = frozenset({
    ("time", "time"), ("time", "monotonic"), ("time", "perf_counter"),
    ("time", "process_time"), ("time", "time_ns"),
    ("time", "monotonic_ns"), ("time", "perf_counter_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
})


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_cost_expression(node: ast.AST) -> bool:
    """Heuristic: does this expression carry an engine cost value?"""
    if isinstance(node, ast.Name):
        return bool(_COST_NAME.search(node.id))
    if isinstance(node, ast.Attribute):
        return bool(_COST_NAME.search(node.attr))
    if isinstance(node, ast.Call):
        name = _dotted_name(node.func)
        return bool(name and _COST_NAME.search(name.split(".")[-1]))
    if isinstance(node, ast.BinOp):
        return (_is_cost_expression(node.left)
                or _is_cost_expression(node.right))
    return False


def _is_float_literal(node: ast.AST) -> bool:
    return (isinstance(node, ast.Constant)
            and isinstance(node.value, float))


class _Visitor(ast.NodeVisitor):
    def __init__(self, filename: str, deterministic: bool) -> None:
        self.filename = filename
        self.deterministic = deterministic
        self.sink = DiagnosticSink()
        #: bare local name -> dotted original, for wall-clock functions
        #: imported directly (``from time import monotonic [as tick]``)
        self._bare_wall_clock: dict = {}
        #: local alias -> real module (``import time as t``)
        self._module_aliases: dict = {}

    # -- imports (feed the wall-clock rule) ----------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname and "." not in alias.name:
                self._module_aliases[alias.asname] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = (node.module or "").split(".")[-1]
        for alias in node.names:
            if (module, alias.name) in _WALL_CLOCK_CALLS:
                local = alias.asname or alias.name
                self._bare_wall_clock[local] = f"{module}.{alias.name}"
        self.generic_visit(node)

    # -- helpers -------------------------------------------------------
    def _emit(self, rule, node: ast.AST, message: str) -> None:
        self.sink.emit(
            rule,
            Location(file=self.filename,
                     line=getattr(node, "lineno", None),
                     column=getattr(node, "col_offset", None)),
            message,
        )

    # -- C001 / C002 / C003: calls ------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted_name(node.func)
        if name:
            self._check_rng(node, name)
            self._check_wall_clock(node, name)
        self.generic_visit(node)

    def _check_rng(self, node: ast.Call, name: str) -> None:
        parts = name.split(".")
        has_seed = bool(node.args or node.keywords) and not (
            len(node.args) == 1
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value is None
        )
        if name == "random.Random" and not has_seed:
            self._emit(UNSEEDED_RANDOM, node,
                       "random.Random() constructed without a seed")
        elif (len(parts) == 2 and parts[0] == "random"
                and parts[1] in _GLOBAL_RANDOM_DRAWS):
            self._emit(
                UNSEEDED_RANDOM, node,
                f"{name}() draws from the process-global RNG",
            )
        elif parts[-1] == "default_rng" and not has_seed:
            self._emit(
                UNSEEDED_NP_RANDOM, node,
                f"{name}() called without an explicit seed",
            )
        elif (len(parts) >= 2 and parts[-2] == "random"
                and parts[0] in ("np", "numpy")
                and parts[-1] in _NP_GLOBAL_DRAWS):
            self._emit(
                UNSEEDED_NP_RANDOM, node,
                f"{name}() uses NumPy's legacy global RNG state",
            )

    def _check_wall_clock(self, node: ast.Call, name: str) -> None:
        if not self.deterministic:
            return
        parts = name.split(".")
        # bare name bound by `from time import monotonic [as tick]`
        if len(parts) == 1 and name in self._bare_wall_clock:
            self._emit(
                WALL_CLOCK, node,
                f"{name}() ({self._bare_wall_clock[name]}) reads the "
                "wall clock inside a deterministic module",
            )
            return
        # resolve `import time as t` aliases before matching
        if parts[0] in self._module_aliases:
            parts = [self._module_aliases[parts[0]]] + parts[1:]
        if len(parts) >= 2 and (parts[-2], parts[-1]) in _WALL_CLOCK_CALLS:
            self._emit(
                WALL_CLOCK, node,
                f"{name}() reads the wall clock inside a deterministic "
                "module",
            )

    # -- C004: float equality on costs --------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            pair = (left, right)
            if any(_is_float_literal(side) for side in pair) or (
                    any(_is_cost_expression(side) for side in pair)
                    and not any(isinstance(side, ast.Constant)
                                and side.value is None for side in pair)):
                self._emit(
                    FLOAT_COST_EQ, node,
                    "== / != on a float cost value; use math.isclose or "
                    "an ordered comparison",
                )
                break
        self.generic_visit(node)

    # -- C005: mutable defaults ---------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default, (ast.List, ast.Dict, ast.Set)
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set", "bytearray")
            )
            if mutable:
                self._emit(
                    MUTABLE_DEFAULT, default,
                    f"function {node.name!r} has a mutable default "
                    "argument",
                )

    # -- C006: silent except ------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._emit(SILENT_EXCEPT, node,
                       "bare 'except:' catches everything, including "
                       "KeyboardInterrupt")
        elif all(isinstance(stmt, ast.Pass) for stmt in node.body):
            self._emit(SILENT_EXCEPT, node,
                       "exception handler silently discards the error")
        self.generic_visit(node)


def module_is_deterministic(filename: str) -> bool:
    """Should the wall-clock rule apply to this file?

    True for modules under the simulator/optimizer/observability
    packages (:data:`DETERMINISTIC_PACKAGES`), except the explicit
    :data:`WALL_CLOCK_ALLOWLIST` (the recorder timestamps spans with
    ``perf_counter`` by design); profiling and calibration code in
    ``stats/`` legitimately reads real clocks.
    """
    normalized = filename.replace(os.sep, "/")
    if normalized.endswith(WALL_CLOCK_ALLOWLIST):
        return False
    return any(f"/{pkg}/" in normalized or normalized.startswith(f"{pkg}/")
               for pkg in DETERMINISTIC_PACKAGES)


def lint_source(
    source: str,
    filename: str = "<string>",
    deterministic: Optional[bool] = None,
) -> List[Diagnostic]:
    """Lint one Python source string.

    ``deterministic`` forces the wall-clock rule on/off; by default it is
    derived from ``filename`` via :func:`module_is_deterministic`.
    """
    if deterministic is None:
        deterministic = module_is_deterministic(filename)
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [
            SYNTAX_ERROR.at(
                Location(file=filename, line=exc.lineno),
                f"file does not parse: {exc.msg}",
            )
        ]
    visitor = _Visitor(filename, deterministic)
    visitor.visit(tree)
    return sorted(
        visitor.sink.diagnostics,
        key=lambda d: (d.location.line or 0, d.location.column or 0,
                       d.rule_id),
    )


def lint_file(path: str) -> List[Diagnostic]:
    """Lint one file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return lint_source(handle.read(), filename=path)


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs
                if not d.startswith(".") and d != "__pycache__"
            )
            found.extend(
                os.path.join(root, name) for name in sorted(files)
                if name.endswith(".py")
            )
    return sorted(found)


def lint_paths(paths: Sequence[str]) -> List[Diagnostic]:
    """Lint every Python file under ``paths`` (files or directories)."""
    diagnostics: List[Diagnostic] = []
    for filename in iter_python_files(paths):
        diagnostics.extend(lint_file(filename))
    return diagnostics
