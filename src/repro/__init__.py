"""repro -- Cost-based Fault-tolerance for Parallel Data Processing.

A full reproduction of Salama, Binnig, Kraska, Zamanian (SIGMOD 2015):
a cost-based optimizer that selects which intermediate results of a
DAG-structured parallel query plan to materialize so that the expected
query runtime *under mid-query failures* is minimized, together with the
substrates needed to evaluate it -- a discrete-event cluster simulator
with failure injection, a mini relational engine, a TPC-H workload
generator, join-order enumeration, and the paper's complete benchmark
suite.

Quickstart::

    from repro import ClusterStats, CostBased, linear_plan

    plan = linear_plan([(120, 10), (300, 4), (60, 1)])
    stats = ClusterStats(mtbf=3600, mttr=1, nodes=10)
    configured = CostBased().configure(plan, stats)
    print(configured.plan.pretty())
"""

from .core import (  # noqa: F401
    AllMat,
    ClusterStats,
    CollapsedPlan,
    ConfiguredPlan,
    CostBased,
    FaultToleranceScheme,
    NoMatLineage,
    NoMatRestart,
    Operator,
    Plan,
    PlanError,
    PruningConfig,
    RecoveryMode,
    SearchResult,
    collapse_plan,
    estimate_plan_cost,
    find_best_ft_plan,
    linear_plan,
    scheme_by_name,
    standard_schemes,
)

__version__ = "1.0.0"

__all__ = [
    "AllMat",
    "ClusterStats",
    "CollapsedPlan",
    "ConfiguredPlan",
    "CostBased",
    "FaultToleranceScheme",
    "NoMatLineage",
    "NoMatRestart",
    "Operator",
    "Plan",
    "PlanError",
    "PruningConfig",
    "RecoveryMode",
    "SearchResult",
    "collapse_plan",
    "estimate_plan_cost",
    "find_best_ft_plan",
    "linear_plan",
    "scheme_by_name",
    "standard_schemes",
    "__version__",
]
