"""``python -m repro`` entry point."""

import os
import sys

from .cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # stdout vanished mid-print (e.g. `... | head`); exit with the
        # conventional SIGPIPE status instead of a traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        sys.exit(141)
