"""The in-process advisory engine: cached, single-flight plan search.

:class:`AdvisoryEngine` answers ``advise(plan, stats, scheme)`` -- "which
intermediates should this job materialize on this cluster?" -- cheaply
enough to sit behind a request-serving frontend.  Three layers take the
per-request cost from "one full configuration search" toward "one dict
lookup":

1. **Canonicalize + cache.**  The request's measured stats snap to their
   log-bucket representative (:mod:`repro.serve.bucketing`), then an LRU
   (:mod:`repro.serve.cache`) is probed with the full advisory identity:
   ``(plan fingerprint, canonical stats, scheme, search knobs)``.  The
   search runs *on the canonical stats*, so cached and fresh advice are
   the same object -- bit-identical to a direct
   :func:`~repro.core.enumeration.find_best_ft_plan` call on those
   stats.  Knobs that cannot change results (``parallelism``, shard
   count) are deliberately *excluded* from the key: the engines are
   pinned bit-identical across them, so including them would only split
   the cache.

2. **Single-flight dedup.**  Concurrent requests for the same key
   coalesce onto one in-flight search: the first becomes the leader and
   computes, the rest wait on an event and share the leader's result
   (or its exception).  N identical concurrent requests cost exactly one
   search (``serve.coalesced`` counts the followers).

3. **Fan-out + adaptive sharding.**  Distinct keys compute
   independently -- the frontend's worker threads each drive their own
   search, and a search itself can fan out over the resilient
   process-pool sharded scan (``parallelism``).  A shared
   :class:`~repro.core.shard.ShardSizer` observes every sharded scan's
   shard durations and recommends the shard count for the next search
   of similar size (``search.shard_resize`` counts applied resizes);
   sizing only repartitions work, never changes results.

The bounded-queue/backpressure frontend (:meth:`AdvisoryEngine.start` /
:meth:`submit`) is part of the engine so the HTTP layer stays a thin
codec: workers are plain ``threading.Thread`` s draining a
``queue.Queue`` (each blocks in its own search's process pool, so
threads are the right concurrency primitive here), and a full queue
sheds immediately with :class:`ServiceOverloaded` -- the HTTP layer maps
that to 429.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from .. import obs
from ..core.cost_model import ClusterStats
from ..core.enumeration import find_best_ft_plan, plan_fingerprint
from ..core.plan import Plan
from ..core.pruning import PruningConfig
from ..core.shard import ShardSizer, config_space
from ..core.strategies import RecoveryMode, scheme_by_name
from .bucketing import StatsBucketing
from .cache import AdviceCache

#: scheme names advise() accepts (the paper's line-up)
SCHEME_NAMES = (
    "all-mat", "no-mat (lineage)", "no-mat (restart)", "cost-based",
)


class ServiceOverloaded(RuntimeError):
    """The bounded request queue is full; retry later (HTTP 429)."""


@dataclass(frozen=True)
class Advice:
    """The answer to one advisory request.

    Frozen and value-comparable: the differential tests assert
    ``advice == direct`` where ``direct`` is built from a fresh
    :func:`~repro.core.enumeration.find_best_ft_plan` call, so every
    field participates in the bit-identity guarantee.  ``cost`` /
    ``failure_free_cost`` are ``None`` for the fixed (non-searching)
    schemes, which pick a configuration without scoring it.
    """

    scheme: str
    recovery: str
    mat_config: Tuple[Tuple[int, bool], ...]
    materialized_ids: Tuple[int, ...]
    cost: Optional[float]
    failure_free_cost: Optional[float]
    canonical_mtbf: float
    canonical_mttr: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload for the HTTP layer."""
        return {
            "scheme": self.scheme,
            "recovery": self.recovery,
            "mat_config": [[op_id, flag] for op_id, flag in
                           self.mat_config],
            "materialized_ids": list(self.materialized_ids),
            "cost": self.cost,
            "failure_free_cost": self.failure_free_cost,
            "canonical_mtbf": self.canonical_mtbf,
            "canonical_mttr": self.canonical_mttr,
        }


class _Inflight:
    """One in-progress computation concurrent requests coalesce onto."""

    __slots__ = ("event", "advice", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.advice: Optional[Advice] = None
        self.error: Optional[BaseException] = None


class _Pending:
    """Handle for a request submitted to the worker queue."""

    __slots__ = ("_event", "_advice", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._advice: Optional[Advice] = None
        self._error: Optional[BaseException] = None

    def _finish(self, advice: Optional[Advice],
                error: Optional[BaseException]) -> None:
        self._advice = advice
        self._error = error
        self._event.set()

    def result(self, timeout: Optional[float] = None) -> Advice:
        if not self._event.wait(timeout):
            raise TimeoutError("advisory request still pending")
        if self._error is not None:
            raise self._error
        assert self._advice is not None
        return self._advice


class AdvisoryEngine:
    """Long-lived advisory state: cache, single-flight table, sizer.

    Parameters
    ----------
    cache_size:
        LRU capacity; ``0`` disables caching entirely (every request
        searches -- the cache-off differential mode).
    bucketing:
        Stats canonicalization; ``None`` keys the cache on the exact
        stats (bit-equal stats still hit).
    pruning / exact_waste / search_engine / parallelism / shards /
    config_limit:
        Passed through to :func:`find_best_ft_plan` for the cost-based
        scheme.  Only the result-relevant knobs join the cache key.
    adaptive_shards:
        Let the :class:`~repro.core.shard.ShardSizer` learn shard counts
        from observed scan rates (sharded searches only).
    """

    def __init__(
        self,
        cache_size: int = 1024,
        bucketing: Optional[StatsBucketing] = StatsBucketing(),
        pruning: PruningConfig = PruningConfig.all(),
        exact_waste: bool = False,
        search_engine: str = "fast",
        parallelism: int = 1,
        shards: Optional[int] = None,
        config_limit: Optional[int] = None,
        adaptive_shards: bool = True,
    ) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self.cache: Optional[AdviceCache] = (
            AdviceCache(cache_size) if cache_size else None
        )
        self.bucketing = bucketing
        self.pruning = pruning
        self.exact_waste = exact_waste
        self.search_engine = search_engine
        self.parallelism = parallelism
        self.shards = shards
        self.config_limit = config_limit
        self.adaptive_shards = adaptive_shards
        self.sizer = ShardSizer()
        self._lock = threading.Lock()
        self._inflight: Dict[Hashable, _Inflight] = {}
        #: last pushed canonical stats (see push_cluster_stats)
        self._current_canonical: Optional[ClusterStats] = None
        self._stats_pushes = 0
        # frontend state (started lazily by start())
        self._queue: Optional["queue.Queue"] = None
        self._workers: List[threading.Thread] = []
        self._stopping = False

    # ------------------------------------------------------------------
    # the advisory core
    # ------------------------------------------------------------------
    def canonical_stats(self, stats: ClusterStats) -> ClusterStats:
        """The stats the request is actually answered for."""
        if self.bucketing is None:
            return stats
        return self.bucketing.canonicalize(stats)

    def advice_key(self, plan: Plan, canonical: ClusterStats,
                   scheme: str) -> Hashable:
        """The full advisory identity (cache + single-flight key).

        Includes every knob that can change the *answer*; excludes
        ``parallelism``/``shards``, which are pinned result-neutral.
        """
        return (
            plan_fingerprint(plan),
            canonical,
            scheme,
            self.pruning.rule1, self.pruning.rule2, self.pruning.rule3,
            self.exact_waste,
            self.search_engine,
            self.config_limit,
        )

    def advise(self, plan: Plan, stats: ClusterStats,
               scheme: str = "cost-based") -> Advice:
        """Answer one request (synchronously; thread-safe).

        Cache hit -> the stored advice.  Same key already in flight ->
        wait for the leader's result.  Otherwise compute, publish to the
        cache and the followers atomically, and return.
        """
        if scheme not in SCHEME_NAMES:
            raise ValueError(f"unknown fault-tolerance scheme {scheme!r} "
                             f"(expected one of {SCHEME_NAMES})")
        obs.add("serve.requests")
        canonical = self.canonical_stats(stats)
        key = self.advice_key(plan, canonical, scheme)
        with self._lock:
            if self.cache is not None:
                cached = self.cache.get(key)
                if cached is not None:
                    return cached
            entry = self._inflight.get(key)
            leader = entry is None
            if leader:
                entry = self._inflight[key] = _Inflight()
        if not leader:
            obs.add("serve.coalesced")
            assert entry is not None
            entry.event.wait()
            if entry.error is not None:
                raise entry.error
            assert entry.advice is not None
            return entry.advice
        assert entry is not None
        try:
            advice = self._compute(plan, canonical, scheme)
        except BaseException as error:
            # errors propagate to every coalesced waiter but are never
            # cached -- the next request retries the computation
            entry.error = error
            with self._lock:
                del self._inflight[key]
            entry.event.set()
            raise
        entry.advice = advice
        with self._lock:
            # publish-then-unregister under one lock: a request arriving
            # here either sees the cache entry or the in-flight entry,
            # never neither (no duplicate search can start)
            if self.cache is not None:
                self.cache.put(key, advice)
            del self._inflight[key]
        entry.event.set()
        return advice

    def push_cluster_stats(self, stats: ClusterStats) -> Dict[str, Any]:
        """Hot cluster-stats push: the cluster's effective statistics
        changed; invalidate exactly the superseded cached advice.

        Called by an observer that learns the cluster has drifted --
        canonically the adaptive re-planner's ``on_replan`` hook
        (:class:`repro.engine.adaptive.AdaptiveExecutor`), which passes
        the refreshed stats every executed re-plan searched under.  The
        push canonicalizes the stats; when the canonical bucket differs
        from the previously pushed one, every cache entry computed for
        the *superseded* bucket is evicted (advice keys carry the
        canonical stats at a fixed position), and nothing else -- advice
        for other buckets stays warm, and requests already quoting the
        new bucket are untouched.  A push that lands in the same bucket
        is a no-op beyond the bookkeeping: bucketing absorbs estimation
        noise exactly as it does on the request path.

        Runs under the engine lock, serialized with :meth:`advise`'s
        publish step, so a concurrent request can never re-publish stale
        advice after its bucket was invalidated.
        """
        obs.add("serve.stats_push")
        canonical = self.canonical_stats(stats)
        evicted = 0
        with self._lock:
            previous = self._current_canonical
            self._current_canonical = canonical
            self._stats_pushes += 1
            changed = previous is not None and previous != canonical
            if changed and self.cache is not None:
                evicted = self.cache.invalidate(
                    lambda key: isinstance(key, tuple) and len(key) > 1
                    and key[1] == previous
                )
        return {
            "canonical": canonical,
            "changed": changed,
            "evicted": evicted,
        }

    def _compute(self, plan: Plan, canonical: ClusterStats,
                 scheme: str) -> Advice:
        """Run the actual configuration search / scheme configuration."""
        obs.add("serve.searches")
        if scheme == "cost-based":
            shards = self._pick_shards(plan)
            sharded = self.parallelism > 1 or (
                shards is not None and shards > 1
            )
            result = find_best_ft_plan(
                [plan], canonical,
                pruning=self.pruning,
                exact_waste=self.exact_waste,
                engine=self.search_engine,
                parallelism=self.parallelism,
                shards=shards,
                config_limit=self.config_limit,
                shard_observer=(
                    self.sizer.observe
                    if sharded and self.adaptive_shards else None
                ),
            )
            return Advice(
                scheme=scheme,
                recovery=RecoveryMode.FINE_GRAINED.value,
                mat_config=result.mat_config,
                materialized_ids=result.materialized_ids,
                cost=result.cost,
                failure_free_cost=result.estimate.failure_free_cost,
                canonical_mtbf=canonical.mtbf,
                canonical_mttr=canonical.mttr,
            )
        configured = scheme_by_name(scheme).configure(plan, canonical)
        mat_config = tuple(
            (op_id, configured.plan[op_id].materialize)
            for op_id in configured.plan.free_operators
        )
        return Advice(
            scheme=scheme,
            recovery=configured.recovery.value,
            mat_config=mat_config,
            materialized_ids=tuple(
                op_id for op_id, flag in mat_config if flag
            ),
            cost=None,
            failure_free_cost=None,
            canonical_mtbf=canonical.mtbf,
            canonical_mttr=canonical.mttr,
        )

    def _pick_shards(self, plan: Plan) -> Optional[int]:
        """The shard count for this search: configured, or sizer-learned.

        Adaptive sizing only engages when the search routes to the
        sharded subsystem anyway; it never *introduces* sharding.  A
        recommendation differing from what the static default would use
        counts as a ``search.shard_resize``.
        """
        shards = self.shards
        sharded = self.parallelism > 1 or (
            shards is not None and shards > 1
        )
        if not sharded or not self.adaptive_shards:
            return shards
        recommended = self.sizer.recommend(
            config_space(plan, self.config_limit), self.parallelism
        )
        if recommended is None:
            return shards
        from ..core.shard import SHARDS_PER_WORKER
        static = (shards if shards is not None
                  else SHARDS_PER_WORKER * self.parallelism)
        if recommended != static:
            obs.add("search.shard_resize")
        return recommended

    # ------------------------------------------------------------------
    # the bounded-queue frontend
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        """Whether the bounded-queue frontend is running (clients that
        can fall back to :meth:`advise` check this, not ``_queue``)."""
        with self._lock:
            return self._queue is not None

    def start(self, workers: int = 4, max_queue: int = 64) -> None:
        """Spawn the worker threads that drain the request queue."""
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        with self._lock:
            if self._queue is not None:
                raise RuntimeError("engine already started")
            self._queue = queue.Queue(maxsize=max_queue)
            self._stopping = False
        for index in range(workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"advisory-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._workers.append(thread)

    def stop(self) -> None:
        """Drain and join the workers (idempotent)."""
        with self._lock:
            request_queue = self._queue
            if request_queue is None:
                return
            self._stopping = True
        for _ in self._workers:
            request_queue.put(None)  # one wake-up pill per worker
        for thread in self._workers:
            thread.join()
        with self._lock:
            self._queue = None
            self._workers = []

    def submit(self, plan: Plan, stats: ClusterStats,
               scheme: str = "cost-based") -> _Pending:
        """Enqueue a request; raises :class:`ServiceOverloaded` when the
        bounded queue is full (the backpressure signal)."""
        with self._lock:
            request_queue = self._queue
        if request_queue is None:
            raise RuntimeError("engine not started (call start())")
        pending = _Pending()
        try:
            request_queue.put_nowait((plan, stats, scheme, pending))
        except queue.Full:
            obs.add("serve.shed")
            raise ServiceOverloaded(
                "advisory queue full; retry later"
            ) from None
        return pending

    def _worker_loop(self) -> None:
        while True:
            assert self._queue is not None
            item = self._queue.get()
            if item is None:
                return
            plan, stats, scheme, pending = item
            try:
                pending._finish(self.advise(plan, stats, scheme), None)
            except BaseException as error:  # delivered to the waiter
                pending._finish(None, error)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, Any]:
        """Cache and sizer state for ``/metrics`` and the harness."""
        current = self._current_canonical
        payload: Dict[str, Any] = {
            "cache": (self.cache.stats() if self.cache is not None
                      else None),
            "inflight": len(self._inflight),
            "stats_pushes": self._stats_pushes,
            "cluster_stats": (
                {"mtbf": current.mtbf, "mttr": current.mttr}
                if current is not None else None
            ),
            "shard_rates": {
                str(bucket): rate
                for bucket, rate in
                sorted(self.sizer.snapshot_rates().items())
            },
        }
        recorder = obs.get_recorder()
        if recorder is not None:
            payload["counters"] = dict(
                sorted(recorder.snapshot().counters)
            )
        return payload


def direct_advice(plan: Plan, stats: ClusterStats,
                  engine: AdvisoryEngine,
                  scheme: str = "cost-based") -> Advice:
    """The reference answer the engine must reproduce bit-identically.

    Runs the scheme directly on ``engine.canonical_stats(stats)`` with
    the engine's knobs but *no* cache, no single-flight, no adaptive
    sizing and no parallelism -- the plain serial search.  The
    differential grid asserts ``engine.advise(...) == direct_advice(...)``
    for every sampled request.
    """
    reference = AdvisoryEngine(
        cache_size=0,
        bucketing=engine.bucketing,
        pruning=engine.pruning,
        exact_waste=engine.exact_waste,
        search_engine=engine.search_engine,
        parallelism=1,
        shards=None,
        config_limit=engine.config_limit,
        adaptive_shards=False,
    )
    return reference.advise(plan, stats, scheme)


__all__: Sequence[str] = (
    "Advice",
    "AdvisoryEngine",
    "SCHEME_NAMES",
    "ServiceOverloaded",
    "direct_advice",
)
