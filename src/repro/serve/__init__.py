"""``repro.serve`` -- the long-running advisory service.

The optimizer core answers "which intermediates should this job
materialize?" once per call; this package amortizes that answer across
requests so it can be served fleet-wide: log-bucketed stats
canonicalization (:mod:`~repro.serve.bucketing`), an LRU advice cache
(:mod:`~repro.serve.cache`), single-flight request coalescing with a
bounded backpressure queue (:mod:`~repro.serve.engine`), and a
stdlib-only HTTP/JSON frontend (:mod:`~repro.serve.app`; started with
``python -m repro serve``).  Advice from any path is bit-identical to a
direct :func:`~repro.core.enumeration.find_best_ft_plan` call on the
canonicalized stats.  See ``docs/serve.md``.
"""

from .bucketing import (
    StatsBucketing,
    log_bucket_index,
    log_bucket_representative,
)
from .cache import AdviceCache
from .engine import (
    SCHEME_NAMES,
    Advice,
    AdvisoryEngine,
    ServiceOverloaded,
    direct_advice,
)

__all__ = [
    "Advice",
    "AdviceCache",
    "AdvisoryEngine",
    "SCHEME_NAMES",
    "ServiceOverloaded",
    "StatsBucketing",
    "direct_advice",
    "log_bucket_index",
    "log_bucket_representative",
]
