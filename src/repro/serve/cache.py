"""The LRU advice cache behind :class:`repro.serve.AdvisoryEngine`.

A deliberately small, auditable LRU: an :class:`~collections.OrderedDict`
under one lock, move-to-end on hit, evict-oldest on overflow.  Keys are
the full advisory identity -- ``(plan fingerprint, canonical stats,
scheme, engine knobs)`` -- built by the engine; the cache never
interprets them.  Values are finished :class:`~repro.serve.engine.Advice`
objects, which are frozen, so sharing one instance across concurrent
readers is safe.

Hit/miss/eviction tallies feed the ``serve.cache.{hits,misses,
evictions}`` counters through :mod:`repro.obs` (no-ops unless a recorder
is installed) and are also kept as plain attributes so the service's
``/metrics`` endpoint and the load harness can read a hit-rate without
enabling observability.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional

from .. import obs


class AdviceCache:
    """Thread-safe LRU mapping advisory keys to advice objects."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1 "
                             "(disable caching at the engine instead)")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached advice, freshened to most-recently-used; ``None``
        on miss.  (Advice values are never ``None`` -- the engine only
        stores completed results.)"""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
            else:
                self._entries.move_to_end(key)
                self.hits += 1
        if value is None:
            obs.add("serve.cache.misses")
        else:
            obs.add("serve.cache.hits")
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) an entry, evicting the LRU on overflow."""
        evicted = 0
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
        if evicted:
            obs.add("serve.cache.evictions", evicted)

    def invalidate(self, match: Callable[[Hashable], bool]) -> int:
        """Evict every entry whose key satisfies ``match``.

        The scope-targeted eviction behind the engine's hot
        cluster-stats push: a stats-bucket change drops only the advice
        computed for the superseded bucket, leaving everything else
        warm.  Invalidations are counted separately from capacity
        evictions (and are neither hits nor misses, so the
        ``hits + misses == requests`` accounting the load harness checks
        is untouched).  Returns the number of evicted entries.
        """
        with self._lock:
            stale = [key for key in self._entries if match(key)]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)
        if stale:
            obs.add("serve.cache.invalidations", len(stale))
        return len(stale)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list:
        """Current keys, least- to most-recently used (for tests)."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for ``/metrics`` and the load harness."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
