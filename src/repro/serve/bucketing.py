"""Log-spaced cluster-statistics bucketing for the advice cache.

Advisory requests arrive with *measured* cluster statistics -- an MTBF
estimated from the last observation window, an MTTR averaged over recent
repairs -- so two requests for the same plan almost never carry
bit-equal :class:`~repro.core.cost_model.ClusterStats`.  Caching on the
raw stats would miss nearly always.  Caching on a rounded value would be
wrong: the advice must stay *exactly* reproducible by a direct search.

The resolution is canonicalize-then-search: a request's stats are
snapped to the representative of their log-spaced bucket *before* the
search runs, so the advice returned (cached or freshly computed) is
bit-identical to ``find_best_ft_plan(plan, canonical_stats, ...)`` by
construction -- the cache never changes what is computed, only whether
the computation is repeated.  Near-identical clusters (an MTBF of 86400s
vs 86700s) share a bucket and therefore a cache entry.

Bucket geometry: ``resolution`` buckets per decade, uniform in
``log10``.  MTBF is bucketed directly; MTTR is bucketed via the
*ratio* ``mttr / mtbf`` (the cost model's failure math is driven by the
relative repair cost, and bucketing the ratio keeps the two snapped
values consistent with each other).  ``mttr == 0`` is its own bucket --
the paper's no-repair-delay configuration must round-trip exactly.  The
remaining fields (``nodes``, ``const_cost``, ``const_pipe``,
``success_percentile``, ``scale_mtbf_by_nodes``) are discrete knobs
with a handful of values in practice; they pass through untouched.

Boundary determinism: a bucket index is ``floor(log10(x) * resolution)``
-- a pure function of the input float, so the same value always lands in
the same bucket and values on opposite sides of a boundary land in
adjacent buckets.  No randomization, no state.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

from ..core.cost_model import ClusterStats


def log_bucket_index(value: float, resolution: int) -> int:
    """The log-spaced bucket a positive value falls in.

    Bucket ``i`` covers ``[10^(i/resolution), 10^((i+1)/resolution))``.
    """
    if value <= 0:
        raise ValueError("log bucketing needs a positive value")
    if resolution < 1:
        raise ValueError("resolution must be >= 1")
    return math.floor(math.log10(value) * resolution)


def log_bucket_representative(index: int, resolution: int) -> float:
    """The canonical value of bucket ``index`` (its geometric midpoint)."""
    if resolution < 1:
        raise ValueError("resolution must be >= 1")
    return 10.0 ** ((index + 0.5) / resolution)


@dataclass(frozen=True)
class StatsBucketing:
    """Knobs for snapping :class:`ClusterStats` to cache-key canonicals.

    ``mtbf_resolution`` / ``ratio_resolution`` are buckets per decade for
    the MTBF and the MTTR/MTBF ratio.  The defaults (8 per decade, about
    a 1.33x width per bucket) keep the snapped MTBF within +/-15 % of the
    measured one -- well inside the estimation error of any real MTBF
    observation window -- while collapsing continuously-drifting
    measurements onto a small set of canonical cluster profiles.
    """

    mtbf_resolution: int = 8
    ratio_resolution: int = 8

    def __post_init__(self) -> None:
        if self.mtbf_resolution < 1:
            raise ValueError("mtbf_resolution must be >= 1")
        if self.ratio_resolution < 1:
            raise ValueError("ratio_resolution must be >= 1")

    def canonical_mtbf(self, mtbf: float) -> float:
        return log_bucket_representative(
            log_bucket_index(mtbf, self.mtbf_resolution),
            self.mtbf_resolution,
        )

    def canonical_mttr(self, mttr: float, canonical_mtbf: float,
                       mtbf: float) -> float:
        if mttr <= 0.0:  # exact-zero repair delay is its own bucket
            return 0.0
        ratio = log_bucket_representative(
            log_bucket_index(mttr / mtbf, self.ratio_resolution),
            self.ratio_resolution,
        )
        return ratio * canonical_mtbf

    def canonicalize(self, stats: ClusterStats) -> ClusterStats:
        """The bucket-representative stats a request is answered for.

        Idempotent in the bucket: every stats object inside a bucket
        maps to the same canonical object, and canonicalizing a
        canonical object lands back in its own bucket's representative
        family -- so cache keys built on the result are stable.
        """
        mtbf = self.canonical_mtbf(stats.mtbf)
        mttr = self.canonical_mttr(stats.mttr, mtbf, stats.mtbf)
        return dataclasses.replace(stats, mtbf=mtbf, mttr=mttr)
