"""The HTTP/JSON frontend of the advisory service (stdlib only).

A thin codec around :class:`~repro.serve.engine.AdvisoryEngine`: parse
the wire formats (``repro-plan/1`` / ``repro-cluster-stats/1`` from
:mod:`repro.core.serialize`), submit to the engine's bounded queue, and
map outcomes to status codes.  All policy -- caching, coalescing,
backpressure, sharding -- lives in the engine, so the in-process API and
the HTTP API cannot drift apart.

Endpoints::

    POST /advise        {"plan": <repro-plan/1>,
                         "stats": <repro-cluster-stats/1>,
                         "scheme": "cost-based"}          -> {"advice": ...}
    POST /advise/batch  {"requests": [<advise body>, ...]}
                        -> {"results": [{"advice": ...} | {"error": ...}]}
    GET  /healthz       -> {"status": "ok"}
    GET  /metrics       -> cache/sizer/counter snapshot

Status codes: 200 success, 400 malformed payload, 404 unknown path,
429 queue full (shed -- retry later), 500 a search raised.

Concurrency model: :class:`ThreadingHTTPServer` gives each connection a
thread, which then *blocks* on the engine's bounded queue handle --
connection concurrency can exceed search concurrency, and when the gap
exceeds the queue bound the service sheds instead of building unbounded
latency.  A batch request coalesces internally like any other traffic:
its entries are submitted together and identical entries dedupe onto
one search.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from ..core.serialize import plan_from_dict, stats_from_dict
from .engine import AdvisoryEngine, ServiceOverloaded

#: request body size cap -- a plan of thousands of operators fits well
#: under this; anything larger is a client error, not a workload
MAX_BODY_BYTES = 8 * 1024 * 1024


class BadRequest(ValueError):
    """Client payload error (HTTP 400)."""


def parse_advise_body(payload: Any) -> Tuple[Any, Any, str]:
    """Decode one advise entry: ``(plan, stats, scheme)``.

    Raises :class:`BadRequest` with a message safe to echo to clients.
    """
    if not isinstance(payload, dict):
        raise BadRequest("request body must be a JSON object")
    try:
        plan = plan_from_dict(payload["plan"])
    except KeyError:
        raise BadRequest("missing 'plan'") from None
    except (TypeError, ValueError) as error:
        raise BadRequest(f"bad plan: {error}") from None
    try:
        stats = stats_from_dict(payload["stats"])
    except KeyError:
        raise BadRequest("missing 'stats'") from None
    except (TypeError, ValueError) as error:
        raise BadRequest(f"bad stats: {error}") from None
    scheme = payload.get("scheme", "cost-based")
    if not isinstance(scheme, str):
        raise BadRequest("'scheme' must be a string")
    return plan, stats, scheme


class AdvisoryRequestHandler(BaseHTTPRequestHandler):
    """One HTTP connection; ``server.engine`` is the shared engine."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    @property
    def engine(self) -> AdvisoryEngine:
        return self.server.engine  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        """Quiet by default; the load harness hammers thousands of
        requests and per-line stderr logging would dominate."""

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise BadRequest("empty request body")
        if length > MAX_BODY_BYTES:
            raise BadRequest("request body too large")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except ValueError:
            raise BadRequest("request body is not valid JSON") from None

    # -- endpoints -----------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        if self.path == "/healthz":
            self._send_json(200, {"status": "ok"})
        elif self.path == "/metrics":
            self._send_json(200, self.engine.metrics())
        else:
            self._send_json(404, {"error": f"unknown path {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        if self.path not in ("/advise", "/advise/batch"):
            self._send_json(404, {"error": f"unknown path {self.path}"})
            return
        try:
            payload = self._read_body()
            if self.path == "/advise":
                self._advise_one(payload)
            else:
                self._advise_batch(payload)
        except BadRequest as error:
            self._send_json(400, {"error": str(error)})
        except ServiceOverloaded as error:
            self._send_json(429, {"error": str(error)})
        except Exception as error:  # a search raised: server error
            self._send_json(500, {"error": f"{type(error).__name__}: "
                                           f"{error}"})

    def _advise_one(self, payload: Any) -> None:
        plan, stats, scheme = parse_advise_body(payload)
        pending = self.engine.submit(plan, stats, scheme)
        advice = pending.result()
        self._send_json(200, {"advice": advice.to_dict()})

    def _advise_batch(self, payload: Any) -> None:
        if not isinstance(payload, dict) or not isinstance(
            payload.get("requests"), list
        ):
            raise BadRequest("batch body must be "
                             "{'requests': [<advise body>, ...]}")
        entries = payload["requests"]
        # submit everything first so identical entries coalesce and
        # distinct entries overlap, then collect in order
        pendings: List[Tuple[Optional[Any], Optional[str]]] = []
        for entry in entries:
            try:
                plan, stats, scheme = parse_advise_body(entry)
                pendings.append(
                    (self.engine.submit(plan, stats, scheme), None)
                )
            except BadRequest as error:
                pendings.append((None, str(error)))
            except ServiceOverloaded as error:
                pendings.append((None, f"shed: {error}"))
        results: List[Dict[str, Any]] = []
        for pending, error_text in pendings:
            if pending is None:
                results.append({"error": error_text})
                continue
            try:
                results.append({"advice": pending.result().to_dict()})
            except Exception as error:
                results.append({"error": f"{type(error).__name__}: "
                                         f"{error}"})
        self._send_json(200, {"results": results})


class AdvisoryServer(ThreadingHTTPServer):
    """ThreadingHTTPServer with a listen backlog sized for bursts.

    socketserver's default backlog of 5 drops SYNs when hundreds of
    clients connect in the same instant (each retransmits ~1 s later,
    poisoning every latency percentile); the service's concurrency
    bound is the engine queue, so accept generously here.
    """

    daemon_threads = True
    request_queue_size = 512


def create_server(
    engine: AdvisoryEngine,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ThreadingHTTPServer:
    """A bound (not yet serving) HTTP server wired to ``engine``.

    ``port=0`` binds an ephemeral port (tests and the load harness read
    ``server.server_address``).  The caller owns the engine lifecycle:
    ``engine.start(...)`` before serving, ``engine.stop()`` after
    ``server.shutdown()``.
    """
    server = AdvisoryServer((host, port), AdvisoryRequestHandler)
    server.engine = engine  # type: ignore[attr-defined]
    return server


def run_server(
    host: str = "127.0.0.1",
    port: int = 8758,
    workers: int = 4,
    cache_size: int = 1024,
    max_queue: int = 64,
    engine: Optional[AdvisoryEngine] = None,
) -> None:
    """Blocking entry point behind ``python -m repro serve``."""
    if engine is None:
        engine = AdvisoryEngine(cache_size=cache_size)
    engine.start(workers=workers, max_queue=max_queue)
    server = create_server(engine, host=host, port=port)
    bound_host, bound_port = server.server_address[:2]
    print(f"advisory service on http://{bound_host}:{bound_port} "
          f"({workers} workers, cache {cache_size}, "
          f"queue {max_queue}) -- Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.shutdown()
        server.server_close()
        engine.stop()
