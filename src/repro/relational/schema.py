"""Relational schemas for the mini in-memory engine.

The engine is deliberately small -- just enough to really execute the
paper's TPC-H workload at laptop scale factors so that cardinalities and
cost estimates are grounded in actual query results rather than guessed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


class ColumnType(enum.Enum):
    INT = "int"
    FLOAT = "float"
    STRING = "string"
    DATE = "date"      #: stored as ordinal ints; formatting is cosmetic

    def python_type(self) -> type:
        if self in (ColumnType.INT, ColumnType.DATE):
            return int
        if self is ColumnType.FLOAT:
            return float
        return str


@dataclass(frozen=True)
class Column:
    """A named, typed column of a table schema."""

    name: str
    col_type: ColumnType

    def __str__(self) -> str:
        return f"{self.name}:{self.col_type.value}"


@dataclass(frozen=True)
class TableSchema:
    """Ordered column list with name lookup."""

    name: str
    columns: Tuple[Column, ...]

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate column names in {self.name}")

    @classmethod
    def build(
        cls, name: str, columns: Sequence[Tuple[str, ColumnType]]
    ) -> "TableSchema":
        return cls(
            name=name,
            columns=tuple(Column(col_name, col_type)
                          for col_name, col_type in columns),
        )

    @property
    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    def index_of(self, column_name: str) -> int:
        for index, column in enumerate(self.columns):
            if column.name == column_name:
                return index
        raise KeyError(
            f"no column {column_name!r} in table {self.name!r} "
            f"(have {self.column_names})"
        )

    def column(self, column_name: str) -> Column:
        return self.columns[self.index_of(column_name)]

    def __contains__(self, column_name: str) -> bool:
        return any(column.name == column_name for column in self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def project(self, column_names: Sequence[str],
                name: Optional[str] = None) -> "TableSchema":
        """Schema restricted (and reordered) to ``column_names``."""
        return TableSchema(
            name=name or self.name,
            columns=tuple(self.column(column_name)
                          for column_name in column_names),
        )

    def rename(self, name: str) -> "TableSchema":
        return TableSchema(name=name, columns=self.columns)

    def concat(self, other: "TableSchema",
               name: Optional[str] = None) -> "TableSchema":
        """Join-output schema; duplicate names get the table prefix."""
        taken = set(self.column_names)
        merged: List[Column] = list(self.columns)
        for column in other.columns:
            column_name = column.name
            if column_name in taken:
                column_name = f"{other.name}.{column.name}"
                if column_name in taken:
                    raise ValueError(f"cannot disambiguate {column.name}")
            taken.add(column_name)
            merged.append(Column(column_name, column.col_type))
        return TableSchema(name=name or f"{self.name}_{other.name}",
                           columns=tuple(merged))
