"""Local execution and profiling of physical operator trees.

``execute`` runs a tree and returns its result table.  ``profile`` runs it
and additionally returns per-operator measurements (output rows/bytes),
which the statistics layer turns into the ``tr(o)`` / ``tm(o)`` estimates
the cost model consumes -- the reproduction's equivalent of the paper's
"perfect statistics" obtained by measuring each operator offline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .operators import CteBuffer, PhysicalOperator
from .table import Table


@dataclass(frozen=True)
class OperatorProfile:
    """Measured output of one operator from a profiling run."""

    description: str
    output_rows: int
    output_bytes: int
    executions: int


def execute(root: PhysicalOperator) -> Table:
    """Run the tree and return the result (CTE buffers reset first)."""
    _reset(root)
    return root.execute()


def profile(
    root: PhysicalOperator,
) -> Tuple[Table, Dict[int, OperatorProfile]]:
    """Run the tree and collect per-operator output measurements.

    Returns the result table and a map keyed by ``id(operator)`` --
    operator instances shared across the tree (CTE buffers) appear once.
    """
    result = execute(root)
    profiles: Dict[int, OperatorProfile] = {}
    for operator in root.walk():
        if id(operator) in profiles:
            continue
        profiles[id(operator)] = OperatorProfile(
            description=operator.describe(),
            output_rows=operator.output_rows or 0,
            output_bytes=operator.output_bytes or 0,
            executions=operator.executions,
        )
    return result, profiles


def _reset(root: PhysicalOperator) -> None:
    for operator in root.walk():
        if isinstance(operator, CteBuffer):
            operator.invalidate()
