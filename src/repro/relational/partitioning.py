"""Horizontal partitioning schemes (the paper's Section 5.1 layout).

The paper's TPC-H database is laid out as:

* NATION and REGION replicated to all nodes,
* LINEITEM and ORDERS co-partitioned by hash on ``orderkey``,
* all remaining tables *RREF-partitioned* (reference partitioning with
  partial replication, from the XDB paper): each tuple of the referenced
  table is placed on every node that holds a referencing tuple, so that
  the foreign-key join never crosses nodes.

We reproduce all three so that partition-local vs network-crossing joins
can be priced differently by the statistics layer, and so the examples can
show real partition-parallel execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from .table import Table


def _stable_hash(key: Tuple[Any, ...]) -> int:
    """Deterministic hash across runs (Python's str hash is salted)."""
    value = 1469598103934665603  # FNV-1a offset basis
    for part in key:
        for byte in repr(part).encode():
            value ^= byte
            value = (value * 1099511628211) % (1 << 64)
    return value


def hash_partition(table: Table, keys: Sequence[str],
                   partitions: int) -> List[Table]:
    """Split ``table`` into ``partitions`` buckets by hash of ``keys``."""
    if partitions < 1:
        raise ValueError("partitions must be >= 1")
    if not keys:
        raise ValueError("hash partitioning needs at least one key")
    key_columns = [table.column(k) for k in keys]
    assignment: List[List[int]] = [[] for _ in range(partitions)]
    for index in range(table.num_rows):
        key = tuple(column[index] for column in key_columns)
        assignment[_stable_hash(key) % partitions].append(index)
    return [table.take(indices) for indices in assignment]


def round_robin_partition(table: Table, partitions: int) -> List[Table]:
    """Split rows round-robin (used when no key is meaningful)."""
    if partitions < 1:
        raise ValueError("partitions must be >= 1")
    assignment: List[List[int]] = [[] for _ in range(partitions)]
    for index in range(table.num_rows):
        assignment[index % partitions].append(index)
    return [table.take(indices) for indices in assignment]


def replicate(table: Table, partitions: int) -> List[Table]:
    """Full replication: every node holds the whole table."""
    if partitions < 1:
        raise ValueError("partitions must be >= 1")
    return [table for _ in range(partitions)]


def rref_partition(
    referenced: Table,
    referenced_keys: Sequence[str],
    referencing_parts: Sequence[Table],
    referencing_keys: Sequence[str],
) -> List[Table]:
    """RREF partitioning: co-locate referenced tuples with their referers.

    For each partition of the *referencing* table, emit the subset of the
    *referenced* table whose key appears among the partition's foreign
    keys.  Tuples referenced from several partitions are replicated to
    each -- that is the "partial replication" that makes the joins local.
    """
    if len(referenced_keys) != len(referencing_keys):
        raise ValueError("key lists differ in length")
    key_columns = [referenced.column(k) for k in referenced_keys]
    by_key: Dict[Tuple[Any, ...], List[int]] = {}
    for index in range(referenced.num_rows):
        key = tuple(column[index] for column in key_columns)
        by_key.setdefault(key, []).append(index)

    parts: List[Table] = []
    for part in referencing_parts:
        foreign_columns = [part.column(k) for k in referencing_keys]
        wanted: List[int] = []
        seen = set()
        for index in range(part.num_rows):
            key = tuple(column[index] for column in foreign_columns)
            if key in seen:
                continue
            seen.add(key)
            wanted.extend(by_key.get(key, ()))
        parts.append(referenced.take(sorted(wanted)))
    return parts


@dataclass(frozen=True)
class PartitionedTable:
    """A table split across cluster nodes, with its placement recorded."""

    name: str
    parts: Tuple[Table, ...]
    scheme: str                       #: "hash" | "rref" | "replicated" | "rr"
    keys: Tuple[str, ...] = ()
    #: row count of the logical (unreplicated) table; needed to compute the
    #: replication factor for rref/replicated schemes
    logical_rows: int = 0

    @property
    def partitions(self) -> int:
        return len(self.parts)

    @property
    def stored_rows(self) -> int:
        """Rows physically stored across all nodes (counting replicas)."""
        return sum(part.num_rows for part in self.parts)

    @property
    def replication_factor(self) -> float:
        """Stored rows / logical rows (RREF > 1 means partial replication)."""
        if not self.logical_rows:
            return 1.0
        return self.stored_rows / self.logical_rows

    def gather(self) -> Table:
        """Reassemble the logical table (replicated: a single copy)."""
        if self.scheme == "replicated":
            return self.parts[0]
        result = self.parts[0]
        for part in self.parts[1:]:
            result = result.concat_rows(part)
        return result
