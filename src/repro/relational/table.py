"""Columnar in-memory tables for the mini relational engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .schema import ColumnType, TableSchema


@dataclass
class Table:
    """A table: a schema plus one Python list per column.

    Columns are plain lists (not NumPy arrays) because the engine handles
    mixed types, string keys and tiny scale factors; clarity wins over
    vectorization here.  All mutating operations return new tables.
    """

    schema: TableSchema
    columns: List[List[Any]]

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.schema):
            raise ValueError(
                f"{self.schema.name}: schema has {len(self.schema)} columns, "
                f"data has {len(self.columns)}"
            )
        lengths = {len(column) for column in self.columns}
        if len(lengths) > 1:
            raise ValueError(f"{self.schema.name}: ragged columns {lengths}")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, schema: TableSchema,
                  rows: Sequence[Sequence[Any]]) -> "Table":
        columns: List[List[Any]] = [[] for _ in schema.columns]
        for row in rows:
            if len(row) != len(schema):
                raise ValueError(
                    f"row width {len(row)} != schema width {len(schema)}"
                )
            for index, value in enumerate(row):
                columns[index].append(value)
        return cls(schema=schema, columns=columns)

    @classmethod
    def empty(cls, schema: TableSchema) -> "Table":
        return cls(schema=schema, columns=[[] for _ in schema.columns])

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    def __len__(self) -> int:
        return self.num_rows

    def column(self, column_name: str) -> List[Any]:
        return self.columns[self.schema.index_of(column_name)]

    def row(self, index: int) -> Tuple[Any, ...]:
        return tuple(column[index] for column in self.columns)

    def rows(self) -> Iterator[Tuple[Any, ...]]:
        for index in range(self.num_rows):
            yield self.row(index)

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def take(self, indices: Sequence[int]) -> "Table":
        """Row subset/reorder by positional indices."""
        return Table(
            schema=self.schema,
            columns=[[column[i] for i in indices] for column in self.columns],
        )

    def filter_mask(self, mask: Sequence[bool]) -> "Table":
        if len(mask) != self.num_rows:
            raise ValueError("mask length != row count")
        indices = [i for i, keep in enumerate(mask) if keep]
        return self.take(indices)

    def project(self, column_names: Sequence[str],
                name: Optional[str] = None) -> "Table":
        return Table(
            schema=self.schema.project(column_names, name=name),
            columns=[list(self.column(c)) for c in column_names],
        )

    def rename(self, name: str) -> "Table":
        return Table(schema=self.schema.rename(name), columns=self.columns)

    def concat_rows(self, other: "Table") -> "Table":
        """UNION ALL; schemas must have identical column layouts."""
        if [c.col_type for c in self.schema.columns] != \
                [c.col_type for c in other.schema.columns]:
            raise ValueError("union of incompatible schemas")
        return Table(
            schema=self.schema,
            columns=[
                mine + theirs
                for mine, theirs in zip(self.columns, other.columns)
            ],
        )

    def with_column(self, name: str, col_type: ColumnType,
                    values: Sequence[Any]) -> "Table":
        if len(values) != self.num_rows:
            raise ValueError("new column length != row count")
        from .schema import Column
        new_schema = TableSchema(
            name=self.schema.name,
            columns=self.schema.columns + (Column(name, col_type),),
        )
        return Table(schema=new_schema, columns=self.columns + [list(values)])

    def sort_by(self, column_names: Sequence[str],
                descending: bool = False) -> "Table":
        key_columns = [self.column(c) for c in column_names]
        indices = sorted(
            range(self.num_rows),
            key=lambda i: tuple(column[i] for column in key_columns),
            reverse=descending,
        )
        return self.take(indices)

    def limit(self, count: int) -> "Table":
        return self.take(range(min(count, self.num_rows)))

    # ------------------------------------------------------------------
    # measurement hooks used by the statistics layer
    # ------------------------------------------------------------------
    def byte_size(self) -> int:
        """Rough serialized size: what materializing this table costs.

        Ints/floats count 8 bytes, dates 4, strings their length -- close
        enough for relative materialization-cost estimates.
        """
        total = 0
        for column, spec in zip(self.columns, self.schema.columns):
            if spec.col_type is ColumnType.STRING:
                total += sum(len(value) for value in column)
            elif spec.col_type is ColumnType.DATE:
                total += 4 * len(column)
            else:
                total += 8 * len(column)
        return total

    def to_dicts(self) -> List[Dict[str, Any]]:
        names = self.schema.column_names
        return [dict(zip(names, row)) for row in self.rows()]

    def pretty(self, limit: int = 10) -> str:
        names = self.schema.column_names
        lines = [" | ".join(names)]
        for index in range(min(limit, self.num_rows)):
            lines.append(" | ".join(str(v) for v in self.row(index)))
        if self.num_rows > limit:
            lines.append(f"... ({self.num_rows} rows)")
        return "\n".join(lines)
