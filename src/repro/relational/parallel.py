"""Partition-parallel execution of physical query trees.

Runs the same query tree once per node over that node's partitions (the
Section 5.1 layout makes every join of the workload local), then merges
the per-node partial results: optional re-aggregation for group-bys whose
keys span nodes, optional ordering and truncation for top-N results.

Used by the tests to *prove* the layout: for every supported query, the
merged partition-parallel result equals the single-node result, row for
row -- because fact rows (LINEITEM/ORDERS) are partitioned disjointly and
all referenced dimensions are locally available via replication or RREF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from .executor import execute
from .operators import AggregateSpec, HashAggregate, PhysicalOperator, Scan
from .table import Table


@dataclass(frozen=True)
class MergeSpec:
    """How per-node partial results combine into the global result.

    ``group_by``/``aggregates``: re-aggregate the unioned partials (leave
    empty when group keys are node-local and partials are already final).
    ``post_project``: applied to the merged table -- the hook for
    non-distributive aggregates, e.g. recomputing an AVG from merged
    SUM and COUNT partials.
    ``sort_by``/``descending``/``limit``: global ordering/truncation.
    """

    group_by: Tuple[str, ...] = ()
    aggregates: Tuple[AggregateSpec, ...] = ()
    post_project: Optional[Callable[[Table], Table]] = None
    sort_by: Tuple[str, ...] = ()
    descending: bool = True
    limit: Optional[int] = None


def run_partitioned(
    build_tree: Callable[..., PhysicalOperator],
    node_views: Sequence,
    merge: MergeSpec,
) -> Table:
    """Execute ``build_tree(view)`` per node and merge the partials."""
    if not node_views:
        raise ValueError("need at least one node view")
    partials: List[Table] = [
        execute(build_tree(view)) for view in node_views
    ]
    merged = partials[0]
    for partial in partials[1:]:
        merged = merged.concat_rows(partial)

    if merge.aggregates:
        merged = execute(HashAggregate(
            Scan(merged),
            group_by=list(merge.group_by),
            aggregates=list(merge.aggregates),
            output_name=merged.schema.name,
        ))
    if merge.post_project is not None:
        merged = merge.post_project(merged)
    if merge.sort_by:
        merged = merged.sort_by(list(merge.sort_by),
                                descending=merge.descending)
    if merge.limit is not None:
        merged = merged.limit(merge.limit)
    return merged
