"""Scalar expressions evaluated column-at-a-time over tables.

A tiny expression tree -- column references, literals, arithmetic,
comparisons, boolean connectives, and a few functions -- enough to express
the predicates and derived columns of the paper's TPC-H queries (Q1's
``l_extendedprice * (1 - l_discount) * (1 + l_tax)``, date-range filters,
etc.).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, List, Sequence

from .table import Table


class Expression:
    """Base class; ``evaluate`` returns one value per table row."""

    def evaluate(self, table: Table) -> List[Any]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # operator sugar so predicates read naturally in query builders
    # ------------------------------------------------------------------
    def __add__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp("+", self, wrap(other), operator.add)

    def __sub__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp("-", self, wrap(other), operator.sub)

    def __mul__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp("*", self, wrap(other), operator.mul)

    def __truediv__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp("/", self, wrap(other), operator.truediv)

    def __eq__(self, other: object) -> "BinaryOp":  # type: ignore[override]
        return BinaryOp("=", self, wrap(other), operator.eq)

    def __ne__(self, other: object) -> "BinaryOp":  # type: ignore[override]
        return BinaryOp("<>", self, wrap(other), operator.ne)

    def __lt__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp("<", self, wrap(other), operator.lt)

    def __le__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp("<=", self, wrap(other), operator.le)

    def __gt__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp(">", self, wrap(other), operator.gt)

    def __ge__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp(">=", self, wrap(other), operator.ge)

    def __and__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp(
            "and", self, wrap(other), lambda a, b: bool(a) and bool(b)
        )

    def __or__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp(
            "or", self, wrap(other), lambda a, b: bool(a) or bool(b)
        )

    def __invert__(self) -> "UnaryOp":
        return UnaryOp("not", self, lambda a: not a)

    def __hash__(self) -> int:  # __eq__ is overloaded for expression building
        return id(self)

    def is_in(self, values: Sequence[Any]) -> "InList":
        return InList(self, tuple(values))

    def between(self, low: Any, high: Any) -> "BinaryOp":
        return (self >= wrap(low)) & (self <= wrap(high))


ExpressionLike = Any  # Expression or a plain literal


def wrap(value: ExpressionLike) -> Expression:
    """Coerce plain Python values to literals."""
    if isinstance(value, Expression):
        return value
    return Literal(value)


@dataclass(frozen=True, eq=False)
class Col(Expression):
    """Reference to a column by name."""

    name: str

    def evaluate(self, table: Table) -> List[Any]:
        return table.column(self.name)

    def __repr__(self) -> str:
        return f"Col({self.name})"


@dataclass(frozen=True, eq=False)
class Literal(Expression):
    value: Any

    def evaluate(self, table: Table) -> List[Any]:
        return [self.value] * table.num_rows

    def __repr__(self) -> str:
        return f"Lit({self.value!r})"


@dataclass(eq=False)
class BinaryOp(Expression):
    symbol: str
    left: Expression
    right: Expression
    fn: Callable[[Any, Any], Any]

    def evaluate(self, table: Table) -> List[Any]:
        left_values = self.left.evaluate(table)
        right_values = self.right.evaluate(table)
        fn = self.fn
        return [fn(a, b) for a, b in zip(left_values, right_values)]

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


@dataclass(eq=False)
class UnaryOp(Expression):
    symbol: str
    operand: Expression
    fn: Callable[[Any], Any]

    def evaluate(self, table: Table) -> List[Any]:
        return [self.fn(value) for value in self.operand.evaluate(table)]

    def __repr__(self) -> str:
        return f"{self.symbol}({self.operand!r})"


@dataclass(eq=False)
class InList(Expression):
    operand: Expression
    values: tuple

    def evaluate(self, table: Table) -> List[Any]:
        lookup = set(self.values)
        return [value in lookup for value in self.operand.evaluate(table)]

    def __repr__(self) -> str:
        return f"{self.operand!r} IN {self.values!r}"


@dataclass(eq=False)
class Func(Expression):
    """Arbitrary scalar function of one or more sub-expressions."""

    name: str
    fn: Callable[..., Any]
    args: "tuple[Expression, ...]"

    def __init__(self, name: str, fn: Callable[..., Any],
                 *args: ExpressionLike) -> None:
        self.name = name
        self.fn = fn
        self.args = tuple(wrap(arg) for arg in args)

    def evaluate(self, table: Table) -> List[Any]:
        evaluated = [arg.evaluate(table) for arg in self.args]
        fn = self.fn
        return [fn(*values) for values in zip(*evaluated)]

    def __repr__(self) -> str:
        args = ", ".join(repr(arg) for arg in self.args)
        return f"{self.name}({args})"


def starts_with(expr: ExpressionLike, prefix: str) -> Func:
    """``column LIKE 'prefix%'``."""
    return Func("starts_with", lambda v: v.startswith(prefix), wrap(expr))


def contains(expr: ExpressionLike, needle: str) -> Func:
    """``column LIKE '%needle%'``."""
    return Func("contains", lambda v: needle in v, wrap(expr))


def is_null(expr: ExpressionLike) -> Func:
    """``column IS NULL`` -- for rows padded by a left outer join."""
    return Func("is_null", lambda v: v is None, wrap(expr))


def is_not_null(expr: ExpressionLike) -> Func:
    """``column IS NOT NULL``."""
    return Func("is_not_null", lambda v: v is not None, wrap(expr))


def coalesce(*exprs: ExpressionLike) -> Func:
    """``COALESCE(a, b, ...)`` -- the first non-null argument per row."""
    if not exprs:
        raise ValueError("coalesce needs at least one argument")

    def pick(*values):
        for value in values:
            if value is not None:
                return value
        return None

    return Func("coalesce", pick, *exprs)
