"""Physical operators of the mini relational engine.

Operators form a tree (or DAG when a CTE output feeds several consumers);
``execute()`` pulls the full input(s), produces an output
:class:`~repro.relational.table.Table`, and remembers the measured output
so the statistics layer can read real cardinalities and byte sizes after a
profiling run.

The operator set covers what the paper's workload needs: scans, filters,
projections (with derived columns), hash joins, hash aggregation (with
AVG/SUM/COUNT/MIN/MAX), sorting, limits, repartition exchanges, and a CTE
buffer that evaluates once and serves several consumers (Q2C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .expressions import Expression, wrap
from .schema import Column, ColumnType, TableSchema
from .table import Table


class PhysicalOperator:
    """Base class for relational operators.

    Attributes populated after :meth:`execute`:

    * ``output_rows`` / ``output_bytes`` -- measured output size,
    * ``executions`` -- how many times the operator body actually ran
      (CTE buffers run once regardless of consumer count).
    """

    name: str = "operator"

    def __init__(self, *children: "PhysicalOperator") -> None:
        self.children: Tuple["PhysicalOperator", ...] = children
        self.output_rows: Optional[int] = None
        self.output_bytes: Optional[int] = None
        self.executions: int = 0

    def execute(self) -> Table:
        inputs = [child.execute() for child in self.children]
        result = self._run(inputs)
        self.executions += 1
        self.output_rows = result.num_rows
        self.output_bytes = result.byte_size()
        return result

    def _run(self, inputs: List[Table]) -> Table:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def walk(self) -> "List[PhysicalOperator]":
        """Pre-order traversal of the operator tree."""
        nodes = [self]
        for child in self.children:
            nodes.extend(child.walk())
        return nodes

    def describe(self) -> str:
        return self.name

    def pretty(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.describe()]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


class Scan(PhysicalOperator):
    """Leaf: produce a base table."""

    name = "Scan"

    def __init__(self, table: Table) -> None:
        super().__init__()
        self.table = table

    def _run(self, inputs: List[Table]) -> Table:
        return self.table

    def describe(self) -> str:
        return f"Scan({self.table.schema.name})"


class Filter(PhysicalOperator):
    name = "Filter"

    def __init__(self, child: PhysicalOperator, predicate: Expression) -> None:
        super().__init__(child)
        self.predicate = predicate

    def _run(self, inputs: List[Table]) -> Table:
        (table,) = inputs
        mask = self.predicate.evaluate(table)
        return table.filter_mask([bool(v) for v in mask])

    def describe(self) -> str:
        return f"Filter({self.predicate!r})"


class Project(PhysicalOperator):
    """Projection with optional derived columns.

    ``outputs`` is a list of ``(name, expression, type)``; plain column
    pass-through is just ``(name, Col(name), original_type)``.
    """

    name = "Project"

    def __init__(
        self,
        child: PhysicalOperator,
        outputs: Sequence[Tuple[str, Expression, ColumnType]],
        output_name: str = "projection",
    ) -> None:
        super().__init__(child)
        self.outputs = [(n, wrap(e), t) for n, e, t in outputs]
        self.output_name = output_name

    def _run(self, inputs: List[Table]) -> Table:
        (table,) = inputs
        schema = TableSchema(
            name=self.output_name,
            columns=tuple(Column(n, t) for n, _, t in self.outputs),
        )
        columns = [list(e.evaluate(table)) for _, e, _ in self.outputs]
        return Table(schema=schema, columns=columns)

    def describe(self) -> str:
        names = ", ".join(n for n, _, _ in self.outputs)
        return f"Project({names})"


class HashJoin(PhysicalOperator):
    """Equi-join: build a hash table on the left, probe with the right.

    ``join_type="inner"`` (default) drops unmatched rows;
    ``join_type="left"`` keeps every left row, padding the right side's
    columns with ``None`` (SQL ``LEFT OUTER JOIN`` -- the null-aware
    aggregates then skip the padding, as SQL's do).
    """

    name = "HashJoin"

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
        output_name: Optional[str] = None,
        join_type: str = "inner",
    ) -> None:
        if len(left_keys) != len(right_keys):
            raise ValueError("join key lists differ in length")
        if not left_keys:
            raise ValueError("equi-join needs at least one key")
        if join_type not in ("inner", "left"):
            raise ValueError("join_type must be 'inner' or 'left'")
        super().__init__(left, right)
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.output_name = output_name
        self.join_type = join_type

    def _run(self, inputs: List[Table]) -> Table:
        left, right = inputs
        probe: Dict[Tuple[Any, ...], List[int]] = {}
        right_key_columns = [right.column(k) for k in self.right_keys]
        for index in range(right.num_rows):
            key = tuple(column[index] for column in right_key_columns)
            probe.setdefault(key, []).append(index)

        left_key_columns = [left.column(k) for k in self.left_keys]
        left_indices: List[int] = []
        right_indices: List[Optional[int]] = []
        for index in range(left.num_rows):
            key = tuple(column[index] for column in left_key_columns)
            matches = probe.get(key, ())
            if matches:
                for match in matches:
                    left_indices.append(index)
                    right_indices.append(match)
            elif self.join_type == "left":
                left_indices.append(index)
                right_indices.append(None)

        left_rows = left.take(left_indices)
        right_columns = [
            [column[i] if i is not None else None for i in right_indices]
            for column in right.columns
        ]
        schema = left.schema.concat(right.schema, name=self.output_name)
        return Table(
            schema=schema,
            columns=left_rows.columns + right_columns,
        )

    def describe(self) -> str:
        pairs = ", ".join(
            f"{l}={r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        prefix = "LeftHashJoin" if self.join_type == "left" else "HashJoin"
        return f"{prefix}({pairs})"


def _non_null(values: List[Any]) -> List[Any]:
    return [value for value in values if value is not None]


#: aggregate function name -> reducer over a value list.  All reducers
#: skip NULLs (None), matching SQL semantics -- count(col) counts
#: non-null values, sum/min/max/avg ignore padding from outer joins.
_AGGREGATES: Dict[str, Callable[[List[Any]], Any]] = {
    "sum": lambda values: sum(_non_null(values)),
    "count": lambda values: len(_non_null(values)),
    "avg": lambda values: (
        sum(_non_null(values)) / len(_non_null(values))
        if _non_null(values) else None
    ),
    "min": lambda values: min(_non_null(values), default=None),
    "max": lambda values: max(_non_null(values), default=None),
}


@dataclass(frozen=True)
class AggregateSpec:
    """One output aggregate: ``fn(expression) AS out_name``."""

    out_name: str
    fn: str
    expression: Expression
    out_type: ColumnType = ColumnType.FLOAT

    def __post_init__(self) -> None:
        if self.fn not in _AGGREGATES:
            raise ValueError(f"unknown aggregate {self.fn!r}")


class HashAggregate(PhysicalOperator):
    """Group-by with hash grouping; empty ``group_by`` = scalar aggregate."""

    name = "HashAggregate"

    def __init__(
        self,
        child: PhysicalOperator,
        group_by: Sequence[str],
        aggregates: Sequence[AggregateSpec],
        output_name: str = "aggregate",
    ) -> None:
        super().__init__(child)
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)
        self.output_name = output_name

    def _run(self, inputs: List[Table]) -> Table:
        (table,) = inputs
        group_columns = [table.column(name) for name in self.group_by]
        value_lists = [
            spec.expression.evaluate(table) for spec in self.aggregates
        ]

        groups: Dict[Tuple[Any, ...], List[List[Any]]] = {}
        for index in range(table.num_rows):
            key = tuple(column[index] for column in group_columns)
            bucket = groups.get(key)
            if bucket is None:
                bucket = [[] for _ in self.aggregates]
                groups[key] = bucket
            for slot, values in zip(bucket, value_lists):
                slot.append(values[index])

        key_types = [
            table.schema.column(name).col_type for name in self.group_by
        ]
        schema = TableSchema(
            name=self.output_name,
            columns=tuple(
                [Column(n, t) for n, t in zip(self.group_by, key_types)]
                + [Column(s.out_name, s.out_type) for s in self.aggregates]
            ),
        )
        rows = []
        for key in sorted(groups, key=lambda k: tuple(map(_sort_key, k))):
            bucket = groups[key]
            aggregated = [
                _AGGREGATES[spec.fn](values)
                for spec, values in zip(self.aggregates, bucket)
            ]
            rows.append(list(key) + aggregated)
        if not rows and not self.group_by:
            # scalar aggregate over an empty input still yields one row
            rows.append([
                _AGGREGATES[spec.fn]([]) if spec.fn in ("sum", "count")
                else None
                for spec in self.aggregates
            ])
        return Table.from_rows(schema, rows)

    def describe(self) -> str:
        aggs = ", ".join(f"{s.fn}->{s.out_name}" for s in self.aggregates)
        keys = ",".join(self.group_by) or "()"
        return f"HashAggregate(by={keys}; {aggs})"


def _sort_key(value: Any) -> Any:
    """Total order across mixed types for deterministic group output."""
    return (str(type(value).__name__), value)


class Sort(PhysicalOperator):
    name = "Sort"

    def __init__(self, child: PhysicalOperator, by: Sequence[str],
                 descending: bool = False) -> None:
        super().__init__(child)
        self.by = list(by)
        self.descending = descending

    def _run(self, inputs: List[Table]) -> Table:
        (table,) = inputs
        return table.sort_by(self.by, descending=self.descending)

    def describe(self) -> str:
        direction = "desc" if self.descending else "asc"
        return f"Sort({','.join(self.by)} {direction})"


class Limit(PhysicalOperator):
    name = "Limit"

    def __init__(self, child: PhysicalOperator, count: int) -> None:
        super().__init__(child)
        self.count = count

    def _run(self, inputs: List[Table]) -> Table:
        (table,) = inputs
        return table.limit(self.count)

    def describe(self) -> str:
        return f"Limit({self.count})"


class Distinct(PhysicalOperator):
    """Duplicate elimination over all columns (SQL ``SELECT DISTINCT``)."""

    name = "Distinct"

    def __init__(self, child: PhysicalOperator) -> None:
        super().__init__(child)

    def _run(self, inputs: List[Table]) -> Table:
        (table,) = inputs
        seen = set()
        keep: List[int] = []
        for index in range(table.num_rows):
            row = table.row(index)
            if row not in seen:
                seen.add(row)
                keep.append(index)
        return table.take(keep)


class TopK(PhysicalOperator):
    """Heap-based ``ORDER BY ... LIMIT k`` in one pass.

    Equivalent to ``Limit(Sort(child, by, descending), k)`` but without
    fully sorting the input -- the realistic physical operator for the
    workload's top-N queries.
    """

    name = "TopK"

    def __init__(self, child: PhysicalOperator, by: Sequence[str],
                 k: int, descending: bool = True) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        super().__init__(child)
        self.by = list(by)
        self.k = k
        self.descending = descending

    def _run(self, inputs: List[Table]) -> Table:
        import heapq

        (table,) = inputs
        key_columns = [table.column(name) for name in self.by]

        def sort_key(index: int):
            return tuple(column[index] for column in key_columns)

        chooser = heapq.nlargest if self.descending else heapq.nsmallest
        indices = chooser(self.k, range(table.num_rows), key=sort_key)
        return table.take(indices)

    def describe(self) -> str:
        direction = "desc" if self.descending else "asc"
        return f"TopK({','.join(self.by)} {direction}, k={self.k})"


class UnionAll(PhysicalOperator):
    name = "UnionAll"

    def __init__(self, *children: PhysicalOperator) -> None:
        if len(children) < 2:
            raise ValueError("union needs at least two inputs")
        super().__init__(*children)

    def _run(self, inputs: List[Table]) -> Table:
        result = inputs[0]
        for table in inputs[1:]:
            result = result.concat_rows(table)
        return result


class Repartition(PhysicalOperator):
    """Exchange: hash-repartition rows across ``partitions`` buckets.

    In the single-process mini engine this is a logical no-op on the data
    (the buckets are concatenated back), but it measures the shuffled
    byte volume, which the statistics layer uses to price network-bound
    repartition operators.
    """

    name = "Repartition"

    def __init__(self, child: PhysicalOperator, keys: Sequence[str],
                 partitions: int) -> None:
        if partitions < 1:
            raise ValueError("partitions must be >= 1")
        super().__init__(child)
        self.keys = list(keys)
        self.partitions = partitions

    def _run(self, inputs: List[Table]) -> Table:
        from .partitioning import hash_partition

        (table,) = inputs
        parts = hash_partition(table, self.keys, self.partitions)
        result = parts[0]
        for part in parts[1:]:
            result = result.concat_rows(part)
        return result

    def describe(self) -> str:
        return f"Repartition({','.join(self.keys)} -> {self.partitions})"


class CteBuffer(PhysicalOperator):
    """Common-table-expression buffer: evaluate once, serve many consumers.

    Q2C's DAG shape comes from two outer queries consuming one inner
    aggregate; in the operator tree the same ``CteBuffer`` instance
    appears as the child of both consumers.
    """

    name = "CteBuffer"

    def __init__(self, child: PhysicalOperator, cte_name: str = "cte") -> None:
        super().__init__(child)
        self.cte_name = cte_name
        self._cached: Optional[Table] = None

    def execute(self) -> Table:
        if self._cached is None:
            self._cached = super().execute()
        return self._cached

    def invalidate(self) -> None:
        self._cached = None

    def _run(self, inputs: List[Table]) -> Table:
        (table,) = inputs
        return table.rename(self.cte_name)

    def describe(self) -> str:
        return f"CteBuffer({self.cte_name})"
