"""Mini in-memory relational engine (columnar, single-process).

Provides real query execution at small scale factors so the TPC-H
workload's cardinalities -- and therefore the cost estimates -- are
measured, not invented.
"""

from .executor import OperatorProfile, execute, profile
from .parallel import MergeSpec, run_partitioned
from .expressions import (
    Col,
    Expression,
    Func,
    InList,
    Literal,
    coalesce,
    contains,
    is_not_null,
    is_null,
    starts_with,
    wrap,
)
from .operators import (
    AggregateSpec,
    CteBuffer,
    Distinct,
    Filter,
    HashAggregate,
    HashJoin,
    Limit,
    PhysicalOperator,
    Project,
    Repartition,
    Scan,
    Sort,
    TopK,
    UnionAll,
)
from .partitioning import (
    PartitionedTable,
    hash_partition,
    replicate,
    round_robin_partition,
    rref_partition,
)
from .schema import Column, ColumnType, TableSchema
from .table import Table

__all__ = [
    "AggregateSpec",
    "Col",
    "Column",
    "ColumnType",
    "CteBuffer",
    "Distinct",
    "Expression",
    "Filter",
    "Func",
    "HashAggregate",
    "HashJoin",
    "InList",
    "Limit",
    "MergeSpec",
    "Literal",
    "OperatorProfile",
    "PartitionedTable",
    "PhysicalOperator",
    "Project",
    "Repartition",
    "Scan",
    "Sort",
    "TopK",
    "Table",
    "TableSchema",
    "UnionAll",
    "coalesce",
    "contains",
    "is_not_null",
    "is_null",
    "execute",
    "hash_partition",
    "profile",
    "replicate",
    "run_partitioned",
    "round_robin_partition",
    "rref_partition",
    "starts_with",
    "wrap",
]
