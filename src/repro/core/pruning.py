"""Search-space pruning rules (Section 4).

Three rules cut down the space of fault-tolerant plans ``[P, M_P]``:

* **Rule 1 -- high materialization costs.**  Before enumerating
  materialization configurations, mark an operator ``o`` as
  non-materializable when collapsing it into its parent ``p`` is guaranteed
  to cost no more than materializing it: ``t({o, p}) <= t({o})`` for a
  unary parent, and ``t({o_1..o_k, p}) <= t({o_i})`` for every child of an
  n-ary parent.

* **Rule 2 -- high probability of success.**  Mark ``o`` (child of a unary
  parent ``p``) as non-materializable when the collapsed operator
  ``{o, p}`` already meets the desired success percentile:
  ``gamma({o, p}) >= S``.

* **Rule 3 -- long execution paths.**  During path enumeration, stop early
  once any path of the current plan is provably at least as expensive as
  the best dominant path memoized so far: (1) the failure-free runtime
  check ``R_Pt >= bestT``, (2) the full-cost check ``T_Pt >= bestT``, and
  (3) the pairwise-dominance test of Equation 9 against memoized dominant
  paths with at most as many collapsed operators.

Safety: Rule 3 is exactly safe (it only skips plans provably at least as
expensive as the memoized best), and Rule 1's unary case is exactly safe
whenever the parent is free (for any configuration materializing ``o``,
the configuration that materializes ``p`` instead is no worse).  Property
testing (``tests/test_property_pruning.py``) found two caveats the paper's
Section 4 proofs gloss over, both boundary effects with sub-percent
regret:

* *Rule 1, n-ary case:* on DAG-structured plans, binding all children of
  an n-ary parent changes the set of execution paths (a materialized
  child forms its own path segment), and at the ``t({o..,p}) <= t({o_i})``
  boundary this occasionally excludes a configuration that was globally
  optimal by a sliver (``tests/test_pruning.py::TestRule1NaryProofGap``).
* *Rule 2:* the check ``gamma({o,p}) >= S`` looks at the pairwise
  collapse, but in configurations where ``p`` itself does not materialize
  the realized group extends beyond ``p`` and its success probability can
  fall below ``S``; marking ``o`` then forgoes a marginally better
  checkpoint (``tests/test_pruning.py::TestRule2ProofGap``).

We keep both rules exactly as published and document the gaps; the
observed regret is typically well under one percent of the plan cost,
with rare boundary constructions reaching a few percent (the property
suite bounds it at 5 % over its generator ranges).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from . import cost_model
from .cost_model import ClusterStats
from .plan import Operator, Plan


@dataclass
class PruningStats:
    """Counters describing how much work each rule saved (Figure 13)."""

    rule1_marked: int = 0            #: operators bound by Rule 1
    rule2_marked: int = 0            #: operators bound by Rule 2
    rule3_plan_cutoffs: int = 0      #: plans whose path enumeration stopped early
    configs_total: int = 0           #: FT plans an unpruned search would visit
    configs_enumerated: int = 0      #: FT plans actually visited
    paths_estimated: int = 0         #: paths scored by the cost model

    @property
    def configs_pruned(self) -> int:
        return self.configs_total - self.configs_enumerated

    def merge(self, other: "PruningStats") -> None:
        self.rule1_marked += other.rule1_marked
        self.rule2_marked += other.rule2_marked
        self.rule3_plan_cutoffs += other.rule3_plan_cutoffs
        self.configs_total += other.configs_total
        self.configs_enumerated += other.configs_enumerated
        self.paths_estimated += other.paths_estimated


def _collapsed_pair_cost(
    children: Sequence[Operator], parent: Operator, const_pipe: float
) -> float:
    """``t({o_1..o_k, p})`` for the Rule 1 / Rule 2 collapse check.

    The dominant path of the collapsed group is the most expensive child
    followed by the parent; ``CONST_pipe`` applies because the pipeline has
    at least two operators (cf. Figure 5's arithmetic).
    """
    dominant_child = max(child.runtime_cost for child in children)
    runtime = (dominant_child + parent.runtime_cost) * const_pipe
    return runtime + parent.mat_cost


def _singleton_cost(operator: Operator) -> float:
    """``t({o})`` when ``o`` is materialized on its own."""
    return operator.runtime_cost + operator.mat_cost


def apply_rule1(plan: Plan, const_pipe: float = 1.0,
                stats_out: Optional[PruningStats] = None) -> Plan:
    """Rule 1: bind high-materialization-cost operators to ``m(o) = 0``.

    Returns a new plan; the input is unchanged.  Only free operators are
    considered, and the rule fires per consuming parent: if ``o`` has
    several consumers it must satisfy the inequality for each of them
    (collapsing happens into *every* consumer when ``m(o) = 0``).
    """
    marked: List[int] = []
    for op_id, operator in plan.operators.items():
        if not operator.free:
            continue
        consumer_ids = plan.consumers(op_id)
        if not consumer_ids:
            continue  # sinks have no parent to collapse into
        if all(
            _rule1_holds_for_parent(plan, parent_id, const_pipe)
            and op_id in plan.producers(parent_id)
            for parent_id in consumer_ids
        ):
            marked.append(op_id)
    if stats_out is not None:
        stats_out.rule1_marked += len(marked)
    return _bind_non_materializable(plan, marked)


def _rule1_holds_for_parent(plan: Plan, parent_id: int,
                            const_pipe: float) -> bool:
    """Check ``t({children, p}) <= t({o_i})`` for all children of ``p``."""
    parent = plan[parent_id]
    children = [plan[c] for c in plan.producers(parent_id)]
    if not children:
        return False
    collapsed_cost = _collapsed_pair_cost(children, parent, const_pipe)
    return all(
        collapsed_cost <= _singleton_cost(child) for child in children
    )


def apply_rule2(plan: Plan, stats: ClusterStats,
                stats_out: Optional[PruningStats] = None) -> Plan:
    """Rule 2: bind operators whose collapse already meets the percentile.

    Only fires for children of *unary* parents, as in the paper: for n-ary
    parents the collapse pulls in sibling sub-plans, and the success
    probability of the merged group no longer upper-bounds each child's.
    Arity counts folded base-table inputs (a join reading a base table is
    binary), so in practice the rule fires near the top of a plan --
    aggregations and projections -- exactly as the paper observes.
    """
    marked: List[int] = []
    for op_id, operator in plan.operators.items():
        if not operator.free:
            continue
        consumer_ids = plan.consumers(op_id)
        if len(consumer_ids) != 1:
            continue
        parent_id = consumer_ids[0]
        if plan.arity(parent_id) != 1:
            continue  # parent must be unary
        collapsed_cost = _collapsed_pair_cost(
            [operator], plan[parent_id], stats.const_pipe
        )
        gamma = cost_model.success_probability(collapsed_cost, stats.mtbf_cost)
        if gamma >= stats.success_percentile:
            marked.append(op_id)
    if stats_out is not None:
        stats_out.rule2_marked += len(marked)
    return _bind_non_materializable(plan, marked)


def _bind_non_materializable(plan: Plan, op_ids: Sequence[int]) -> Plan:
    if not op_ids:
        return plan
    new_plan = Plan()
    to_bind = set(op_ids)
    for op_id, operator in plan.operators.items():
        if op_id in to_bind:
            operator = operator.as_bound(materialize=False)
        new_plan.add_operator(operator)
    for producer_id, consumer_id in plan.edges():
        new_plan.add_edge(producer_id, consumer_id)
    return new_plan


# ----------------------------------------------------------------------
# Rule 3 -- memoized dominant paths
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SkipDecision:
    """Outcome of one Rule 3 check on an enumerated path."""

    skip: bool                     #: the whole plan can be skipped
    estimated: Optional[float]     #: T_Pt when the cost model ran
    cheap: bool                    #: a pre-cost-model check fired


@dataclass
class DominantPathMemo:
    """Memo of the best (cheapest) dominant paths seen so far (Rule 3).

    Stores, per collapsed-operator count, the sorted ``t(c)`` vector of the
    cheapest dominant path observed, plus the global best dominant cost
    ``bestT``.  :meth:`should_skip_plan` implements the three early-exit
    checks of Section 4.3.

    The memo counts its own effectiveness: ``hits`` is every check that
    skipped a plan (split into ``cheap_skips`` for the failure-free
    bound, ``dominance_skips`` for Equation 9, ``estimated_skips`` for
    the full-cost check), ``misses`` is checks that let the plan
    through.  :meth:`hit_rate` summarizes; the observability layer
    surfaces the same numbers as ``search.rule3.*`` counters.
    """

    best_cost: float = float("inf")  #: bestT across all FT plans so far
    #: path length -> descending-sorted t(c) vector of the best dominant path
    _by_length: Dict[int, Tuple[float, ...]] = field(default_factory=dict)
    # -- introspection counters -----------------------------------------
    cheap_skips: int = 0       #: skips by the failure-free R >= bestT bound
    dominance_skips: int = 0   #: skips by the Equation 9 pairwise test
    estimated_skips: int = 0   #: skips by the full cost-model estimate
    misses: int = 0            #: checks that did not skip
    records: int = 0           #: record_dominant calls
    improvements: int = 0      #: times bestT strictly improved

    @property
    def hits(self) -> int:
        """Checks that skipped a plan (any of the three rules fired)."""
        return self.cheap_skips + self.dominance_skips + self.estimated_skips

    @property
    def checks(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Fraction of :meth:`should_skip_plan` calls that skipped."""
        checks = self.checks
        return self.hits / checks if checks else 0.0

    def record_dominant(self, path_costs: Sequence[float],
                        total_cost: float) -> None:
        """Memoize a plan's dominant path and its cost under failures."""
        self.records += 1
        if total_cost < self.best_cost:
            self.best_cost = total_cost
            self.improvements += 1
        key = len(path_costs)
        ordered = tuple(sorted(path_costs, reverse=True))
        current = self._by_length.get(key)
        if current is None or _vector_leq(ordered, current):
            self._by_length[key] = ordered

    def observe_external_best(self, total_cost: float) -> None:
        """Fold in a best dominant cost discovered elsewhere.

        Used by the parallel search to exchange ``bestT`` between worker
        processes: only the scalar bound travels, the per-length path
        vectors stay local to each worker's memo.
        """
        if total_cost < self.best_cost:
            self.best_cost = total_cost
            self.improvements += 1

    def dominates(self, path_costs: Sequence[float]) -> bool:
        """Equation 9: is some memoized path pairwise <= this path?

        A memoized dominant path ``Ptm`` with *fewer* collapsed operators
        also qualifies (pad it with zero-cost operators).
        """
        ordered = sorted(path_costs, reverse=True)
        for length, memoized in self._by_length.items():
            if length > len(ordered):
                continue
            padded = memoized + (0.0,) * (len(ordered) - length)
            if all(mine >= theirs
                   for mine, theirs in zip(ordered, padded)):
                return True
        return False

    def should_skip_plan(
        self,
        path_costs: Sequence[float],
        stats: ClusterStats,
        exact_waste: bool = False,
    ) -> "SkipDecision":
        """Apply Rule 3's checks to one enumerated path.

        Returns a :class:`SkipDecision`; its ``estimated`` is ``None``
        when one of the *cheap* checks fired before calling the cost
        model (the failure-free check ``R_Pt >= bestT`` and the
        Equation 9 dominance test), in which case ``cheap`` is True.
        """
        # check 1: failure-free runtime already beats bestT -> skip,
        # no cost-model call needed.
        if cost_model.path_cost_failure_free(path_costs) >= self.best_cost:
            self.cheap_skips += 1
            return SkipDecision(skip=True, estimated=None, cheap=True)
        # Equation 9 dominance against memoized dominant paths: T_Pt is
        # monotone in the sorted t(c) vector, so domination implies the
        # path costs at least as much as a memoized dominant path, and
        # every memoized dominant cost is >= bestT by construction.
        if self._by_length and self.dominates(path_costs):
            self.dominance_skips += 1
            return SkipDecision(skip=True, estimated=None, cheap=True)
        # check 2: full cost-model estimate against bestT.
        estimated = cost_model.path_cost(
            path_costs, stats, exact_waste=exact_waste
        )
        if estimated >= self.best_cost:
            self.estimated_skips += 1
            return SkipDecision(skip=True, estimated=estimated, cheap=False)
        self.misses += 1
        return SkipDecision(skip=False, estimated=estimated, cheap=False)


def _vector_leq(a: Sequence[float], b: Sequence[float]) -> bool:
    """Pairwise ``a[i] <= b[i]`` for equal-length descending vectors."""
    return all(x <= y for x, y in zip(a, b))


@dataclass(frozen=True)
class PruningConfig:
    """Which pruning rules an optimizer run applies (for Figure 13)."""

    rule1: bool = True
    rule2: bool = True
    rule3: bool = True

    @classmethod
    def none(cls) -> "PruningConfig":
        return cls(rule1=False, rule2=False, rule3=False)

    @classmethod
    def all(cls) -> "PruningConfig":
        return cls(rule1=True, rule2=True, rule3=True)

    @classmethod
    def only(cls, rule: int) -> "PruningConfig":
        if rule not in (1, 2, 3):
            raise ValueError("rule must be 1, 2 or 3")
        return cls(rule1=rule == 1, rule2=rule == 2, rule3=rule == 3)
