"""Fault-tolerant plan enumeration (Listing 1 and Section 3.2).

This module glues the pieces together:

* :func:`enumerate_mat_configs` -- the ``2^n`` materialization
  configurations over a plan's free operators,
* :func:`estimate_plan_cost` -- steps 2-4 of the procedure for one
  fault-tolerant plan ``[P, M_P]`` (collapse, enumerate paths, score them,
  pick the dominant one), and
* :func:`find_best_ft_plan` -- Listing 1: search over candidate plans and
  configurations for the fault-tolerant plan with the cheapest dominant
  path, with the pruning rules of Section 4 wired in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Tuple

from . import cost_model
from .collapse import CollapsedPlan, collapse_plan
from .cost_model import ClusterStats
from .paths import ExecutionPath, enumerate_paths, path_total_costs
from .plan import Plan
from .pruning import (
    DominantPathMemo,
    PruningConfig,
    PruningStats,
    apply_rule1,
    apply_rule2,
)

MatConfig = Tuple[Tuple[int, bool], ...]


def enumerate_mat_configs(plan: Plan) -> Iterator[MatConfig]:
    """Yield all materialization configurations over ``plan``'s free ops.

    Configurations are tuples of ``(op_id, materialize)`` pairs covering
    exactly the free operators, enumerated in a stable order: free ids
    ascending, bitmask counting up from all-zeros (no materialization) to
    all-ones (materialize everything).  Bound operators are never touched.
    """
    free_ids = plan.free_operators
    for mask in range(2 ** len(free_ids)):
        yield tuple(
            (op_id, bool(mask >> bit & 1))
            for bit, op_id in enumerate(free_ids)
        )


def count_mat_configs(plan: Plan) -> int:
    """``2^n`` for ``n`` free operators."""
    return 2 ** len(plan.free_operators)


@dataclass(frozen=True)
class PlanCostEstimate:
    """Result of scoring one fault-tolerant plan ``[P, M_P]``.

    Attributes
    ----------
    cost:
        ``T_Pt`` of the dominant path -- the plan's estimated runtime
        under mid-query failures.
    failure_free_cost:
        ``R_Pt`` of the dominant path (no failures).
    dominant_path:
        The dominant execution path (collapsed operators).
    collapsed:
        The collapsed plan the estimate was computed on.
    """

    cost: float
    failure_free_cost: float
    dominant_path: ExecutionPath
    collapsed: CollapsedPlan


def estimate_plan_cost(
    plan: Plan,
    stats: ClusterStats,
    exact_waste: bool = False,
) -> PlanCostEstimate:
    """Steps 2-4 for one fault-tolerant plan: collapse, score, pick dominant.

    The materialization configuration is read from the plan's ``m(o)``
    flags (apply one with :meth:`Plan.with_mat_config` first).
    """
    collapsed = collapse_plan(plan, const_pipe=stats.const_pipe)
    best: Optional[PlanCostEstimate] = None
    for path in enumerate_paths(collapsed):
        costs = path_total_costs(path)
        total = cost_model.path_cost(costs, stats, exact_waste=exact_waste)
        if best is None or total > best.cost:
            best = PlanCostEstimate(
                cost=total,
                failure_free_cost=cost_model.path_cost_failure_free(costs),
                dominant_path=path,
                collapsed=collapsed,
            )
    assert best is not None  # a valid plan always has >= 1 path
    return best


@dataclass(frozen=True)
class SearchResult:
    """Outcome of :func:`find_best_ft_plan`."""

    plan: Plan                       #: best plan with ``m(o)`` flags applied
    mat_config: MatConfig            #: the chosen configuration (free ops)
    cost: float                      #: estimated runtime under failures
    estimate: PlanCostEstimate       #: full scoring detail
    pruning: PruningStats            #: search-effort accounting

    @property
    def materialized_ids(self) -> Tuple[int, ...]:
        """Ids of free operators the configuration materializes."""
        return tuple(op_id for op_id, flag in self.mat_config if flag)


def find_best_ft_plan(
    plans: Iterable[Plan],
    stats: ClusterStats,
    pruning: PruningConfig = PruningConfig.none(),
    exact_waste: bool = False,
    preflight_lint: bool = True,
) -> SearchResult:
    """Listing 1: pick the fault-tolerant plan with the cheapest dominant path.

    Parameters
    ----------
    plans:
        Candidate execution plans (e.g. the top-k join orders from the
        first phase of ``enumFTPlans``; a single-element list reproduces
        the paper's per-plan experiments).
    stats:
        Cluster statistics for the cost model.
    pruning:
        Which of the Section 4 rules to apply.  Rule 1 and 2 bind
        operators before configuration enumeration; Rule 3 short-circuits
        path enumeration against the memoized best dominant paths, shared
        across *all* candidate plans as suggested in Section 4.3.
    exact_waste:
        Use the exact wasted-runtime integral instead of ``t(c)/2``.
    preflight_lint:
        Statically validate each candidate plan (structure, costs,
        cost-model invariants -- :mod:`repro.analysis.plan_lint`) before
        enumerating its ``2^n`` configurations; raises
        :class:`~repro.analysis.diagnostics.LintError` on error-severity
        findings.  The check runs once per candidate plan, not per
        configuration, so its cost is negligible next to the search.

    Raises
    ------
    ValueError
        If ``plans`` is empty (or, with ``preflight_lint``, when a
        candidate plan fails validation -- ``LintError`` is a
        ``ValueError``).
    """
    pruning_stats = PruningStats()
    memo = DominantPathMemo()
    best: Optional[SearchResult] = None

    plan_list = list(plans)
    if not plan_list:
        raise ValueError("no candidate plans supplied")
    if preflight_lint:
        # deferred import: repro.analysis imports repro.core, so a
        # top-level import here would be circular.
        from ..analysis.plan_lint import preflight_check

        for plan in plan_list:
            preflight_check(plan, stats)

    for plan in plan_list:
        pruning_stats.configs_total += count_mat_configs(plan)
        pruned_plan = plan
        if pruning.rule1:
            pruned_plan = apply_rule1(
                pruned_plan, stats.const_pipe, stats_out=pruning_stats
            )
        if pruning.rule2:
            pruned_plan = apply_rule2(
                pruned_plan, stats, stats_out=pruning_stats
            )

        for config in enumerate_mat_configs(pruned_plan):
            pruning_stats.configs_enumerated += 1
            candidate = pruned_plan.with_mat_config(config)
            outcome = _score_with_rule3(
                candidate, stats, memo,
                use_rule3=pruning.rule3,
                exact_waste=exact_waste,
                pruning_stats=pruning_stats,
            )
            if outcome is None:
                continue  # Rule 3 proved it cannot beat the best
            memo.record_dominant(
                path_total_costs(outcome.dominant_path), outcome.cost
            )
            if best is None or outcome.cost < best.cost:
                best = SearchResult(
                    plan=candidate,
                    mat_config=config,
                    cost=outcome.cost,
                    estimate=outcome,
                    pruning=pruning_stats,
                )
    assert best is not None
    return best


def _score_with_rule3(
    plan: Plan,
    stats: ClusterStats,
    memo: DominantPathMemo,
    use_rule3: bool,
    exact_waste: bool,
    pruning_stats: PruningStats,
) -> Optional[PlanCostEstimate]:
    """Score one candidate; ``None`` when Rule 3 cuts it off early."""
    collapsed = collapse_plan(plan, const_pipe=stats.const_pipe)
    best: Optional[PlanCostEstimate] = None
    for path in enumerate_paths(collapsed):
        costs = path_total_costs(path)
        if use_rule3:
            decision = memo.should_skip_plan(
                costs, stats, exact_waste=exact_waste
            )
            if decision.estimated is not None:
                pruning_stats.paths_estimated += 1
            if decision.skip:
                pruning_stats.rule3_plan_cutoffs += 1
                return None
            total = decision.estimated
        else:
            total = cost_model.path_cost(costs, stats, exact_waste=exact_waste)
            pruning_stats.paths_estimated += 1
        assert total is not None
        if best is None or total > best.cost:
            best = PlanCostEstimate(
                cost=total,
                failure_free_cost=cost_model.path_cost_failure_free(costs),
                dominant_path=path,
                collapsed=collapsed,
            )
    return best
