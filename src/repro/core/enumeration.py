"""Fault-tolerant plan enumeration (Listing 1 and Section 3.2).

This module glues the pieces together:

* :func:`enumerate_mat_configs` -- the ``2^n`` materialization
  configurations over a plan's free operators,
* :func:`estimate_plan_cost` -- steps 2-4 of the procedure for one
  fault-tolerant plan ``[P, M_P]`` (collapse, enumerate paths, score them,
  pick the dominant one), and
* :func:`find_best_ft_plan` -- Listing 1: search over candidate plans and
  configurations for the fault-tolerant plan with the cheapest dominant
  path, with the pruning rules of Section 4 wired in.

Two engines implement the search:

* ``engine="fast"`` (the default) sweeps configurations through a
  :class:`~repro.core.search_context.SearchContext`: one validation and
  one adjacency precomputation per plan, Gray-code stepping with
  incremental collapse, and dominant-path scoring by dynamic
  programming.  With ``parallelism > 1`` (or an explicit ``shards``
  count) the search routes to the sharded subsystem
  (:mod:`repro.core.shard`): the (join order x Gray-code subspace)
  space is over-partitioned into shards dispatched on a resilient
  process-pool work queue with a cross-process shared best-cost bound,
  so Rule 3 pruning compounds across shards and plans.
* ``engine="naive"`` is the literal Listing 1 transcription -- a full
  plan rebuild and DAG collapse per configuration.  It is kept as the
  correctness oracle: all engines return bit-identical results
  (``tests/test_property_enumeration.py``, ``tests/test_shard.py``),
  the naive engine is just slower (see ``benchmarks/bench_optimizer.py``
  and ``docs/perf.md``).

Large plans make the full ``2^n`` space intractable for *any* engine, so
every engine accepts ``config_limit=K``: only the first ``K``
configurations of the Gray sequence are searched.  The subspace is
defined by *membership*, not visit order -- the naive oracle enumerates
the same ``K`` masks in its usual ascending numeric order -- so results
stay bit-identical across engines at any limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .. import obs
from . import cost_model
from .collapse import CollapsedPlan, collapse_plan
from .cost_model import ClusterStats
from .paths import ExecutionPath, enumerate_paths, path_total_costs
from .plan import Plan
from .pruning import (
    DominantPathMemo,
    PruningConfig,
    PruningStats,
    apply_rule1,
    apply_rule2,
)
from .search_context import SearchContext
from .shard import (
    ShardOutcome,
    config_space,
    sharded_search,
    subspace_mask,
    subspace_params,
)

MatConfig = Tuple[Tuple[int, bool], ...]

#: (cost, plan index, config mask) -- lexicographic comparison reproduces
#: the naive engine's first-wins tie-breaking independent of visit order.
_BestKey = Tuple[float, int, int]


def enumerate_mat_configs(plan: Plan) -> Iterator[MatConfig]:
    """Yield all materialization configurations over ``plan``'s free ops.

    Configurations are tuples of ``(op_id, materialize)`` pairs covering
    exactly the free operators, enumerated in a stable order: free ids
    ascending, bitmask counting up from all-zeros (no materialization) to
    all-ones (materialize everything).  Bound operators are never touched.
    """
    free_ids = plan.free_operators
    for mask in range(2 ** len(free_ids)):
        yield tuple(
            (op_id, bool(mask >> bit & 1))
            for bit, op_id in enumerate(free_ids)
        )


def count_mat_configs(plan: Plan) -> int:
    """``2^n`` for ``n`` free operators."""
    return 2 ** len(plan.free_operators)


@dataclass(frozen=True)
class PlanCostEstimate:
    """Result of scoring one fault-tolerant plan ``[P, M_P]``.

    Attributes
    ----------
    cost:
        ``T_Pt`` of the dominant path -- the plan's estimated runtime
        under mid-query failures.
    failure_free_cost:
        ``R_Pt`` of the dominant path (no failures).
    dominant_path:
        The dominant execution path (collapsed operators).
    collapsed:
        The collapsed plan the estimate was computed on.
    dominant_costs:
        ``t(c)`` of each collapsed operator along the dominant path --
        the vector Rule 3's memo consumes, threaded through so callers
        never recompute ``path_total_costs(dominant_path)``.
    """

    cost: float
    failure_free_cost: float
    dominant_path: ExecutionPath
    collapsed: CollapsedPlan
    dominant_costs: Tuple[float, ...] = ()


def estimate_plan_cost(
    plan: Plan,
    stats: ClusterStats,
    exact_waste: bool = False,
) -> PlanCostEstimate:
    """Steps 2-4 for one fault-tolerant plan: collapse, score, pick dominant.

    The materialization configuration is read from the plan's ``m(o)``
    flags (apply one with :meth:`Plan.with_mat_config` first).
    """
    collapsed = collapse_plan(plan, const_pipe=stats.const_pipe)
    best: Optional[PlanCostEstimate] = None
    for path in enumerate_paths(collapsed):
        costs = path_total_costs(path)
        total = cost_model.path_cost(costs, stats, exact_waste=exact_waste)
        if best is None or total > best.cost:
            best = PlanCostEstimate(
                cost=total,
                failure_free_cost=cost_model.path_cost_failure_free(costs),
                dominant_path=path,
                collapsed=collapsed,
                dominant_costs=tuple(costs),
            )
    assert best is not None  # a valid plan always has >= 1 path
    return best


@dataclass(frozen=True)
class SearchResult:
    """Outcome of :func:`find_best_ft_plan`."""

    plan: Plan                       #: best plan with ``m(o)`` flags applied
    mat_config: MatConfig            #: the chosen configuration (free ops)
    cost: float                      #: estimated runtime under failures
    estimate: PlanCostEstimate       #: full scoring detail
    pruning: PruningStats            #: search-effort accounting

    @property
    def materialized_ids(self) -> Tuple[int, ...]:
        """Ids of free operators the configuration materializes."""
        return tuple(op_id for op_id, flag in self.mat_config if flag)


# ----------------------------------------------------------------------
# preflight linting: cached import + per-process (plan, stats) memo
# ----------------------------------------------------------------------
_preflight_check: Optional[Callable[..., None]] = None
_PREFLIGHT_SEEN: Set[Any] = set()
_PREFLIGHT_CAPACITY = 4096


def _load_preflight_check() -> Callable[..., None]:
    """Import ``preflight_check`` once per process.

    The import stays inside a function because ``repro.analysis`` imports
    ``repro.core`` (a top-level import here would be circular), but it is
    resolved a single time instead of on every search call.
    """
    global _preflight_check
    if _preflight_check is None:
        from ..analysis.plan_lint import preflight_check

        _preflight_check = preflight_check
    return _preflight_check


def plan_fingerprint(plan: Plan) -> Any:
    """Hashable identity of a plan's operators, flags, costs and edges.

    Two plans with equal fingerprints are interchangeable for every
    search in this module: the fingerprint covers exactly the inputs the
    engines read (operator attributes and the edge set), so it doubles
    as the preflight memo key here and as the plan component of the
    advisory cache key in :mod:`repro.serve`.
    """
    operators = tuple(
        (
            op.op_id, op.name, op.runtime_cost, op.mat_cost,
            op.materialize, op.free, op.cardinality, op.base_inputs,
            op.state_ckpt_cost,
        )
        for _, op in sorted(plan.operators.items())
    )
    return operators, tuple(sorted(plan.edges()))


#: backwards-compatible alias (pre-serve callers used the private name)
_plan_fingerprint = plan_fingerprint


def _preflight_once(plan: Plan, stats: ClusterStats) -> None:
    """Run the preflight lint unless this (plan, stats) pair already passed.

    The memo only remembers *clean* pairs, so a failing plan raises on
    every call.  Capacity-capped: once full the memo resets rather than
    growing without bound (re-linting is cheap relative to the search).
    """
    key = (_plan_fingerprint(plan), stats)
    if key in _PREFLIGHT_SEEN:
        return
    _load_preflight_check()(plan, stats)
    if len(_PREFLIGHT_SEEN) >= _PREFLIGHT_CAPACITY:
        _PREFLIGHT_SEEN.clear()
    _PREFLIGHT_SEEN.add(key)


def find_best_ft_plan(
    plans: Iterable[Plan],
    stats: ClusterStats,
    pruning: PruningConfig = PruningConfig.none(),
    exact_waste: bool = False,
    preflight_lint: bool = True,
    engine: str = "fast",
    parallelism: int = 1,
    shards: Optional[int] = None,
    config_limit: Optional[int] = None,
    shard_observer: Optional[
        Callable[[Sequence[ShardOutcome]], None]
    ] = None,
) -> SearchResult:
    """Listing 1: pick the fault-tolerant plan with the cheapest dominant path.

    Parameters
    ----------
    plans:
        Candidate execution plans (e.g. the top-k join orders from the
        first phase of ``enumFTPlans``; a single-element list reproduces
        the paper's per-plan experiments).
    stats:
        Cluster statistics for the cost model.
    pruning:
        Which of the Section 4 rules to apply.  Rule 1 and 2 bind
        operators before configuration enumeration; Rule 3 short-circuits
        scoring against the best dominant cost seen so far, shared
        across *all* candidate plans as suggested in Section 4.3.
    exact_waste:
        Use the exact wasted-runtime integral instead of ``t(c)/2``.
    preflight_lint:
        Statically validate each candidate plan (structure, costs,
        cost-model invariants -- :mod:`repro.analysis.plan_lint`) before
        enumerating its ``2^n`` configurations; raises
        :class:`~repro.analysis.diagnostics.LintError` on error-severity
        findings.  The check runs once per *distinct* ``(plan, stats)``
        pair per process (memoized), so its cost is negligible next to
        the search.
    engine:
        ``"fast"`` (default) or ``"naive"``.  Both return bit-identical
        results; the naive engine is the literal per-config
        rebuild-and-collapse transcription kept as the correctness
        oracle.
    parallelism:
        Scan the search space with ``N`` worker processes
        (``engine="fast"`` only) via the sharded subsystem
        (:func:`repro.core.shard.sharded_search`).  Workers exchange
        the best dominant cost through a shared bound cell, so Rule 3
        keeps compounding across shards and plans; the deterministic
        reduce makes results identical to the serial search.
    shards:
        Partition the (plan x config subspace) space into this many
        shards (default ``4 * parallelism``); more shards than workers
        gives work-queue stealing its granularity.  ``shards > 1`` with
        ``parallelism=1`` scans the same shards in-process -- useful for
        determinism replays -- and still uses the tuned
        :class:`~repro.core.shard.ShardKernel`.
    config_limit:
        Search only the first ``config_limit`` configurations of each
        plan's Gray sequence (the same subspace in every engine).  Makes
        plans with dozens of free operators tractable; ``None`` (the
        default) searches the full ``2^n`` space.
    shard_observer:
        Callback receiving the ordered
        :class:`~repro.core.shard.ShardOutcome` list after a sharded
        scan's reduce (the :class:`~repro.core.shard.ShardSizer`
        feedback hook).  Only fires when the search actually routes to
        the sharded subsystem (``parallelism > 1`` or ``shards > 1``);
        it runs after the result is final and cannot affect it.

    Raises
    ------
    ValueError
        If ``plans`` is empty, ``engine`` is unknown, ``parallelism`` /
        ``shards`` / ``config_limit`` are invalid (or parallelism is
        combined with the naive engine), or -- with ``preflight_lint`` --
        when a candidate plan fails validation (``LintError`` is a
        ``ValueError``).
    """
    plan_list = list(plans)
    if not plan_list:
        raise ValueError("no candidate plans supplied")
    if engine not in ("fast", "naive"):
        raise ValueError(f"unknown search engine {engine!r} "
                         "(expected 'fast' or 'naive')")
    if parallelism < 1:
        raise ValueError("parallelism must be >= 1")
    if shards is not None and shards < 1:
        raise ValueError("shards must be >= 1")
    if config_limit is not None and config_limit < 1:
        raise ValueError("config_limit must be >= 1")
    if engine == "naive" and (parallelism > 1 or shards is not None):
        raise ValueError("parallelism/shards require engine='fast' "
                         "(the naive oracle is single-process)")
    if preflight_lint:
        for plan in plan_list:
            _preflight_once(plan, stats)

    with obs.span("search", engine=engine, plans=len(plan_list),
                  parallelism=parallelism, shards=shards or 1):
        if engine == "naive":
            result = _find_best_naive(
                plan_list, stats, pruning, exact_waste, config_limit
            )
        elif parallelism > 1 or (shards is not None and shards > 1):
            best_key, pruning_stats = sharded_search(
                plan_list, stats, pruning, exact_waste=exact_waste,
                parallelism=parallelism, shards=shards,
                config_limit=config_limit,
                shard_observer=shard_observer,
            )
            result = _rebuild_result(
                plan_list, best_key, stats, pruning, exact_waste,
                pruning_stats,
            )
        else:
            result = _find_best_fast(
                plan_list, stats, pruning, exact_waste, config_limit
            )
        _record_search_counters(result.pruning)
    return result


def _record_search_counters(stats: PruningStats) -> None:
    """Fold one search's pruning accounting into the observability layer.

    No-op while observability is disabled.  Counters *accumulate* across
    searches within a recording (e.g. one increment per scheme configure
    in a campaign).
    """
    recorder = obs.get_recorder()
    if recorder is None:
        return
    recorder.add("search.runs")
    recorder.add("search.configs_total", stats.configs_total)
    recorder.add("search.configs_enumerated", stats.configs_enumerated)
    recorder.add("search.configs_pruned", stats.configs_pruned)
    recorder.add("search.paths_estimated", stats.paths_estimated)
    recorder.add("search.rule1.marked", stats.rule1_marked)
    recorder.add("search.rule2.marked", stats.rule2_marked)
    recorder.add("search.rule3.plan_cutoffs", stats.rule3_plan_cutoffs)


def _record_memo_counters(recorder: Optional[Any],
                          memo: DominantPathMemo) -> None:
    """Fold a ``DominantPathMemo``'s effectiveness counters into ``obs``."""
    if recorder is None:
        return
    recorder.add("search.rule3.cheap_skips", memo.cheap_skips)
    recorder.add("search.rule3.dominance_skips", memo.dominance_skips)
    recorder.add("search.rule3.estimated_skips", memo.estimated_skips)
    recorder.add("search.rule3.memo_misses", memo.misses)
    recorder.add("search.rule3.memo_records", memo.records)


# ----------------------------------------------------------------------
# the naive engine (correctness oracle): rebuild + collapse per config
# ----------------------------------------------------------------------
def _subspace_masks(plan: Plan, config_limit: Optional[int]) -> Iterable[int]:
    """The masks a limited search visits, in naive (ascending) order.

    The searched subspace is a windowed Gray sequence
    (:func:`repro.core.shard.subspace_params`) -- the natural shape for
    the incremental engines -- but membership is what defines it: here
    the same masks come back sorted ascending so the naive engine's
    first-wins tie-break remains the lexicographic ``(cost, plan,
    mask)`` minimum all engines share.
    """
    count, shift, pinned = subspace_params(
        len(plan.free_operators), config_limit
    )
    if shift == 0 and pinned == 0:
        return range(count)
    return sorted(
        subspace_mask(position, shift, pinned)
        for position in range(count)
    )


def _find_best_naive(
    plan_list: Sequence[Plan],
    stats: ClusterStats,
    pruning: PruningConfig,
    exact_waste: bool,
    config_limit: Optional[int] = None,
) -> SearchResult:
    pruning_stats = PruningStats()
    memo = DominantPathMemo()
    best: Optional[SearchResult] = None

    for plan_index, plan in enumerate(plan_list):
        with obs.span("search.plan", plan=plan_index, engine="naive"):
            pruning_stats.configs_total += config_space(plan, config_limit)
            pruned_plan = plan
            if pruning.rule1:
                pruned_plan = apply_rule1(
                    pruned_plan, stats.const_pipe, stats_out=pruning_stats
                )
            if pruning.rule2:
                pruned_plan = apply_rule2(
                    pruned_plan, stats, stats_out=pruning_stats
                )

            free_ids = pruned_plan.free_operators
            for mask in _subspace_masks(pruned_plan, config_limit):
                config = tuple(
                    (op_id, bool(mask >> bit & 1))
                    for bit, op_id in enumerate(free_ids)
                )
                pruning_stats.configs_enumerated += 1
                candidate = pruned_plan.with_mat_config(config)
                outcome = _score_with_rule3(
                    candidate, stats, memo,
                    use_rule3=pruning.rule3,
                    exact_waste=exact_waste,
                    pruning_stats=pruning_stats,
                )
                if outcome is None and best is None:
                    # Rule 3 can only cut off the first-ever
                    # configuration when its estimate and bestT are both
                    # infinite (some operator is unrecoverable at this
                    # MTBF); score it in full so the search still
                    # returns the first configuration, exactly like the
                    # fast engine, which never skips before a finite
                    # best exists.
                    outcome = _score_with_rule3(
                        candidate, stats, memo,
                        use_rule3=False,
                        exact_waste=exact_waste,
                        pruning_stats=pruning_stats,
                    )
                if outcome is None:
                    continue  # Rule 3 proved it cannot beat the best
                memo.record_dominant(outcome.dominant_costs, outcome.cost)
                if best is None or outcome.cost < best.cost:
                    best = SearchResult(
                        plan=candidate,
                        mat_config=config,
                        cost=outcome.cost,
                        estimate=outcome,
                        pruning=pruning_stats,
                    )
    _record_memo_counters(obs.get_recorder(), memo)
    assert best is not None
    return best


def _score_with_rule3(
    plan: Plan,
    stats: ClusterStats,
    memo: DominantPathMemo,
    use_rule3: bool,
    exact_waste: bool,
    pruning_stats: PruningStats,
) -> Optional[PlanCostEstimate]:
    """Score one candidate; ``None`` when Rule 3 cuts it off early."""
    collapsed = collapse_plan(plan, const_pipe=stats.const_pipe)
    best: Optional[PlanCostEstimate] = None
    for path in enumerate_paths(collapsed):
        costs = path_total_costs(path)
        if use_rule3:
            decision = memo.should_skip_plan(
                costs, stats, exact_waste=exact_waste
            )
            if decision.estimated is not None:
                pruning_stats.paths_estimated += 1
            if decision.skip:
                pruning_stats.rule3_plan_cutoffs += 1
                return None
            total = decision.estimated
        else:
            total = cost_model.path_cost(costs, stats, exact_waste=exact_waste)
            pruning_stats.paths_estimated += 1
        assert total is not None
        if best is None or total > best.cost:
            best = PlanCostEstimate(
                cost=total,
                failure_free_cost=cost_model.path_cost_failure_free(costs),
                dominant_path=path,
                collapsed=collapsed,
                dominant_costs=tuple(costs),
            )
    return best


# ----------------------------------------------------------------------
# the fast engine: search contexts, Gray-code stepping, optional fan-out
# ----------------------------------------------------------------------
class _SharedBest:
    """Best dominant cost so far, optionally shared across processes.

    Wraps a local :class:`DominantPathMemo` whose ``best_cost`` is the
    Rule 3 bound; in parallel mode a ``multiprocessing.Value`` cell
    carries the bound between workers, folded into the memo via
    :meth:`DominantPathMemo.observe_external_best` on every read.
    """

    def __init__(self, cell: Optional[Any] = None) -> None:
        self.memo = DominantPathMemo()
        self._cell = cell

    def get(self) -> float:
        if self._cell is not None:
            with self._cell.get_lock():
                external = self._cell.value
            self.memo.observe_external_best(external)
        return self.memo.best_cost

    def update(self, cost: float) -> None:
        if cost < self.memo.best_cost:
            self.memo.observe_external_best(cost)
            if self._cell is not None:
                with self._cell.get_lock():
                    if cost < self._cell.value:
                        self._cell.value = cost


def _fast_scan_plan(
    plan: Plan,
    plan_index: int,
    stats: ClusterStats,
    pruning: PruningConfig,
    exact_waste: bool,
    pruning_stats: PruningStats,
    shared: _SharedBest,
    config_limit: Optional[int] = None,
) -> Optional[_BestKey]:
    """Sweep one plan's configurations; return its best key (or ``None``).

    Rule 3's cheap bound here is the failure-free dominant runtime
    ``R_max`` versus the best dominant cost ``bestT``: ``R_max > bestT``
    proves the configuration cannot win (``T >= R`` per path).  On an
    exact tie the configuration is still scored, so the
    ``(cost, plan, mask)`` tie-break matches the naive engine's
    first-wins behaviour bit for bit.  ``R_max`` and ``T_max`` come from
    the fused :meth:`SearchContext.dominant_scores` pass -- one DP
    traversal per configuration instead of two.
    """
    recorder = obs.get_recorder()
    with obs.span("search.plan", plan=plan_index, engine="fast"):
        pruning_stats.configs_total += config_space(plan, config_limit)
        pruned_plan = plan
        if pruning.rule1:
            pruned_plan = apply_rule1(
                pruned_plan, stats.const_pipe, stats_out=pruning_stats
            )
        if pruning.rule2:
            pruned_plan = apply_rule2(
                pruned_plan, stats, stats_out=pruning_stats
            )

        context = SearchContext(pruned_plan, stats,
                                exact_waste=exact_waste)
        count, shift, pinned = subspace_params(
            len(context.free_ids), config_limit
        )
        best: Optional[_BestKey] = None
        for position in range(count):
            # consecutive positions differ in one window bit, so this is
            # the same single-flip stepping as iter_masks(order="gray")
            mask = subspace_mask(position, shift, pinned)
            context.set_mask(mask)
            pruning_stats.configs_enumerated += 1
            if pruning.rule3:
                bound = shared.get()
                r_max, total = context.dominant_scores()
                if r_max >= bound:
                    pruning_stats.rule3_plan_cutoffs += 1
                    if r_max > bound:
                        continue
            else:
                total = context.dominant_cost()
            pruning_stats.paths_estimated += 1
            key = (total, plan_index, mask)
            if best is None or key < best:
                best = key
            shared.update(total)
        if recorder is not None:
            # fold the context's tallies in once per plan, not per config
            for name, value in context.counters().items():
                recorder.add(name, value)
    return best


def _rebuild_result(
    plan_list: Sequence[Plan],
    best_key: _BestKey,
    stats: ClusterStats,
    pruning: PruningConfig,
    exact_waste: bool,
    pruning_stats: PruningStats,
) -> SearchResult:
    """Reconstruct the winning ``SearchResult`` from its ``(cost, plan,
    mask)`` key by re-scoring just that one configuration through the
    naive pipeline -- the returned estimate (cost, dominant path,
    collapsed plan) is therefore byte-identical to the naive engine's."""
    _, plan_index, mask = best_key
    pruned_plan = plan_list[plan_index]
    if pruning.rule1:
        pruned_plan = apply_rule1(pruned_plan, stats.const_pipe)
    if pruning.rule2:
        pruned_plan = apply_rule2(pruned_plan, stats)
    config = tuple(
        (op_id, bool(mask >> bit & 1))
        for bit, op_id in enumerate(pruned_plan.free_operators)
    )
    candidate = pruned_plan.with_mat_config(config)
    estimate = estimate_plan_cost(candidate, stats, exact_waste=exact_waste)
    return SearchResult(
        plan=candidate,
        mat_config=config,
        cost=estimate.cost,
        estimate=estimate,
        pruning=pruning_stats,
    )


def _find_best_fast(
    plan_list: Sequence[Plan],
    stats: ClusterStats,
    pruning: PruningConfig,
    exact_waste: bool,
    config_limit: Optional[int] = None,
) -> SearchResult:
    """The serial fast engine: one :class:`SearchContext` sweep per plan.

    Parallel and sharded scans live in :mod:`repro.core.shard` (routed by
    :func:`find_best_ft_plan`); this path remains the simple, auditable
    reference the sharded kernel is certified against.
    """
    pruning_stats = PruningStats()
    best_key: Optional[_BestKey] = None
    shared = _SharedBest()
    for plan_index, plan in enumerate(plan_list):
        local = _fast_scan_plan(
            plan, plan_index, stats, pruning, exact_waste,
            pruning_stats, shared, config_limit,
        )
        if local is not None and (best_key is None or local < best_key):
            best_key = local
    assert best_key is not None
    return _rebuild_result(
        plan_list, best_key, stats, pruning, exact_waste, pruning_stats
    )
