"""The fault-tolerance schemes compared in the paper (Section 5.2).

Each scheme decides (a) which intermediates to materialize and (b) the
recovery granularity used when a mid-query failure occurs:

* ``all-mat`` -- Hadoop-style: every intermediate is materialized; failed
  sub-plans restart from the last materialized input (fine-grained).
* ``no-mat (lineage)`` -- Spark/Shark-style: nothing is materialized;
  lineage re-computes the failed node's sub-plan from the sources
  (fine-grained, but the whole lineage chain re-runs).
* ``no-mat (restart)`` -- parallel-database-style: nothing is
  materialized; any failure restarts the complete query (coarse-grained).
* ``cost-based`` -- this paper: materialize the subset chosen by the cost
  model; fine-grained recovery.

A scheme is a small strategy object: ``configure(plan, stats)`` returns the
plan with its materialization flags set, and ``recovery`` names the
recovery behaviour the simulated engine must use.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional

from .cost_model import ClusterStats
from .enumeration import SearchResult, find_best_ft_plan
from .plan import Plan
from .pruning import PruningConfig


class RecoveryMode(enum.Enum):
    """How the engine reacts to a mid-query failure."""

    #: restart only the failed node's current collapsed sub-plan; its
    #: materialized inputs survive on fault-tolerant storage.
    FINE_GRAINED = "fine-grained"
    #: restart the complete query from scratch.
    RESTART_QUERY = "restart-query"


@dataclass(frozen=True)
class ConfiguredPlan:
    """A plan whose materialization flags a scheme has fixed."""

    plan: Plan
    recovery: RecoveryMode
    scheme: str
    #: populated by the cost-based scheme only
    search: Optional[SearchResult] = None
    #: intra-operator checkpointing chosen per collapsed-group anchor
    #: (the mid-operator extension; see repro.core.checkpointing)
    op_checkpoints: Mapping[int, "CheckpointSpec"] = \
        field(default_factory=dict)


class FaultToleranceScheme:
    """Base class for the four schemes; subclasses set ``name``."""

    name: str = "abstract"

    def configure(self, plan: Plan, stats: ClusterStats) -> ConfiguredPlan:
        raise NotImplementedError

    def _uniform_config(self, plan: Plan, materialize: bool) -> Plan:
        config = {op_id: materialize for op_id in plan.free_operators}
        return plan.with_mat_config(config)


class AllMat(FaultToleranceScheme):
    """Materialize every free intermediate (Hadoop)."""

    name = "all-mat"

    def configure(self, plan: Plan, stats: ClusterStats) -> ConfiguredPlan:
        return ConfiguredPlan(
            plan=self._uniform_config(plan, materialize=True),
            recovery=RecoveryMode.FINE_GRAINED,
            scheme=self.name,
        )


class NoMatLineage(FaultToleranceScheme):
    """Materialize nothing; recover sub-plans via lineage (Spark/Shark)."""

    name = "no-mat (lineage)"

    def configure(self, plan: Plan, stats: ClusterStats) -> ConfiguredPlan:
        return ConfiguredPlan(
            plan=self._uniform_config(plan, materialize=False),
            recovery=RecoveryMode.FINE_GRAINED,
            scheme=self.name,
        )


class NoMatRestart(FaultToleranceScheme):
    """Materialize nothing; restart the whole query (parallel database)."""

    name = "no-mat (restart)"

    def configure(self, plan: Plan, stats: ClusterStats) -> ConfiguredPlan:
        return ConfiguredPlan(
            plan=self._uniform_config(plan, materialize=False),
            recovery=RecoveryMode.RESTART_QUERY,
            scheme=self.name,
        )


class CostBased(FaultToleranceScheme):
    """This paper's scheme: cost-model-selected materialization subset."""

    name = "cost-based"

    def __init__(
        self,
        pruning: PruningConfig = PruningConfig.all(),
        exact_waste: bool = False,
        engine: str = "fast",
        parallelism: int = 1,
        preflight_lint: bool = True,
        shards: "int | None" = None,
        config_limit: "int | None" = None,
    ) -> None:
        self.pruning = pruning
        self.exact_waste = exact_waste
        self.engine = engine
        self.parallelism = parallelism
        # False skips the search's static pre-check -- used by callers
        # (e.g. simulation campaigns) that already linted the plan once
        # up front instead of once per worker process
        self.preflight_lint = preflight_lint
        self.shards = shards
        self.config_limit = config_limit

    def configure(self, plan: Plan, stats: ClusterStats) -> ConfiguredPlan:
        result = find_best_ft_plan(
            [plan], stats,
            pruning=self.pruning,
            exact_waste=self.exact_waste,
            preflight_lint=self.preflight_lint,
            engine=self.engine,
            parallelism=self.parallelism,
            shards=self.shards,
            config_limit=self.config_limit,
        )
        return ConfiguredPlan(
            plan=result.plan,
            recovery=RecoveryMode.FINE_GRAINED,
            scheme=self.name,
            search=result,
        )


class CostBasedWithOpCheckpoints(CostBased):
    """Cost-based materialization plus mid-operator checkpointing.

    The paper's Section 7 extension: after the materialization
    configuration is chosen, every collapsed group whose members support
    state snapshots additionally checkpoints its progress at the
    Young-Daly interval whenever the chunked estimate beats the plain
    one -- so mid-operator failures resume from the last snapshot rather
    than re-running the whole sub-plan.
    """

    name = "cost-based (+op-ckpt)"

    def configure(self, plan: Plan, stats: ClusterStats) -> ConfiguredPlan:
        from .checkpointing import plan_operator_checkpoints

        base = super().configure(plan, stats)
        checkpoints = plan_operator_checkpoints(
            base.plan, stats, exact_waste=self.exact_waste
        )
        return ConfiguredPlan(
            plan=base.plan,
            recovery=RecoveryMode.FINE_GRAINED,
            scheme=self.name,
            search=base.search,
            op_checkpoints=checkpoints,
        )


#: The scheme line-up of the paper's evaluation, in its reporting order.
def standard_schemes(
    engine: str = "fast", parallelism: int = 1,
    preflight_lint: bool = True,
    shards: "int | None" = None,
    config_limit: "int | None" = None,
) -> "list[FaultToleranceScheme]":
    """``engine``/``parallelism``/``shards``/``config_limit``/
    ``preflight_lint`` configure the cost-based search only."""
    return [
        AllMat(),
        NoMatLineage(),
        NoMatRestart(),
        CostBased(engine=engine, parallelism=parallelism,
                  preflight_lint=preflight_lint,
                  shards=shards, config_limit=config_limit),
    ]


def scheme_by_name(name: str) -> FaultToleranceScheme:
    """Look up a scheme by its paper name (e.g. ``"cost-based"``)."""
    for scheme in standard_schemes():
        if scheme.name == name:
            return scheme
    raise KeyError(f"unknown fault-tolerance scheme: {name!r}")
