"""DAG-structured parallel execution plans.

This module defines the plan representation used throughout the library: a
directed acyclic graph of :class:`Operator` nodes, each annotated with the
two cost estimates the paper's cost model consumes (Section 2.1):

* ``runtime_cost`` -- ``tr(o)``, the estimated accumulated execution cost of
  the operator under partition-parallel execution, and
* ``mat_cost`` -- ``tm(o)``, the estimated accumulated cost of materializing
  the operator's output to a fault-tolerant storage medium.

Operators additionally carry the two flags of the paper's terminology
(Table 1): ``materialize`` (``m(o)``) and ``free`` (``f(o)``).  Operators
that are *bound* (``f(o) = 0``) are excluded from the enumeration of
materialization configurations; their ``m(o)`` value is fixed, e.g. because
the engine always materializes repartition outputs, or because an operator's
output cannot be checkpointed at all.

Costs are plain floats in engine cost units.  With ``CONST_cost = 1`` (the
setting used in all of the paper's experiments) cost units equal seconds.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


class PlanError(ValueError):
    """Raised when a plan or operator is structurally invalid."""


@dataclass(frozen=True)
class Operator:
    """A single operator of a DAG-structured execution plan.

    Parameters
    ----------
    op_id:
        Unique identifier within the plan.  Any hashable integer works; the
        TPC-H plan builders use small consecutive integers so that plans
        mirror the paper's figures (e.g. operators 1-5 of Figure 9).
    name:
        Human-readable label, e.g. ``"HashJoin(L,O)"``.
    runtime_cost:
        ``tr(o)`` -- estimated execution cost (cost units, >= 0).
    mat_cost:
        ``tm(o)`` -- estimated materialization cost (cost units, >= 0).
    materialize:
        ``m(o)`` -- whether the operator's output is materialized.
    free:
        ``f(o)`` -- whether the enumeration may flip ``materialize``.
    cardinality:
        Optional estimated output cardinality (rows); informational, used by
        the statistics layer to derive costs.
    base_inputs:
        Number of *base tables* the operator reads directly (scans folded
        into the operator, per the sub-plan convention -- see
        :mod:`repro.tpch.queries`).  Base tables are durable and never
        checkpointed, but they count towards the operator's arity: a join
        with one plan input and one base-table input is binary, which
        matters for pruning Rule 2's unary-parent requirement.
    state_ckpt_cost:
        Cost of snapshotting the operator's in-flight state once (for the
        mid-operator checkpointing extension,
        :mod:`repro.core.checkpointing`).  ``None`` -- the default --
        means the operator's state cannot be captured.
    """

    op_id: int
    name: str
    runtime_cost: float
    mat_cost: float
    materialize: bool = False
    free: bool = True
    cardinality: Optional[int] = None
    base_inputs: int = 0
    state_ckpt_cost: Optional[float] = None

    def __post_init__(self) -> None:
        if self.runtime_cost < 0:
            raise PlanError(f"operator {self.op_id}: negative runtime_cost")
        if self.mat_cost < 0:
            raise PlanError(f"operator {self.op_id}: negative mat_cost")
        if self.base_inputs < 0:
            raise PlanError(f"operator {self.op_id}: negative base_inputs")
        if self.state_ckpt_cost is not None and self.state_ckpt_cost < 0:
            raise PlanError(
                f"operator {self.op_id}: negative state_ckpt_cost"
            )

    @property
    def total_cost(self) -> float:
        """``t(o) = tr(o) + tm(o) * m(o)`` (Table 1)."""
        return self.runtime_cost + (self.mat_cost if self.materialize else 0.0)

    def as_bound(self, materialize: bool) -> "Operator":
        """Return a copy that is bound (``f(o) = 0``) to a fixed ``m(o)``."""
        return replace(self, materialize=materialize, free=False)

    def with_materialize(self, materialize: bool) -> "Operator":
        """Return a copy with ``m(o)`` set; requires the operator be free."""
        if not self.free and materialize != self.materialize:
            raise PlanError(
                f"operator {self.op_id} ({self.name}) is bound; "
                "cannot change its materialization flag"
            )
        return replace(self, materialize=materialize)


@dataclass
class Plan:
    """A DAG-structured execution plan.

    Edges are directed from producers to consumers: an edge ``(u, v)`` means
    operator ``v`` consumes the output of operator ``u``.  The plan may have
    several sources (operators with no producers, e.g. scans) and several
    sinks (operators whose output leaves the plan, e.g. the two outer
    queries of the paper's Q2C).
    """

    operators: Dict[int, Operator] = field(default_factory=dict)
    #: adjacency: producer id -> sorted list of consumer ids
    _consumers: Dict[int, List[int]] = field(default_factory=dict)
    #: reverse adjacency: consumer id -> sorted list of producer ids
    _producers: Dict[int, List[int]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_operator(self, operator: Operator) -> Operator:
        """Insert ``operator``; its ``op_id`` must be unused."""
        if operator.op_id in self.operators:
            raise PlanError(f"duplicate operator id {operator.op_id}")
        self.operators[operator.op_id] = operator
        self._consumers.setdefault(operator.op_id, [])
        self._producers.setdefault(operator.op_id, [])
        return operator

    def add_edge(self, producer_id: int, consumer_id: int) -> None:
        """Connect ``producer -> consumer``; both must already exist."""
        for op_id in (producer_id, consumer_id):
            if op_id not in self.operators:
                raise PlanError(f"unknown operator id {op_id}")
        if producer_id == consumer_id:
            raise PlanError(f"self edge on operator {producer_id}")
        if consumer_id in self._consumers[producer_id]:
            raise PlanError(f"duplicate edge {producer_id} -> {consumer_id}")
        self._consumers[producer_id].append(consumer_id)
        self._producers[consumer_id].append(producer_id)
        if self._has_cycle():
            # roll back so the plan stays usable
            self._consumers[producer_id].remove(consumer_id)
            self._producers[consumer_id].remove(producer_id)
            raise PlanError(
                f"edge {producer_id} -> {consumer_id} would create a cycle"
            )

    @classmethod
    def from_edges(
        cls,
        operators: Iterable[Operator],
        edges: Iterable[Tuple[int, int]],
    ) -> "Plan":
        """Build a plan from an operator list and producer->consumer edges."""
        plan = cls()
        for operator in operators:
            plan.add_operator(operator)
        for producer_id, consumer_id in edges:
            plan.add_edge(producer_id, consumer_id)
        return plan

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    def consumers(self, op_id: int) -> List[int]:
        """Ids of operators consuming the output of ``op_id``."""
        return list(self._consumers[op_id])

    def producers(self, op_id: int) -> List[int]:
        """Ids of operators whose output ``op_id`` consumes."""
        return list(self._producers[op_id])

    def arity(self, op_id: int) -> int:
        """Total inputs of an operator: plan producers + base tables."""
        return len(self._producers[op_id]) + self.operators[op_id].base_inputs

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all (producer, consumer) edges."""
        for producer_id, consumer_ids in self._consumers.items():
            for consumer_id in consumer_ids:
                yield (producer_id, consumer_id)

    @property
    def sources(self) -> List[int]:
        """Operators with no producers (scans)."""
        return [op_id for op_id in self.operators if not self._producers[op_id]]

    @property
    def sinks(self) -> List[int]:
        """Operators with no consumers (plan outputs)."""
        return [op_id for op_id in self.operators if not self._consumers[op_id]]

    @property
    def free_operators(self) -> List[int]:
        """Ids of free operators (``f(o) = 1``) in topological order."""
        return [op_id for op_id in self.topological_order()
                if self.operators[op_id].free]

    def __len__(self) -> int:
        return len(self.operators)

    def __contains__(self, op_id: int) -> bool:
        return op_id in self.operators

    def __getitem__(self, op_id: int) -> Operator:
        return self.operators[op_id]

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def topological_order(self) -> List[int]:
        """Operator ids in a deterministic topological order (Kahn).

        The ready frontier is a min-heap, so the smallest-id operator is
        released first -- the same order the previous sort-the-frontier
        implementation produced, at ``O(V log V + E)`` instead of
        ``O(V^2 log V)``.
        """
        in_degree = {op_id: len(self._producers[op_id]) for op_id in self.operators}
        ready = [op_id for op_id, deg in in_degree.items() if deg == 0]
        heapq.heapify(ready)
        order: List[int] = []
        while ready:
            op_id = heapq.heappop(ready)
            order.append(op_id)
            for consumer_id in self._consumers[op_id]:
                in_degree[consumer_id] -= 1
                if in_degree[consumer_id] == 0:
                    heapq.heappush(ready, consumer_id)
        if len(order) != len(self.operators):
            raise PlanError("plan contains a cycle")
        return order

    def _has_cycle(self) -> bool:
        try:
            self.topological_order()
        except PlanError:
            return True
        return False

    def ancestors(self, op_id: int) -> List[int]:
        """All transitive producers of ``op_id`` (excluding itself)."""
        seen: List[int] = []
        stack = list(self._producers[op_id])
        visited = set()
        while stack:
            current = stack.pop()
            if current in visited:
                continue
            visited.add(current)
            seen.append(current)
            stack.extend(self._producers[current])
        return sorted(seen)

    def descendants(self, op_id: int) -> List[int]:
        """All transitive consumers of ``op_id`` (excluding itself)."""
        seen: List[int] = []
        stack = list(self._consumers[op_id])
        visited = set()
        while stack:
            current = stack.pop()
            if current in visited:
                continue
            visited.add(current)
            seen.append(current)
            stack.extend(self._consumers[current])
        return sorted(seen)

    # ------------------------------------------------------------------
    # materialization configurations
    # ------------------------------------------------------------------
    def with_mat_config(self, mat_config: "MatConfigLike") -> "Plan":
        """Return a copy of the plan with ``m(o)`` set per ``mat_config``.

        ``mat_config`` maps free-operator ids to booleans.  Bound operators
        keep their fixed flag; supplying a bound operator id with a
        *different* flag raises :class:`PlanError`.
        """
        mapping = dict(mat_config)
        new_plan = Plan()
        for op_id, operator in self.operators.items():
            if op_id in mapping:
                operator = operator.with_materialize(mapping.pop(op_id))
            new_plan.add_operator(operator)
        if mapping:
            raise PlanError(f"unknown operator ids in config: {sorted(mapping)}")
        for producer_id, consumer_id in self.edges():
            new_plan.add_edge(producer_id, consumer_id)
        return new_plan

    def mat_config(self) -> Dict[int, bool]:
        """The current materialization configuration ``M_P`` as a dict."""
        return {op_id: op.materialize for op_id, op in self.operators.items()}

    # ------------------------------------------------------------------
    # aggregate costs
    # ------------------------------------------------------------------
    @property
    def total_runtime_cost(self) -> float:
        """Sum of ``tr(o)`` over all operators (no parallelism model)."""
        return sum(op.runtime_cost for op in self.operators.values())

    @property
    def total_mat_cost(self) -> float:
        """Sum of ``tm(o)`` over the operators currently materializing."""
        return sum(op.mat_cost for op in self.operators.values() if op.materialize)

    def validate(self) -> None:
        """Check structural invariants; raise :class:`PlanError` on failure."""
        if not self.operators:
            raise PlanError("plan has no operators")
        self.topological_order()  # raises on cycles
        for op_id in self.operators:
            for consumer_id in self._consumers[op_id]:
                if op_id not in self._producers[consumer_id]:
                    raise PlanError("inconsistent adjacency lists")

    def pretty(self) -> str:
        """Multi-line human-readable rendering in topological order."""
        lines = []
        for op_id in self.topological_order():
            operator = self.operators[op_id]
            flags = []
            flags.append("m=1" if operator.materialize else "m=0")
            flags.append("free" if operator.free else "bound")
            inputs = ",".join(str(p) for p in self._producers[op_id]) or "-"
            lines.append(
                f"[{op_id}] {operator.name:<24s} tr={operator.runtime_cost:<8g} "
                f"tm={operator.mat_cost:<8g} {' '.join(flags)} inputs={inputs}"
            )
        return "\n".join(lines)


# A materialization configuration can be provided as any mapping / iterable
# of (op_id, flag) pairs.
MatConfigLike = Iterable[Tuple[int, bool]]


def linear_plan(costs: Sequence[Tuple[float, float]],
                names: Optional[Sequence[str]] = None) -> Plan:
    """Build a pipeline plan ``1 -> 2 -> ... -> n`` from (tr, tm) pairs.

    Convenience used pervasively in tests and examples.
    """
    operators = []
    for index, (runtime_cost, mat_cost) in enumerate(costs, start=1):
        name = names[index - 1] if names else f"op{index}"
        operators.append(
            Operator(op_id=index, name=name,
                     runtime_cost=runtime_cost, mat_cost=mat_cost)
        )
    edges = [(index, index + 1) for index in range(1, len(operators))]
    return Plan.from_edges(operators, edges)
