"""Failure-model mathematics (Section 1 footnote and Section 2.2).

The paper assumes exponential inter-arrival times between failures with
independent failures per node, i.e. failures form a Poisson process.  For a
query running for time ``t`` on ``n`` nodes with a per-node mean time
between failures ``MTBF``:

* the probability that a *single* node sees no failure in ``t`` is
  ``e^(-t / MTBF)``;
* the probability that the whole cluster sees no failure is
  ``P(N^n_t = 0) = e^(-t * n / MTBF)``; and
* the probability of at least one mid-query failure is
  ``P(N^n_t > 0) = 1 - e^(-t * n / MTBF)`` (Figure 1).

These helpers are deliberately free of any engine/cost-unit concerns; they
take plain times in whatever unit the caller uses consistently.
"""

from __future__ import annotations

import math
from typing import Sequence

#: Convenience time constants (seconds).
MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR
WEEK = 7 * DAY
MONTH = 30 * DAY


def success_probability(runtime: float, mtbf: float, nodes: int = 1) -> float:
    """Probability that no failure occurs during ``runtime``.

    ``P(N^n_t = 0) = e^(-t*n/MTBF)`` for ``nodes`` independent nodes, each
    with per-node mean time between failures ``mtbf``.
    """
    _check_args(runtime, mtbf, nodes)
    return math.exp(-runtime * nodes / mtbf)


def failure_probability(runtime: float, mtbf: float, nodes: int = 1) -> float:
    """Probability of at least one failure during ``runtime`` (Figure 1)."""
    return 1.0 - success_probability(runtime, mtbf, nodes)


def effective_mtbf(mtbf: float, nodes: int) -> float:
    """Cluster-level MTBF when ``nodes`` nodes fail independently.

    The superposition of ``n`` Poisson processes with rate ``1/MTBF`` is a
    Poisson process with rate ``n/MTBF``; the cluster therefore behaves like
    a single node with ``MTBF/n``.  The paper folds this scaling into
    ``MTBF_cost``; we expose it explicitly.
    """
    _check_args(1.0, mtbf, nodes)
    return mtbf / nodes

def expected_failures(runtime: float, mtbf: float, nodes: int = 1) -> float:
    """Expected number of failures within ``runtime`` (Poisson mean)."""
    _check_args(runtime, mtbf, nodes)
    return runtime * nodes / mtbf


def poisson_pmf(k: int, runtime: float, mtbf: float, nodes: int = 1) -> float:
    """``P(N^n_t = k)`` -- probability of exactly ``k`` failures."""
    if k < 0:
        raise ValueError("k must be >= 0")
    _check_args(runtime, mtbf, nodes)
    mean = expected_failures(runtime, mtbf, nodes)
    return math.exp(-mean) * mean**k / math.factorial(k)


def success_curve(
    runtimes: Sequence[float], mtbf: float, nodes: int
) -> "list[float]":
    """Vector form of :func:`success_probability`, used for Figure 1."""
    return [success_probability(t, mtbf, nodes) for t in runtimes]


def _check_args(runtime: float, mtbf: float, nodes: int) -> None:
    if runtime < 0:
        raise ValueError("runtime must be >= 0")
    if mtbf <= 0:
        raise ValueError("mtbf must be > 0")
    if nodes < 1:
        raise ValueError("nodes must be >= 1")
