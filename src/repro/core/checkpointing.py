"""Mid-operator checkpointing (the paper's Section 7 future work).

The cost-based scheme recovers at *operator* granularity: a failure
re-runs the whole collapsed sub-plan.  For very long-running operators
(whose single-attempt success probability is low even on a healthy
cluster) the paper proposes additionally checkpointing the *operator
state* so that mid-operator failures resume from the last snapshot
instead of the sub-plan's start.

This module adds that strategy on top of the existing machinery:

* the classic **Young-Daly** analysis gives the optimal snapshot interval
  ``delta* = sqrt(2 * s * MTBF_cost)`` for a per-snapshot cost ``s``;
* :func:`checkpointed_runtime` prices a collapsed operator that snapshots
  every ``delta`` seconds by applying the paper's own Eq. 6/8 attempt
  model *per chunk* -- a failure now wastes at most one chunk;
* :func:`plan_operator_checkpoints` post-processes a chosen
  materialization configuration: every collapsed group whose members all
  support state snapshots gets chunked whenever that lowers its
  estimated runtime under failures.

Operators advertise snapshot support via
:attr:`repro.core.plan.Operator.state_ckpt_cost` -- the cost of writing
one state snapshot (``None`` = the operator's state cannot be captured,
the default).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .collapse import CollapsedOperator, collapse_plan
from .cost_model import ClusterStats, operator_runtime
from .plan import Plan


@dataclass(frozen=True)
class CheckpointSpec:
    """Intra-operator checkpointing chosen for one collapsed group."""

    interval: float         #: work seconds between snapshots
    snapshot_cost: float    #: cost of writing one snapshot
    estimated_runtime: float  #: T(c) under failures with chunking

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be > 0")
        if self.snapshot_cost < 0:
            raise ValueError("snapshot_cost must be >= 0")

    def chunks_for(self, total_cost: float) -> List[float]:
        """Chunk durations (work only, snapshots excluded) for a share."""
        if total_cost <= 0:
            return [0.0]
        full_chunks = int(total_cost // self.interval)
        chunks = [self.interval] * full_chunks
        remainder = total_cost - full_chunks * self.interval
        if remainder > 1e-12 or not chunks:
            chunks.append(remainder)
        return chunks


def young_daly_interval(snapshot_cost: float, mtbf_cost: float) -> float:
    """The classic first-order optimal checkpoint interval.

    ``delta* = sqrt(2 * s * MTBF)`` balances snapshot overhead against
    expected re-computation; exact for small ``s / MTBF`` and a good
    starting point everywhere.
    """
    if snapshot_cost <= 0:
        raise ValueError("snapshot_cost must be > 0")
    if mtbf_cost <= 0:
        raise ValueError("mtbf_cost must be > 0")
    return math.sqrt(2.0 * snapshot_cost * mtbf_cost)


def checkpointed_runtime(
    total_cost: float,
    snapshot_cost: float,
    stats: ClusterStats,
    interval: Optional[float] = None,
    exact_waste: bool = False,
) -> Tuple[float, float]:
    """Estimated runtime of an operator that snapshots its state.

    The operator's work is cut into chunks of ``interval`` seconds; each
    chunk (plus its snapshot) is priced with the paper's per-operator
    model (Eq. 8), because a failure now only re-runs the current chunk.
    Returns ``(estimated_runtime, interval_used)``; ``interval=None``
    picks the Young-Daly interval clamped to the operator's length.
    """
    if total_cost < 0:
        raise ValueError("total_cost must be >= 0")
    if snapshot_cost <= 0:
        raise ValueError("snapshot_cost must be > 0")
    if interval is None:
        interval = young_daly_interval(snapshot_cost, stats.mtbf_cost)
    interval = min(max(interval, 1e-9), max(total_cost, 1e-9))
    spec = CheckpointSpec(interval=interval, snapshot_cost=snapshot_cost,
                          estimated_runtime=0.0)
    chunks = spec.chunks_for(total_cost)
    runtime = 0.0
    for index, chunk in enumerate(chunks):
        is_last = index == len(chunks) - 1
        # the final chunk needs no extra snapshot: the operator's normal
        # output handling (pipelining or materialization) takes over
        chunk_cost = chunk + (0.0 if is_last else snapshot_cost)
        runtime += operator_runtime(chunk_cost, stats,
                                    exact_waste=exact_waste)
    return runtime, interval


def group_snapshot_cost(plan: Plan,
                        group: CollapsedOperator) -> Optional[float]:
    """Per-snapshot cost for a collapsed group, or ``None`` if any
    member's state cannot be captured.

    Snapshotting a pipelined sub-plan means persisting every in-flight
    member's state, so the cost is the sum over members.
    """
    total = 0.0
    for member in group.members:
        member_cost = plan[member].state_ckpt_cost
        if member_cost is None:
            return None
        total += member_cost
    return total


def plan_operator_checkpoints(
    plan: Plan,
    stats: ClusterStats,
    exact_waste: bool = False,
) -> Dict[int, CheckpointSpec]:
    """Choose intra-operator checkpoints for a configured plan.

    For each collapsed group of ``plan`` (materialization flags already
    applied) whose members all support state snapshots, compare the plain
    estimate ``T(c)`` against the chunked estimate at the Young-Daly
    interval and keep the checkpointing whenever it is strictly cheaper.
    Returns a map of group anchor id to the chosen spec.
    """
    collapsed = collapse_plan(plan, const_pipe=stats.const_pipe)
    chosen: Dict[int, CheckpointSpec] = {}
    for group in collapsed:
        snapshot_cost = group_snapshot_cost(plan, group)
        if snapshot_cost is None or snapshot_cost <= 0:
            continue
        plain = operator_runtime(group.total_cost, stats,
                                 exact_waste=exact_waste)
        chunked, interval = checkpointed_runtime(
            group.total_cost, snapshot_cost, stats,
            exact_waste=exact_waste,
        )
        if chunked < plain:
            chosen[group.anchor_id] = CheckpointSpec(
                interval=interval,
                snapshot_cost=snapshot_cost,
                estimated_runtime=chunked,
            )
    return chosen


def estimated_runtime_with_checkpoints(
    plan: Plan,
    stats: ClusterStats,
    checkpoints: Dict[int, CheckpointSpec],
    exact_waste: bool = False,
) -> float:
    """Dominant-path estimate where checkpointed groups use their
    chunked runtime.  Mirrors ``estimate_plan_cost`` with T(c) replaced
    by the chosen per-group model."""
    from .paths import enumerate_paths

    collapsed = collapse_plan(plan, const_pipe=stats.const_pipe)
    best = 0.0
    for path in enumerate_paths(collapsed):
        total = 0.0
        for group in path:
            spec = checkpoints.get(group.anchor_id)
            if spec is not None:
                total += spec.estimated_runtime
            else:
                total += operator_runtime(group.total_cost, stats,
                                          exact_waste=exact_waste)
        best = max(best, total)
    return best
