"""Execution-path enumeration over collapsed plans (Section 3.4, step 3).

An *execution path* ``Pt`` is a path from a source collapsed operator
(no incoming edges) to a sink collapsed operator (no outgoing edges) in the
collapsed plan ``P^c``.  The cost model scores each path; the most
expensive one -- the *dominant path* -- represents the runtime of the whole
fault-tolerant plan under inter-operator parallelism.

Enumeration is lazy (a generator) so that pruning Rule 3 can cut the
enumeration short without paying for the full path set.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from .collapse import CollapsedOperator, CollapsedPlan

#: A path is the sequence of collapsed operators from source to sink.
ExecutionPath = Tuple[CollapsedOperator, ...]


def enumerate_paths(collapsed: CollapsedPlan) -> Iterator[ExecutionPath]:
    """Yield every source-to-sink path of ``collapsed``, deterministically.

    Paths are produced in depth-first order with sorted tie-breaking so the
    enumeration order is stable across runs (pruning effectiveness numbers
    depend on it; see Section 5.5).
    """
    for source in collapsed.sources:
        yield from _extend(collapsed, [source])


def _extend(
    collapsed: CollapsedPlan, prefix: List[int]
) -> Iterator[ExecutionPath]:
    consumers = sorted(collapsed.consumers(prefix[-1]))
    if not consumers:
        yield tuple(collapsed[anchor] for anchor in prefix)
        return
    for consumer in consumers:
        prefix.append(consumer)
        yield from _extend(collapsed, prefix)
        prefix.pop()


def count_paths(collapsed: CollapsedPlan) -> int:
    """Number of source-to-sink paths, computed by DP (no enumeration)."""
    counts = {anchor: 0 for anchor in collapsed.groups}
    for anchor in collapsed.sources:
        counts[anchor] = 1
    for anchor in collapsed.topological_order():
        for consumer in collapsed.consumers(anchor):
            counts[consumer] += counts[anchor]
    return sum(counts[anchor] for anchor in collapsed.sinks)


def path_total_costs(path: Sequence[CollapsedOperator]) -> List[float]:
    """``t(c)`` for each collapsed operator on the path."""
    return [group.total_cost for group in path]


def path_ids(path: Sequence[CollapsedOperator]) -> Tuple[int, ...]:
    """Anchor ids along the path (stable identity for tests/logging)."""
    return tuple(group.anchor_id for group in path)
