"""Core library: the paper's cost-based fault-tolerance scheme.

Public surface:

* plans -- :class:`~repro.core.plan.Plan`, :class:`~repro.core.plan.Operator`
* failure math -- :mod:`repro.core.failure`
* cost model -- :class:`~repro.core.cost_model.ClusterStats` and the
  Equation 2-8 functions in :mod:`repro.core.cost_model`
* collapsing -- :func:`~repro.core.collapse.collapse_plan`
* search -- :func:`~repro.core.enumeration.find_best_ft_plan`
* pruning -- :mod:`repro.core.pruning`
* schemes -- :mod:`repro.core.strategies`
"""

from .checkpointing import (
    CheckpointSpec,
    checkpointed_runtime,
    estimated_runtime_with_checkpoints,
    plan_operator_checkpoints,
    young_daly_interval,
)
from .collapse import CollapsedOperator, CollapsedPlan, collapse_plan
from .dot import collapsed_to_dot, plan_to_dot
from .cost_model import (
    ClusterStats,
    OperatorCostBreakdown,
    attempts,
    breakdown_table,
    cumulative_success,
    failure_probability,
    operator_breakdown,
    operator_runtime,
    operator_runtime_batch,
    path_cost,
    path_cost_batch,
    path_cost_failure_free,
    path_cost_failure_free_batch,
    success_probability,
    wasted_runtime_approx,
    wasted_runtime_exact,
)
from .enumeration import (
    PlanCostEstimate,
    SearchResult,
    count_mat_configs,
    enumerate_mat_configs,
    estimate_plan_cost,
    find_best_ft_plan,
)
from .optimizer import FaultTolerantOptimizer, OptimizerResult, QuerySpec
from .paths import count_paths, enumerate_paths, path_ids, path_total_costs
from .plan import Operator, Plan, PlanError, linear_plan
from .search_context import SearchContext
from .serialize import (
    dump_plan,
    load_plan,
    plan_from_dict,
    plan_to_dict,
    stats_from_dict,
    stats_to_dict,
)
from .pruning import (
    DominantPathMemo,
    PruningConfig,
    PruningStats,
    apply_rule1,
    apply_rule2,
)
from .strategies import (
    AllMat,
    ConfiguredPlan,
    CostBased,
    CostBasedWithOpCheckpoints,
    FaultToleranceScheme,
    NoMatLineage,
    NoMatRestart,
    RecoveryMode,
    scheme_by_name,
    standard_schemes,
)

__all__ = [
    "AllMat",
    "CheckpointSpec",
    "CostBasedWithOpCheckpoints",
    "FaultTolerantOptimizer",
    "OptimizerResult",
    "QuerySpec",
    "checkpointed_runtime",
    "estimated_runtime_with_checkpoints",
    "plan_operator_checkpoints",
    "young_daly_interval",
    "collapsed_to_dot",
    "plan_to_dot",
    "dump_plan",
    "load_plan",
    "plan_from_dict",
    "plan_to_dict",
    "stats_from_dict",
    "stats_to_dict",
    "ClusterStats",
    "CollapsedOperator",
    "CollapsedPlan",
    "ConfiguredPlan",
    "CostBased",
    "DominantPathMemo",
    "FaultToleranceScheme",
    "NoMatLineage",
    "NoMatRestart",
    "Operator",
    "OperatorCostBreakdown",
    "Plan",
    "PlanCostEstimate",
    "PlanError",
    "PruningConfig",
    "PruningStats",
    "RecoveryMode",
    "SearchContext",
    "SearchResult",
    "apply_rule1",
    "apply_rule2",
    "attempts",
    "breakdown_table",
    "collapse_plan",
    "count_mat_configs",
    "count_paths",
    "cumulative_success",
    "enumerate_mat_configs",
    "enumerate_paths",
    "estimate_plan_cost",
    "failure_probability",
    "find_best_ft_plan",
    "linear_plan",
    "operator_breakdown",
    "operator_runtime",
    "operator_runtime_batch",
    "path_cost",
    "path_cost_batch",
    "path_cost_failure_free",
    "path_cost_failure_free_batch",
    "path_ids",
    "path_total_costs",
    "scheme_by_name",
    "standard_schemes",
    "success_probability",
    "wasted_runtime_approx",
    "wasted_runtime_exact",
]
