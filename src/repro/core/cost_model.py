"""The paper's cost model (Section 3.5, Equations 2-8).

Given a *collapsed* plan (see :mod:`repro.core.collapse`) the cost model
estimates, for every collapsed operator ``c`` with failure-free runtime
``t(c) = tr(c) + tm(c)``:

* the average runtime wasted per failure ``w(c)`` (Eq. 2-4),
* the per-attempt failure/success probabilities ``eta(c)`` / ``gamma(c)``,
* the number of extra attempts ``a(c)`` needed to reach the desired success
  percentile ``S`` (Eq. 6), and
* the total runtime under failures
  ``T(c) = t(c) + a(c)*w(c) + a(c)*MTTR_cost`` (Eq. 8).

The cost of an execution path is ``T_Pt = sum(T(c) for c in Pt)`` (Eq. 7)
and the plan is represented by its *dominant* (most expensive) path.

All equations use ``MTBF_cost = MTBF * CONST_cost`` where ``CONST_cost``
converts wall-clock time into internal engine cost units; the paper (and
this reproduction's experiments) use ``CONST_cost = 1``.

``MTBF`` here is the *per-node* MTBF, exactly as in the paper: the model
estimates each sub-plan share's retries against the failure rate of the
node executing it, and deliberately ignores that the slowest of ``n``
nodes determines a partition-parallel operator's completion (Section 3.5's
footnote: paths are not modelled as stochastic variables).  This is what
makes the model fast -- and optimistic under low MTBFs, the ~30 %
underestimate the accuracy experiment (Figure 12a) measures.  Setting
``scale_mtbf_by_nodes=True`` on :class:`ClusterStats` switches to the
pessimistic cluster-superposition rate ``MTBF / n`` instead (an ablation;
see ``benchmarks/bench_ablation.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterable, List, Sequence

import numpy as np

from .failure import effective_mtbf


@dataclass(frozen=True)
class ClusterStats:
    """Cluster statistics consumed by the cost model (``getCostStats``).

    Parameters
    ----------
    mtbf:
        Mean time between failures of a *single* node, in wall-clock
        seconds.
    mttr:
        Mean time to repair (redeploy a failed sub-plan), in wall-clock
        seconds.
    nodes:
        Number of nodes participating in (partition-parallel) query
        execution.  Informational for the cost model by default (the
        paper's equations use the per-node MTBF; see the module
        docstring); the simulator and the Figure 1 math use it directly.
    scale_mtbf_by_nodes:
        Ablation switch: use the cluster-superposition rate
        ``mtbf / nodes`` as ``MTBF_cost`` instead of the paper's
        per-node rate.
    const_cost:
        ``CONST_cost`` -- wall-clock -> cost-unit conversion factor.
    const_pipe:
        ``CONST_pipe`` in ``(0, 1]`` -- pipeline-parallelism discount
        applied to multi-operator collapsed pipelines (Eq. 1).
    success_percentile:
        ``S`` -- the desired cumulative probability of success used to
        derive the number of attempts (0.95 in all paper experiments).
    """

    mtbf: float
    mttr: float = 0.0
    nodes: int = 1
    const_cost: float = 1.0
    const_pipe: float = 1.0
    success_percentile: float = 0.95
    scale_mtbf_by_nodes: bool = False

    def __post_init__(self) -> None:
        if self.mtbf <= 0:
            raise ValueError("mtbf must be > 0")
        if self.mttr < 0:
            raise ValueError("mttr must be >= 0")
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.const_cost <= 0:
            raise ValueError("const_cost must be > 0")
        if not 0 < self.const_pipe <= 1:
            raise ValueError("const_pipe must be in (0, 1]")
        if not 0 < self.success_percentile < 1:
            raise ValueError("success_percentile must be in (0, 1)")

    @property
    def mtbf_cost(self) -> float:
        """``MTBF_cost`` -- the MTBF in cost units (per-node by default)."""
        mtbf = self.mtbf
        if self.scale_mtbf_by_nodes:
            mtbf = effective_mtbf(mtbf, self.nodes)
        return mtbf * self.const_cost

    @property
    def mttr_cost(self) -> float:
        """``MTTR_cost`` -- repair time in cost units."""
        return self.mttr * self.const_cost

    def with_mtbf(self, mtbf: float) -> "ClusterStats":
        """Copy with a different per-node MTBF."""
        return replace(self, mtbf=mtbf)

    def with_nodes(self, nodes: int) -> "ClusterStats":
        """Copy with a different cluster size."""
        return replace(self, nodes=nodes)


def wasted_runtime_exact(total_cost: float, mtbf_cost: float) -> float:
    """Average runtime wasted by one failure of an operator (Eq. 3).

    ``w(c) = MTBF_cost - t(c) / (e^(t(c)/MTBF_cost) - 1)``

    Derived from integrating the failure-time density conditioned on a
    failure happening during the operator's execution window.
    """
    _check_positive_mtbf(mtbf_cost)
    if total_cost < 0:
        raise ValueError("total_cost must be >= 0")
    ratio = total_cost / mtbf_cost
    if ratio < 1e-6:
        # near the limit (Eq. 4) the closed form suffers catastrophic
        # cancellation (two ~MTBF-sized terms differing by ~t/2); the
        # series value t/2 * (1 - ratio/6) is exact to float precision
        # and evaluates to exactly 0.0 for total_cost == 0
        return total_cost / 2.0 * (1.0 - ratio / 6.0)
    if ratio > 700.0:
        # expm1 overflow guard; the correction term vanishes and the
        # average failure arrives one MTBF into the attempt.
        return mtbf_cost
    return mtbf_cost - total_cost / math.expm1(ratio)


def wasted_runtime_approx(total_cost: float, mtbf_cost: float) -> float:
    """The paper's fast approximation ``w(c) ~= t(c)/2`` (Eq. 4).

    Already for ``MTBF_cost > t(c)`` the exact value is close to
    ``t(c)/2``; the paper uses this approximation throughout.  The
    ``mtbf_cost`` argument is accepted (and validated) so the two
    implementations are interchangeable.
    """
    _check_positive_mtbf(mtbf_cost)
    if total_cost < 0:
        raise ValueError("total_cost must be >= 0")
    return total_cost / 2.0


def failure_probability(total_cost: float, mtbf_cost: float) -> float:
    """``eta(c) = 1 - e^(-t(c)/MTBF_cost)`` -- one attempt fails."""
    _check_positive_mtbf(mtbf_cost)
    if total_cost < 0:
        raise ValueError("total_cost must be >= 0")
    return -math.expm1(-total_cost / mtbf_cost)


def success_probability(total_cost: float, mtbf_cost: float) -> float:
    """``gamma(c) = e^(-t(c)/MTBF_cost)`` -- one attempt succeeds."""
    _check_positive_mtbf(mtbf_cost)
    if total_cost < 0:
        raise ValueError("total_cost must be >= 0")
    return math.exp(-total_cost / mtbf_cost)


def cumulative_success(total_cost: float, mtbf_cost: float,
                       attempts: float) -> float:
    """``S(A <= N) = 1 - eta(c)^(N+1)`` (closed form of Eq. 5)."""
    if attempts < 0:
        raise ValueError("attempts must be >= 0")
    eta = failure_probability(total_cost, mtbf_cost)
    return 1.0 - eta ** (attempts + 1)


def attempts(total_cost: float, mtbf_cost: float,
             success_percentile: float = 0.95) -> float:
    """Extra attempts needed to reach the success percentile ``S`` (Eq. 6).

    ``a(c) = max(ln(1 - S) / ln(eta(c)) - 1, 0)``

    The value is fractional by design -- the cost model scales the wasted
    runtime and repair cost linearly with it.  Zero-cost operators (and
    operators whose single-attempt success probability already exceeds
    ``S``) need no extra attempts.
    """
    if not 0 < success_percentile < 1:
        raise ValueError("success_percentile must be in (0, 1)")
    eta = failure_probability(total_cost, mtbf_cost)
    if eta <= 0.0:
        return 0.0
    if eta >= 1.0:
        # eta < 1 mathematically, but rounds to 1.0 in floating point for
        # t(c) >> MTBF_cost; the percentile is then unreachable in any
        # finite number of attempts, and an infinite estimate correctly
        # ranks such configurations last.
        return float("inf")
    raw = math.log(1.0 - success_percentile) / math.log(eta) - 1.0
    return max(raw, 0.0)


def operator_runtime(
    total_cost: float,
    stats: ClusterStats,
    exact_waste: bool = False,
) -> float:
    """Total runtime ``T(c)`` of a collapsed operator under failures (Eq. 8).

    ``T(c) = t(c) + a(c) * w(c) + a(c) * MTTR_cost``

    Parameters
    ----------
    total_cost:
        ``t(c) = tr(c) + tm(c)`` of the collapsed operator.
    stats:
        Cluster statistics; supplies ``MTBF_cost``, ``MTTR_cost`` and ``S``.
    exact_waste:
        Use the exact integral for ``w(c)`` (Eq. 3) instead of the paper's
        default ``t(c)/2`` approximation (Eq. 4).
    """
    mtbf_cost = stats.mtbf_cost
    waste_fn = wasted_runtime_exact if exact_waste else wasted_runtime_approx
    wasted = waste_fn(total_cost, mtbf_cost)
    extra_attempts = attempts(total_cost, mtbf_cost, stats.success_percentile)
    return total_cost + extra_attempts * (wasted + stats.mttr_cost)


def path_cost(
    operator_costs: Iterable[float],
    stats: ClusterStats,
    exact_waste: bool = False,
) -> float:
    """Total cost of an execution path ``T_Pt = sum T(c)`` (Eq. 7)."""
    return sum(
        operator_runtime(cost, stats, exact_waste=exact_waste)
        for cost in operator_costs
    )


def path_cost_failure_free(operator_costs: Iterable[float]) -> float:
    """``R_Pt = sum t(c)`` -- path runtime ignoring failures (Rule 3)."""
    return sum(operator_costs)


def operator_runtime_batch(
    total_costs: Sequence[float],
    stats: ClusterStats,
    exact_waste: bool = False,
) -> "np.ndarray":
    """Vectorized :func:`operator_runtime`: ``T(c)`` for many ``t(c)`` at once.

    Semantically equivalent to calling :func:`operator_runtime` per
    element (same branch structure for the waste approximation, the
    ``eta >= 1`` infinity guard and the ``a(c) >= 0`` clamp).  NumPy's
    transcendentals may differ from ``math.exp`` / ``math.log`` /
    ``math.expm1`` in the last ulp, so results agree with the scalar
    path to ~1 ulp rather than bit-for-bit; use the scalar function when
    exact reproducibility against a scalar baseline matters (the fast
    search engine does, via its memoized scalar cache).
    """
    mtbf_cost = stats.mtbf_cost
    _check_positive_mtbf(mtbf_cost)
    t = np.asarray(total_costs, dtype=np.float64)
    if t.size and float(t.min()) < 0:
        raise ValueError("total_cost must be >= 0")
    ratio = t / mtbf_cost
    if exact_waste:
        small = ratio < 1e-6
        big = ratio > 700.0
        mid = ~(small | big)
        wasted = np.empty_like(t)
        wasted[small] = t[small] / 2.0 * (1.0 - ratio[small] / 6.0)
        wasted[big] = mtbf_cost
        wasted[mid] = mtbf_cost - t[mid] / np.expm1(ratio[mid])
    else:
        wasted = t / 2.0
    eta = -np.expm1(-ratio)
    extra = np.zeros_like(t)
    unreachable = eta >= 1.0
    finite = (eta > 0.0) & ~unreachable
    log_fail = math.log(1.0 - stats.success_percentile)
    extra[finite] = np.maximum(log_fail / np.log(eta[finite]) - 1.0, 0.0)
    extra[unreachable] = np.inf
    return t + extra * (wasted + stats.mttr_cost)


# ----------------------------------------------------------------------
# certified batch/scalar agreement envelope (the sharded search's
# prefilter contract; see docs/perf.md and tests/test_shard.py)
# ----------------------------------------------------------------------

#: certified relative half-width of the batch/scalar agreement, in ulps.
#: The batch kernel evaluates the same expression tree as the scalar
#: path; each float64 transcendental agrees with ``math.*`` to ~1 ulp and
#: the chain is ~10 operations of same-sign terms, so the true relative
#: error is a few ulps wherever the chain is well-conditioned.  The one
#: ill-conditioned step is ``log(eta)`` as ``eta -> 1``: its relative
#: error amplifies by ``1/|ln eta| ~= e^(t/MTBF)``, which is why the
#: certificate below refuses to vouch past :data:`BATCH_CERTIFIED_MAX_ETA`
#: (the certification test pins the measured error inside the envelope
#: with a wide margin across regimes up to that boundary).
BATCH_ENVELOPE_ULPS = 4096
BATCH_ENVELOPE = BATCH_ENVELOPE_ULPS * 2.0 ** -52

#: the certificate's validity boundary: for ``eta(c) <= 1 - e^-7``
#: (``t(c) <= 7 * MTBF_cost``) the ``log(eta)`` amplification factor is
#: at most ``~e^7 ~= 1100`` ulps, safely inside the 4096-ulp envelope.
BATCH_CERTIFIED_MAX_RATIO = 7.0


def batch_certified_exceeds(
    batch_runtime: float,
    incumbent: float,
    total_cost: float,
    mtbf_cost: float,
) -> bool:
    """Does a batch-computed ``T(c)`` *provably* exceed ``incumbent``?

    Returns ``True`` only when the scalar runtime of the same operator
    is guaranteed to be strictly greater than ``incumbent``:

    * the batch value must be finite (near the ``eta >= 1`` rounding
      boundary NumPy and ``math.expm1`` may disagree about infinity, so
      an infinite batch value certifies nothing),
    * ``t(c)`` must be inside the conditioning boundary
      :data:`BATCH_CERTIFIED_MAX_RATIO` where the envelope is proven, and
    * the batch value must clear ``incumbent`` by the full relative
      envelope: ``T_b > incumbent * (1 + eps)`` implies
      ``T_s >= T_b / (1 + eps) > incumbent``.

    A ``False`` answer is always safe -- the caller falls back to the
    exact scalar score.
    """
    return (
        math.isfinite(batch_runtime)
        and total_cost <= BATCH_CERTIFIED_MAX_RATIO * mtbf_cost
        and batch_runtime > incumbent * (1.0 + BATCH_ENVELOPE)
    )


def path_cost_batch(
    paths: Sequence[Sequence[float]],
    stats: ClusterStats,
    exact_waste: bool = False,
) -> "np.ndarray":
    """Score many execution paths in one call: ``T_Pt`` per path (Eq. 7).

    ``paths`` is a sequence of ``t(c)`` vectors (ragged lengths are
    fine); the return value is one total per path, in order.  Rows are
    zero-padded to a rectangle -- safe because ``T(0) = 0`` contributes
    nothing to a path sum.  Accuracy caveat as for
    :func:`operator_runtime_batch`: ~1 ulp vs the scalar
    :func:`path_cost`.
    """
    if not len(paths):
        return np.zeros(0, dtype=np.float64)
    rows = [np.asarray(path, dtype=np.float64) for path in paths]
    width = max((row.size for row in rows), default=0)
    matrix = np.zeros((len(rows), max(width, 1)), dtype=np.float64)
    for index, row in enumerate(rows):
        matrix[index, : row.size] = row
    runtimes = operator_runtime_batch(
        matrix.ravel(), stats, exact_waste=exact_waste
    ).reshape(matrix.shape)
    return runtimes.sum(axis=1)


def path_cost_failure_free_batch(
    paths: Sequence[Sequence[float]],
) -> "np.ndarray":
    """Vectorized :func:`path_cost_failure_free`: ``R_Pt`` per path.

    Sums are plain left folds, so every element is bit-identical to the
    scalar :func:`path_cost_failure_free` of the same path.
    """
    return np.asarray([sum(path) for path in paths], dtype=np.float64)


@dataclass(frozen=True)
class OperatorCostBreakdown:
    """Per-operator cost-model intermediates (the rows of Table 2)."""

    total_cost: float      #: t(c)
    wasted: float          #: w(c)
    gamma: float           #: gamma(c)
    eta: float             #: eta(c)
    attempts: float        #: a(c)
    runtime: float         #: T(c)


def operator_breakdown(
    total_cost: float,
    stats: ClusterStats,
    exact_waste: bool = False,
) -> OperatorCostBreakdown:
    """All cost-model intermediates for one collapsed operator.

    Mirrors the columns of the paper's Table 2 worked example and is used
    by the golden tests and the ``bench_tab2_example`` benchmark.
    """
    mtbf_cost = stats.mtbf_cost
    waste_fn = wasted_runtime_exact if exact_waste else wasted_runtime_approx
    wasted = waste_fn(total_cost, mtbf_cost)
    eta = failure_probability(total_cost, mtbf_cost)
    gamma = 1.0 - eta
    extra = attempts(total_cost, mtbf_cost, stats.success_percentile)
    runtime = total_cost + extra * (wasted + stats.mttr_cost)
    return OperatorCostBreakdown(
        total_cost=total_cost,
        wasted=wasted,
        gamma=gamma,
        eta=eta,
        attempts=extra,
        runtime=runtime,
    )


def breakdown_table(
    operator_costs: Sequence[float],
    stats: ClusterStats,
    exact_waste: bool = False,
) -> List[OperatorCostBreakdown]:
    """Vector form of :func:`operator_breakdown` (one row per operator)."""
    return [
        operator_breakdown(cost, stats, exact_waste=exact_waste)
        for cost in operator_costs
    ]


def _check_positive_mtbf(mtbf_cost: float) -> None:
    if mtbf_cost <= 0:
        raise ValueError("mtbf_cost must be > 0")
