"""The complete fault-tolerant optimizer (``enumFTPlans``, Section 3.2).

:func:`~repro.core.enumeration.find_best_ft_plan` implements Listing 1
over a *given* list of candidate plans.  This module adds the paper's
first enumeration phase on top: a dynamic-programming join-order
optimizer produces the **top-k plans by failure-free cost**, and the
second phase searches their materialization configurations under the
failure cost model -- because "a plan that has slightly higher costs than
a plan P' in the first phase can have lower costs when including the
costs to recover from mid-query failures".

The optimizer consumes a :class:`QuerySpec` -- a join graph plus the
aggregate on top (the Figure 9 plan shape) -- and returns the best
fault-tolerant plan together with search diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .. import obs
from ..joinorder.dp import RankedTree, top_k_plans
from ..joinorder.graph import JoinGraph
from ..joinorder.trees import tree_to_plan
from ..stats.estimates import CostParameters
from .cost_model import ClusterStats
from .enumeration import SearchResult, find_best_ft_plan
from .plan import Plan
from .pruning import PruningConfig


@dataclass(frozen=True)
class QuerySpec:
    """A query for the optimizer: a join graph plus its aggregate.

    Parameters
    ----------
    graph:
        Join graph with post-filter cardinalities and edge selectivities.
    agg_out_rows / agg_out_bytes:
        Output size of the final (always-materialized) aggregate.
    name:
        Label used in diagnostics.
    """

    graph: JoinGraph
    agg_out_rows: float = 5.0
    agg_out_bytes: float = 240.0
    name: str = "query"


@dataclass(frozen=True)
class OptimizerResult:
    """Outcome of a full optimizer run."""

    search: SearchResult                  #: best [P, M_P] and its cost
    ranked_trees: Tuple[RankedTree, ...]  #: phase-1 top-k join orders
    chosen_tree_rank: int                 #: which phase-1 plan won (0-based)

    @property
    def plan(self) -> Plan:
        return self.search.plan

    @property
    def cost(self) -> float:
        return self.search.cost

    @property
    def materialized_ids(self) -> Tuple[int, ...]:
        return self.search.materialized_ids


class FaultTolerantOptimizer:
    """``findBestFTPlan`` with both enumeration phases wired together.

    Parameters
    ----------
    params:
        Cardinality-to-cost calibration used to cost the candidate plans.
    top_k:
        How many phase-1 join orders to carry into phase 2.
    pruning:
        Which Section 4 rules phase 2 applies.
    exact_waste:
        Use the exact wasted-runtime integral instead of ``t(c)/2``.
    engine:
        Phase-2 search engine (``"fast"`` or ``"naive"``); see
        :func:`~repro.core.enumeration.find_best_ft_plan`.
    parallelism:
        Worker processes for phase 2's fan-out over the top-k plans.
    """

    def __init__(
        self,
        params: CostParameters,
        top_k: int = 5,
        pruning: PruningConfig = PruningConfig.all(),
        exact_waste: bool = False,
        engine: str = "fast",
        parallelism: int = 1,
    ) -> None:
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        self.params = params
        self.top_k = top_k
        self.pruning = pruning
        self.exact_waste = exact_waste
        self.engine = engine
        self.parallelism = parallelism

    # ------------------------------------------------------------------
    def candidate_plans(
        self, query: QuerySpec
    ) -> Tuple[List[Plan], List[RankedTree]]:
        """Phase 1: the top-k join orders, lowered to costed plans."""
        with obs.span("optimizer.phase1", query=query.name,
                      relations=len(query.graph.relations),
                      top_k=self.top_k) as phase_span:
            ranked = top_k_plans(query.graph, k=self.top_k)
            plans = [
                tree_to_plan(
                    entry.tree, query.graph, self.params,
                    agg_out_rows=query.agg_out_rows,
                    agg_out_bytes=query.agg_out_bytes,
                )
                for entry in ranked
            ]
            phase_span.set(candidates=len(plans))
            obs.add("optimizer.phase1.runs")
            obs.add("optimizer.phase1.candidates", len(plans))
        return plans, ranked

    def optimize(self, query: QuerySpec,
                 stats: ClusterStats) -> OptimizerResult:
        """Both phases: top-k join orders, then configuration search."""
        with obs.span("optimizer", query=query.name,
                      engine=self.engine) as opt_span:
            plans, ranked = self.candidate_plans(query)
            with obs.span("optimizer.phase2", query=query.name,
                          plans=len(plans)):
                search = find_best_ft_plan(
                    plans, stats,
                    pruning=self.pruning,
                    exact_waste=self.exact_waste,
                    engine=self.engine,
                    parallelism=self.parallelism,
                )
            chosen_rank = self._identify_chosen(plans, search)
            opt_span.set(chosen_rank=chosen_rank, cost=search.cost)
            obs.add("optimizer.runs")
        return OptimizerResult(
            search=search,
            ranked_trees=tuple(ranked),
            chosen_tree_rank=chosen_rank,
        )

    def optimize_plan(self, plan: Plan,
                      stats: ClusterStats) -> SearchResult:
        """Phase 2 only, for a plan produced elsewhere."""
        return find_best_ft_plan(
            [plan], stats,
            pruning=self.pruning,
            exact_waste=self.exact_waste,
            engine=self.engine,
        )

    @staticmethod
    def _identify_chosen(plans: Sequence[Plan],
                         search: SearchResult) -> int:
        """Index of the phase-1 plan the winning configuration came from.

        Candidates are compared by their operator cost signature, which
        is unique per join order under distinct cardinalities.
        """
        winning = _signature(search.plan)
        for index, plan in enumerate(plans):
            if _signature(plan) == winning:
                return index
        return -1  # pragma: no cover - the winner always came from plans


def _signature(plan: Plan) -> Tuple[Tuple[int, float, float], ...]:
    return tuple(
        (op_id, op.runtime_cost, op.mat_cost)
        for op_id, op in sorted(plan.operators.items())
    )
