"""Sharded large-DAG search: work-stealing enumeration with a shared bound.

The serial fast engine (:mod:`repro.core.search_context`) makes a single
pass over a plan's ``2^n`` Gray-coded configurations.  That is the right
shape for the paper's hand-sized queries (n <= 5) but not for production
DAGs with 20-100 free operators, where the scan must be *partitioned*:
this module chops the (join order x Gray-code config subspace) space into
many more shards than workers and dispatches them over a
:class:`concurrent.futures.ProcessPoolExecutor` work queue, so a slow
shard never idles the other workers (work stealing by over-partitioning).

Three mechanisms make the sharded scan fast and still *bit-identical* to
the serial fast engine and the naive oracle:

* **Shard kernel.**  :class:`ShardKernel` subclasses
  :class:`~repro.core.search_context.SearchContext` and replaces its
  per-flip group-membership BFS (68 % of serial scan time on n=60
  plans) with an ancestor-flag-mask cache, delta membership updates and
  incremental collapsed-order maintenance.  Every number it produces
  comes from the exact same float operations as the base class -- the
  property suite (``tests/test_shard.py``) pins exact ``==`` equality
  against both reference engines.

* **Shared best-cost bound.**  A ``multiprocessing.Value`` double
  carries the best dominant cost between workers; each shard folds it
  in at shard start and every :data:`BOUND_STRIDE` configurations, so
  late shards inherit early shards' Rule-3 cutoffs instead of
  rediscovering them.  Skips test ``R_max > bound`` *strictly* (ties
  are still scored), so a stale or racy bound can only cost a skip,
  never a result: any skipped configuration is provably worse than the
  final winner, and the reduce below never sees it.

* **Certified batch prefilter.**  ``T(c)`` is monotone in ``t(c)`` and
  every collapsed group lies on some source-to-sink path, so
  ``T(max_c t(c))`` lower-bounds the dominant cost.  The kernel batches
  distinct ``max t(c)`` values through the NumPy
  :func:`~repro.core.cost_model.operator_runtime_batch` kernel and skips
  the exact scoring DP whenever the batch bound *provably* exceeds the
  incumbent under the proven tolerance envelope
  (:func:`~repro.core.cost_model.batch_certified_exceeds`); candidates
  inside the envelope fall through to the exact scalar re-score.

Determinism: each worker returns its shard's best ``(cost, plan, mask)``
key, and the final reduce takes the lexicographic minimum -- the same
total order the serial engines' first-wins tie-breaking induces -- so the
result is independent of shard completion order, worker count and bound
propagation timing.  ``python -m repro sanitize`` replays a sharded
search at ``shards=1`` vs ``shards=N`` and diffs result fingerprints
(:func:`repro.analysis.sanitizer.replay_sharded_search`).

Resilience mirrors the campaign engine (PR 5): failed futures stay
pending, each retry round gets a fresh pool with exponential backoff,
and whatever remains after the retry budget runs serially in-process
(which cannot crash), reading the shared cell so it still benefits from
every bound the dead workers published.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import (
    Any, Callable, Dict, List, Optional, Sequence, Set, Tuple,
)

from .. import obs
from ..chaos.policy import FaultPolicy
from . import cost_model
from .collapse import CollapsedOperator
from .cost_model import ClusterStats
from .plan import Plan
from .pruning import PruningConfig, PruningStats, apply_rule1, apply_rule2
from .search_context import SearchContext

#: (cost, plan index, config mask) -- lexicographic minimum reproduces the
#: serial engines' first-wins tie ordering (mirrors ``enumeration._BestKey``)
_BestKey = Tuple[float, int, int]

#: configurations between shared-cell reads inside a shard scan
BOUND_STRIDE = 64

#: pending distinct ``max t(c)`` values per batch cost-model flush
BATCH_FLUSH = 64

#: default over-partitioning factor: shards per requested worker
SHARDS_PER_WORKER = 4

#: floor on shard size -- below this the per-shard setup (positioning the
#: kernel, reading the cell) outweighs the scan itself
MIN_SHARD_CONFIGS = 16


def _gray(index: int) -> int:
    """The ``index``-th Gray code (matches ``SearchContext.iter_masks``)."""
    return index ^ (index >> 1)


# ----------------------------------------------------------------------
# the searched subspace: a windowed Gray sequence
# ----------------------------------------------------------------------
def subspace_params(
    n_free: int, config_limit: Optional[int]
) -> Tuple[int, int, int]:
    """``(count, shift, pinned)`` describing the searched mask set.

    Without a limit the search covers all ``2^n`` masks (``shift=0``,
    ``pinned=0``): position ``i`` maps to plain ``gray(i)``.  With
    ``config_limit = K < 2^n`` the search varies the ``w = ceil(log2 K)``
    *highest* free bits -- the operators nearest the sink, where
    materialization choices interact most -- and pins every deeper free
    operator to materialized (bit set):

        ``mask(i) = (gray(i) << shift) | pinned``

    with ``shift = n - w`` and ``pinned = 2^shift - 1``.  Pinning deep
    operators keeps their groups small, so the subspace has genuine cost
    variation (a prefix over the *low* bits would leave every config
    sharing one giant unmaterialized pipeline and the scan would be
    flat).  Consecutive positions still differ in exactly one bit, so
    the incremental engines step with single flips; the naive oracle
    enumerates the same set sorted ascending.
    """
    space = 1 << n_free
    if config_limit is None or config_limit >= space:
        return space, 0, 0
    width = max(1, (config_limit - 1).bit_length())
    shift = n_free - width
    return config_limit, shift, (1 << shift) - 1


def subspace_mask(position: int, shift: int, pinned: int) -> int:
    """The mask at ``position`` of a windowed Gray sequence."""
    return (_gray(position) << shift) | pinned


# ----------------------------------------------------------------------
# the shard kernel: a SearchContext with the collapse hot path removed
# ----------------------------------------------------------------------
class ShardKernel(SearchContext):
    """A :class:`SearchContext` tuned for huge Gray-code scans.

    The base class is the simple, auditable reference implementation;
    this subclass is the performance implementation certified against it
    (``tests/test_shard.py`` asserts exact equality of every score).  It
    changes *where numbers come from*, never *which operations compute
    them*:

    * ``_members_of`` is answered from a per-anchor cache keyed by the
      flags of the anchor's free strict ancestors (the only flags the
      member BFS can observe), eliminating the BFS + sort per rebuild;
    * membership, the collapsed topological order and the inner-anchor
      set are maintained by deltas instead of rebuilt per flip;
    * :meth:`cheap_bounds` fuses ``R_max`` with the ``max t(c)`` the
      batch prefilter needs into the one DP pass Rule 3 already pays
      for, reproducing ``failure_free_dominant()`` float-for-float;
    * :meth:`prepare_window` precomputes the scoring DP over the *static*
      region of a windowed scan -- a windowed Gray sequence only ever
      flips the ``w`` operators nearest the sink, so every collapsed
      group outside their descendant cone keeps its members, in-edges
      and prefix cost for the whole subspace.  :meth:`window_bounds` and
      :meth:`window_cost` then walk only the volatile anchors (~w of
      them) instead of the full collapsed DAG, reading frozen prefixes
      from the static tables.  Per-configuration scoring cost becomes
      proportional to the window, not the DAG.

    Why the static split is exact: an anchor is *volatile* iff a window
    bit appears in ``anc_mask[anchor] | ownbit(anchor)``.  Ancestor
    masks are transitively closed (``anc_mask[a]`` contains the mask of
    every ancestor), so every producer a static anchor can see --
    members, group in-edges, DP predecessors -- is itself static, and
    every reader of a volatile prefix is itself volatile.  The volatile
    pass therefore performs exactly the float operations of the full DP
    that differ between configurations, in the same order, on the same
    values; the property suite pins ``==`` equality per configuration.
    """

    def __init__(
        self,
        plan: Plan,
        stats: ClusterStats,
        exact_waste: bool = False,
    ) -> None:
        # precompute before super().__init__: the base constructor's
        # initial rebuild loop already dispatches into our overrides
        topo = plan.topological_order()
        free_ids = tuple(plan.free_operators)
        freebit = {op_id: bit for bit, op_id in enumerate(free_ids)}
        anc_mask: Dict[int, int] = {}
        for op_id in topo:
            mask = 0
            for producer in plan.producers(op_id):
                mask |= anc_mask[producer]
                bit = freebit.get(producer)
                if bit is not None:
                    mask |= 1 << bit
            anc_mask[op_id] = mask
        #: free strict ancestors of each operator, as a free-id bitmask --
        #: exactly the flags the member BFS from that operator can read
        self._anc_mask = anc_mask
        self._freebit = freebit
        self._topo_pos = {op_id: pos for pos, op_id in enumerate(topo)}
        #: anchor -> {masked flag state -> member tuple}
        self._members_cache: Dict[int, Dict[int, Tuple[int, ...]]] = {}
        #: anchor -> {masked flag state (incl. own flag) -> full group
        #: state (group, in-edges, total)} -- int keys hash in O(1),
        #: unlike the base class's member-tuple keys
        self._state_cache: Dict[
            int, Dict[int, Tuple[CollapsedOperator, Tuple[int, ...], float]]
        ] = {}
        #: current ``t(c)`` per anchor (plain dict: the scoring loops
        #: would otherwise pay a property call per anchor per config)
        self._total: Dict[int, float] = {}
        self._flag_mask = sum(
            1 << bit for bit, op_id in enumerate(free_ids)
            if plan[op_id].materialize
        )
        #: collapsed-in-edge reference counts backing ``_collapsed_inner``
        self._inner_count: Dict[int, int] = {}
        #: topo positions parallel to ``_collapsed_order`` (bisect keys)
        self._order_keys: List[int] = []
        # windowed-scan state (see prepare_window): None means no static
        # tables are live and the window_* scorers may not be used
        self._window_mask: Optional[int] = None
        self._volatile: frozenset = frozenset()
        self._prefix_ff: Dict[int, float] = {}
        self._prefix_t: Dict[int, float] = {}
        self._static_best_ff: Optional[float] = None
        self._static_best_t: Optional[float] = None
        self._static_max_total = 0.0
        # functional window scan: candidate volatile anchors in topo
        # order as (anchor, presence bit | None, is a collapsed sink,
        # support tables), plus the per-config scratch buffer the two
        # scoring passes share.  Support tables cache group states by
        # the flags the member BFS *actually observed* (expanded members
        # + materialized boundary + own bit) -- the anchor's full
        # ancestor mask would make every sink-group state distinct even
        # when a materialized cut leaves the group unchanged.
        self._window_candidates: List[
            Tuple[int, Optional[int], bool, List[
                Tuple[int, Dict[int, Tuple[float, Tuple[int, ...]]]]
            ]]
        ] = []
        self._window_state_cache: Dict[
            int, List[Tuple[int, Dict[int, Tuple[float, Tuple[int, ...]]]]]
        ] = {}
        self._scratch_entries: List[
            Tuple[int, float, Tuple[int, ...], bool]
        ] = []
        # certified batch prefilter state (see batch_runtime_bound)
        self._batch_cache: Dict[float, float] = {}
        self._batch_pending: List[float] = []
        self._batch_pending_set: Set[float] = set()
        self.members_cache_hits = 0
        self.members_cache_misses = 0
        self.batch_flushes = 0
        self.window_preps = 0
        super().__init__(plan, stats, exact_waste=exact_waste)

    # -- collapse fast path --------------------------------------------
    def _members_of(self, anchor: int) -> Tuple[int, ...]:
        per_anchor = self._members_cache.get(anchor)
        if per_anchor is None:
            per_anchor = self._members_cache[anchor] = {}
        key = self._flag_mask & self._anc_mask[anchor]
        members = per_anchor.get(key)
        if members is None:
            self.members_cache_misses += 1
            members = super()._members_of(anchor)
            per_anchor[key] = members
        else:
            self.members_cache_hits += 1
        return members

    def _flip(self, op_id: int) -> None:
        bit = self._freebit[op_id]
        window = self._window_mask
        if window is not None and not (window >> bit) & 1:
            # a flip outside the window changes the "static" region: the
            # precomputed tables are stale, drop them (prepare_window
            # rebuilds on demand).  Window-bit flips leave them valid --
            # scans never flip at all (the window scorers are functional
            # in the mask), only inter-shard repositioning lands here.
            self._window_mask = None
            self._volatile = frozenset()
        # keep the flag mask current *before* the base flip triggers
        # rebuilds: their members-cache keys must see the new state
        self._flag_mask ^= 1 << bit
        super()._flip(op_id)

    def _rebuild_group(self, anchor: int) -> None:
        old = self._groups.get(anchor)
        old_in = self._group_in.get(anchor)
        per_anchor = self._state_cache.get(anchor)
        if per_anchor is None:
            per_anchor = self._state_cache[anchor] = {}
        # the full group state is a function of the anchor's free strict
        # ancestors' flags plus its own flag (which decides tm): an int
        # key over exactly those bits replaces the base class's
        # (anchor, member-tuple, flag) key -- O(1) hash instead of O(|c|)
        bit = self._freebit.get(anchor)
        key = self._flag_mask & self._anc_mask[anchor]
        if bit is not None:
            key |= self._flag_mask & (1 << bit)
        cached = per_anchor.get(key)
        if cached is not None:
            self.group_cache_hits += 1
        else:
            self.group_cache_misses += 1
            members = self._members_of(anchor)
            dominant_path, path_runtime = self._dominant_path(members, anchor)
            pipe = self._const_pipe if len(dominant_path) > 1 else 1.0
            mat_cost = self._mat[anchor] if self._flags[anchor] else 0.0
            group = CollapsedOperator(
                anchor_id=anchor,
                members=frozenset(members),
                runtime_cost=path_runtime * pipe,
                mat_cost=mat_cost,
                dominant_path=tuple(dominant_path),
            )
            member_set = group.members
            group_in = tuple(sorted(
                {
                    producer
                    for member in members
                    for producer in self._producers[member]
                } - member_set
            ))
            cached = (group, group_in, group.total_cost)
            per_anchor[key] = cached
        group, group_in, total = cached
        self._groups[anchor] = group
        self._group_in[anchor] = group_in
        self._total[anchor] = total
        # delta maintenance replaces the base class's discard-all/re-add
        # membership walk and its full order/inner recomputation
        if old is None:
            for member in group.members:
                self._membership[member].add(anchor)
            position = self._topo_pos[anchor]
            insort(self._order_keys, position)
            self._collapsed_order.insert(
                bisect_left(self._order_keys, position), anchor
            )
        elif (
            old.members is not group.members
            and old.members != group.members
        ):
            for member in old.members - group.members:
                self._membership[member].discard(anchor)
            for member in group.members - old.members:
                self._membership[member].add(anchor)
        if old_in != group_in:
            self._retire_inner(old_in)
            counts = self._inner_count
            inner = self._collapsed_inner
            for producer in group_in:
                count = counts.get(producer, 0)
                counts[producer] = count + 1
                if not count:
                    inner.add(producer)

    def _dominant_path(
        self, members: Tuple[int, ...], anchor: int
    ) -> Tuple[List[int], float]:
        """Base DP restricted to the members (it scans the full topo list).

        The base class iterates every plan operator and skips
        non-members; for a windowed scan that is O(plan) per cache miss
        on groups of a handful of operators.  Iterating the members
        sorted by topological position visits exactly the same operators
        in exactly the same order, so every ``max``/add matches the base
        implementation bit-for-bit.
        """
        if len(members) == 1:
            # singleton group: the DP reduces to 0.0 + runtime(anchor)
            return [anchor], 0.0 + self._runtime[anchor]
        member_set = set(members)
        producers = self._producers
        runtime = self._runtime
        best_cost: Dict[int, float] = {}
        best_pred: Dict[int, int] = {}
        for op_id in sorted(members, key=self._topo_pos.__getitem__):
            internal = [p for p in producers[op_id] if p in member_set]
            incoming = max(
                (best_cost[p] for p in internal), default=0.0
            )
            best_cost[op_id] = incoming + runtime[op_id]
            if internal:
                best_pred[op_id] = max(
                    internal, key=lambda p: (best_cost[p], p)
                )
        path = [anchor]
        while path[-1] in best_pred:
            path.append(best_pred[path[-1]])
        path.reverse()
        return path, best_cost[anchor]

    def _drop_group(self, anchor: int) -> None:
        old = self._groups.pop(anchor)
        for member in old.members:
            self._membership[member].discard(anchor)
        old_in = self._group_in.pop(anchor)
        del self._total[anchor]
        position = self._topo_pos[anchor]
        index = bisect_left(self._order_keys, position)
        del self._order_keys[index]
        del self._collapsed_order[index]
        self._retire_inner(old_in)

    def _retire_inner(self, old_in: Optional[Tuple[int, ...]]) -> None:
        if not old_in:
            return
        counts = self._inner_count
        for producer in old_in:
            count = counts[producer] - 1
            if count:
                counts[producer] = count
            else:
                del counts[producer]
                self._collapsed_inner.discard(producer)

    def _refresh_order(self) -> None:
        # order and inner set are maintained incrementally above; the
        # plan-topo-position invariant the base class relies on (an
        # anchor's position never changes) makes bisect insertion exact
        self._order_dirty = False

    # -- scoring fast path ---------------------------------------------
    def cheap_bounds(self) -> Tuple[float, float]:
        """``(R_max, max t(c))`` in one pass over the collapsed DAG.

        ``R_max`` replays :meth:`failure_free_dominant` float-for-float
        (same traversal order, same ``max``/add sequence); ``max t(c)``
        feeds :meth:`batch_runtime_bound`.
        """
        groups = self._groups
        group_in = self._group_in
        prefix: Dict[int, float] = {}
        inner = self._collapsed_inner
        best: Optional[float] = None
        max_total = 0.0
        for anchor in self._collapsed_order:
            value = total = groups[anchor].total_cost
            if total > max_total:
                max_total = total
            incoming = group_in[anchor]
            if incoming:
                value = max(prefix[p] for p in incoming) + value
            prefix[anchor] = value
            if anchor not in inner:  # a collapsed sink ends a path
                if best is None or value > best:
                    best = value
        assert best is not None  # a valid plan always has >= 1 path
        return best, max_total

    # -- windowed scoring: static-region DP tables -----------------------
    def prepare_window(self, window_mask: int) -> None:
        """Freeze the static-region DP for a windowed Gray scan.

        ``window_mask`` is the free-id bitmask of the operators the scan
        will flip (``all_bits ^ pinned`` of the subspace).  Everything an
        anchor computes -- members, in-edges, group cost, DP prefix --
        depends only on the flags of its free strict ancestors, so any
        anchor with no window bit in ``anc_mask | ownbit`` is *static*
        for the whole subspace.  This pass walks the collapsed DAG once,
        storing every static anchor's failure-free and failure-aware
        prefix (computed with exactly the float operations of
        :meth:`cheap_bounds` / :meth:`dominant_cost`), the best over
        static collapsed sinks, and the static ``max t(c)``; the
        per-configuration scorers then only walk the volatile anchors.

        Must be called with the kernel already positioned on a mask of
        the subspace (pinned bits set).  Idempotent while the window is
        unchanged; any flip outside the window invalidates the tables
        and the next call rebuilds them.
        """
        if self._window_mask == window_mask:
            return
        self.window_preps += 1
        anc_mask = self._anc_mask
        freebit = self._freebit
        volatile = set()
        for op_id in self._topo:
            bit = freebit.get(op_id)
            own = 0 if bit is None else 1 << bit
            if (anc_mask[op_id] | own) & window_mask:
                volatile.add(op_id)
        self._volatile = frozenset(volatile)
        # candidate volatile anchors for the functional scorers: every
        # volatile operator that can anchor a group in *some* subspace
        # configuration.  Free non-sink operators anchor exactly when
        # their bit is set (pinned volatile bits are always set); bound
        # operators' flags never change, so they either always or never
        # anchor; sinks always anchor.  Collapsed-sink-ness is
        # configuration-independent: an anchor with any plan consumer is
        # consumed by whichever group holds that consumer (the anchor is
        # never a member of it), so ``anchor in self._sinks`` decides it.
        candidates: List[
            Tuple[int, Optional[int], bool, List[
                Tuple[int, Dict[int, Tuple[float, Tuple[int, ...]]]]
            ]]
        ] = []
        for op_id in self._topo:
            if op_id not in volatile:
                continue
            bit = freebit.get(op_id)
            is_sink = op_id in self._sinks
            if bit is None or is_sink:
                if not (is_sink or self._flags[op_id]):
                    continue  # bound, unmaterialized, no consumers feed it
                presence: Optional[int] = None
            else:
                presence = bit
            tables = self._window_state_cache.get(op_id)
            if tables is None:
                tables = self._window_state_cache[op_id] = []
            candidates.append((op_id, presence, is_sink, tables))
        self._window_candidates = candidates
        totals = self._total
        group_in = self._group_in
        cache = self._runtime_cache
        inner = self._collapsed_inner
        ff_prefix: Dict[int, float] = {}
        t_prefix: Dict[int, float] = {}
        best_ff: Optional[float] = None
        best_t: Optional[float] = None
        max_total = 0.0
        for anchor in self._collapsed_order:
            if anchor in volatile:
                continue
            total = totals[anchor]
            cached = cache.get(total)
            if cached is None:
                cached = cost_model.operator_runtime(
                    total, self.stats, exact_waste=self.exact_waste
                )
                cache[total] = cached
                self.runtime_cache_misses += 1
            if total > max_total:
                max_total = total
            ff_value = total
            t_value = cached
            incoming = group_in[anchor]
            if incoming:
                # a static anchor's producers are all static (ancestor
                # masks are transitively closed), so both prefixes exist
                ff_value = max(ff_prefix[p] for p in incoming) + ff_value
                t_value = max(t_prefix[p] for p in incoming) + t_value
            ff_prefix[anchor] = ff_value
            t_prefix[anchor] = t_value
            if anchor not in inner:  # a static collapsed sink
                if best_ff is None or ff_value > best_ff:
                    best_ff = ff_value
                if best_t is None or t_value > best_t:
                    best_t = t_value
        self._prefix_ff = ff_prefix
        self._prefix_t = t_prefix
        self._static_best_ff = best_ff
        self._static_best_t = best_t
        self._static_max_total = max_total
        self._window_mask = window_mask

    def _build_window_state(
        self,
        anchor: int,
        state: int,
        tables: List[Tuple[int, Dict[int, Tuple[float, Tuple[int, ...]]]]],
    ) -> Tuple[float, Tuple[int, ...]]:
        """Construct and cache ``(t(c), group in-edges)`` for one state.

        The member BFS reads free flags out of the ``state`` int (the
        kernel is never repositioned) and records its *support*: the
        free bits it observed -- expanded members, the materialized
        boundary it stopped at, and the anchor's own flag.  Any state
        agreeing on those bits walks the identical frontier, so the
        result is cached under ``state & support`` in the table for that
        support mask.  Caching under the full ancestor mask instead
        would defeat the cache: a sink group's ancestors span the whole
        window, but flags buried below a materialized cut cannot reach
        it.

        Exactly the float operations of the base class's group build:
        ``total = path_runtime * pipe + mat`` matches
        ``CollapsedOperator.total_cost = runtime_cost + mat_cost`` with
        ``runtime_cost = path_runtime * pipe``.
        """
        self.group_cache_misses += 1
        self.members_cache_misses += 1
        freebit = self._freebit
        flags = self._flags
        producers = self._producers
        bit = self._freebit.get(anchor)
        support = 0 if bit is None else 1 << bit
        collected = [anchor]
        visited = {anchor}
        pending = [anchor]  # members whose producers still need probing
        while pending:
            for probed in producers[pending.pop()]:
                pbit = freebit.get(probed)
                if pbit is None:
                    if flags[probed] or probed in visited:
                        continue
                else:
                    support |= 1 << pbit
                    if (state >> pbit) & 1 or probed in visited:
                        continue
                visited.add(probed)
                collected.append(probed)
                pending.append(probed)
        members = tuple(sorted(collected))
        dominant_path, path_runtime = self._dominant_path(members, anchor)
        pipe = self._const_pipe if len(dominant_path) > 1 else 1.0
        if bit is None:
            flagged = flags[anchor]
        else:
            flagged = bool((state >> bit) & 1)
        mat_cost = self._mat[anchor] if flagged else 0.0
        total = path_runtime * pipe + mat_cost
        member_set = visited
        group_in = tuple(sorted(
            {
                producer
                for member in members
                for producer in producers[member]
            } - member_set
        ))
        built = (total, group_in)
        for known, table in tables:
            if known == support:
                table[state & support] = built
                break
        else:
            tables.append((support, {state & support: built}))
        return built

    def window_bounds(self, state: int) -> Tuple[float, float]:
        """:meth:`cheap_bounds` of configuration ``state``, functionally.

        Walks the candidate volatile anchors (presence decided by
        ``state``'s bits), fetching each one's ``(t(c), in-edges)`` from
        its per-state cache -- the kernel is never repositioned, so a
        windowed scan does *no* flips at all.  Returns the same
        ``(R_max, max t(c))`` bit-for-bit: the static portion of both
        maxima was folded in by :meth:`prepare_window`, ``max`` over
        floats is split-point independent, and stale volatile prefixes
        are never read (every reader of a volatile prefix is itself
        volatile and overwritten first, in topological order).  Fills
        the scratch entry list :meth:`window_cost` consumes.
        """
        if self._window_mask is None:
            raise RuntimeError("prepare_window() before window_bounds()")
        prefix = self._prefix_ff
        best = self._static_best_ff
        max_total = self._static_max_total
        entries = self._scratch_entries
        entries.clear()
        misses_before = self.group_cache_misses
        for anchor, bit, is_sink, tables in self._window_candidates:
            if bit is not None and not (state >> bit) & 1:
                continue
            cached = None
            for support, table in tables:
                cached = table.get(state & support)
                if cached is not None:
                    break
            if cached is None:
                cached = self._build_window_state(anchor, state, tables)
            total, group_in = cached
            if total > max_total:
                max_total = total
            if group_in:
                if len(group_in) == 1:  # max of one is that one
                    value = prefix[group_in[0]] + total
                else:
                    value = max(prefix[p] for p in group_in) + total
            else:
                value = total
            prefix[anchor] = value
            entries.append((anchor, total, group_in, is_sink))
            if is_sink and (best is None or value > best):
                best = value
        self.group_cache_hits += (
            len(entries) - (self.group_cache_misses - misses_before)
        )
        assert best is not None  # a valid plan always has >= 1 path
        return best, max_total

    def window_cost(self) -> float:
        """:meth:`dominant_cost` of the configuration the last
        :meth:`window_bounds` call probed (it owns the scratch entries).

        Deferred on purpose: Rule-3 and batch-prefilter skips never pay
        for the failure-aware pass, and its scalar ``T(t(c))``
        evaluations stay memoized per distinct total.
        """
        if self._window_mask is None:
            raise RuntimeError("prepare_window() before window_cost()")
        cache = self._runtime_cache
        prefix = self._prefix_t
        best = self._static_best_t
        entries = self._scratch_entries
        for anchor, total, group_in, is_sink in entries:
            value = cache.get(total)
            if value is None:
                value = cost_model.operator_runtime(
                    total, self.stats, exact_waste=self.exact_waste
                )
                cache[total] = value
                self.runtime_cache_misses += 1
            if group_in:
                if len(group_in) == 1:  # max of one is that one
                    value = prefix[group_in[0]] + value
                else:
                    value = max(prefix[p] for p in group_in) + value
            prefix[anchor] = value
            if is_sink and (best is None or value > best):
                best = value
        self.runtime_lookups += len(entries)
        assert best is not None  # a valid plan always has >= 1 path
        return best

    def batch_runtime_bound(self, total: float) -> Optional[float]:
        """Batch-computed ``T(total)``, or ``None`` while still queued.

        Distinct totals are collected and pushed through one
        :func:`~repro.core.cost_model.operator_runtime_batch` call per
        :data:`BATCH_FLUSH` pending values.  A ``None`` answer simply
        declines to prefilter -- the caller scores exactly -- so deferring
        unseen totals costs nothing in correctness.
        """
        cached = self._batch_cache.get(total)
        if cached is None and total not in self._batch_pending_set:
            self._batch_pending_set.add(total)
            self._batch_pending.append(total)
            if len(self._batch_pending) >= BATCH_FLUSH:
                self.flush_batch()
                cached = self._batch_cache.get(total)
        return cached

    def flush_batch(self) -> None:
        """Score all pending totals through the NumPy batch kernel."""
        pending = self._batch_pending
        if not pending:
            return
        values = cost_model.operator_runtime_batch(
            pending, self.stats, exact_waste=self.exact_waste
        )
        cache = self._batch_cache
        for total, value in zip(pending, values):
            cache[total] = float(value)
        self.batch_flushes += 1
        pending.clear()
        self._batch_pending_set.clear()

    def counters(self) -> Dict[str, int]:
        tallies = super().counters()
        tallies["cache.members.hit"] = self.members_cache_hits
        tallies["cache.members.miss"] = self.members_cache_misses
        tallies["cache.batch.flushes"] = self.batch_flushes
        tallies["cache.window.preps"] = self.window_preps
        return tallies


# ----------------------------------------------------------------------
# shards: partitioning, the shared bound, the per-shard scan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardSpec:
    """One unit of search work: a Gray-sequence range of one plan.

    The shard covers positions ``[start, end)`` of ``plan_index``'s
    windowed Gray sequence (see :func:`subspace_params`): position ``i``
    scans mask ``(gray(i) << shift) | pinned``.  Plain ints: cheap to
    pickle, trivially re-submittable after a worker death.
    """

    index: int        #: global shard number (merge order)
    plan_index: int   #: candidate plan this shard scans
    start: int        #: first Gray-sequence position (inclusive)
    end: int          #: last Gray-sequence position (exclusive)
    shift: int = 0    #: window offset of the searched subspace
    pinned: int = 0   #: mask bits pinned to materialized


@dataclass(frozen=True)
class ShardOutcome:
    """What one shard scan found and how hard it worked."""

    index: int
    best: Optional[_BestKey]
    enumerated: int          #: configurations visited
    scored: int              #: exact scoring DP runs
    bound_skips: int         #: Rule-3 skips against the shared bound
    bound_updates: int       #: strict improvements published to the bound
    batch_prefiltered: int   #: skips certified by the batch prefilter
    snapshot: Optional[obs.RecorderSnapshot] = None
    duration: float = 0.0    #: wall seconds the scan took (telemetry only)


class BoundChannel:
    """Monotone best-dominant-cost bound, optionally shared across processes.

    ``best`` only ever decreases.  ``refresh`` folds in the shared cell
    (when present); ``publish`` lowers the local bound and propagates
    strict improvements to the cell.  All cell access is lock-guarded, so
    a torn read can never produce a bound lower than any true cost.
    """

    def __init__(self, cell: Optional[Any] = None) -> None:
        self._cell = cell
        self.best = float("inf")
        self.updates = 0

    def refresh(self) -> None:
        if self._cell is None:
            return
        with self._cell.get_lock():
            external = self._cell.value
        if external < self.best:
            self.best = external

    def publish(self, cost: float) -> None:
        if cost >= self.best:
            return
        self.best = cost
        self.updates += 1
        if self._cell is not None:
            with self._cell.get_lock():
                if cost < self._cell.value:
                    self._cell.value = cost


#: wall seconds one shard should take under adaptive sizing -- long
#: enough to amortize per-shard setup, short enough that the slowest
#: shard cannot idle the pool for long (work stealing stays effective)
TARGET_SHARD_SECONDS = 0.2


class ShardSizer:
    """Adaptive shard-count recommendation from observed scan rates.

    :data:`SHARDS_PER_WORKER` is a blind default: it over-partitions
    enough for work stealing but knows nothing about how fast a
    configuration actually scans, so small searches get carved into
    setup-dominated slivers and huge ones into shards that run for
    seconds.  The sizer closes the loop: every finished scan's
    :class:`ShardOutcome` durations update an EWMA of the configs/second
    rate, keyed by a *plan-size bucket* (the bit length of the total
    searched config count, so a 1k-config search never pollutes the rate
    learned for a 1M-config one), and the next search in the same bucket
    gets ``shards = total / (rate * target_seconds)``.

    Sizing only ever changes *partitioning*, never results: the sharded
    reduce takes a lexicographic minimum over shard bests, which is
    independent of where the shard boundaries fall (pinned by the
    determinism suite across shard counts).  Recommendations are clamped
    to ``[parallelism, total // MIN_SHARD_CONFIGS]`` so every worker has
    work and no shard drops below the setup floor.

    Thread safety: mutation and reads are lock-guarded -- the advisory
    engine shares one sizer across concurrent request threads.
    """

    def __init__(
        self,
        target_seconds: float = TARGET_SHARD_SECONDS,
        alpha: float = 0.4,
    ) -> None:
        if target_seconds <= 0:
            raise ValueError("target_seconds must be > 0")
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.target_seconds = target_seconds
        self.alpha = alpha
        #: plan-size bucket -> EWMA configs/second
        self._rates: Dict[int, float] = {}
        self._lock = threading.Lock()

    @staticmethod
    def bucket(total_configs: int) -> int:
        """Bucket key: the bit length of the searched config count."""
        return max(1, total_configs).bit_length()

    def observe(self, outcomes: Sequence[ShardOutcome]) -> None:
        """Fold one finished search's shard durations into the rate.

        ``sum(enumerated)`` is the searched config count (skipped
        configurations still enumerate), so the outcomes alone identify
        the bucket.  Sub-millisecond aggregate durations are ignored:
        the rate estimate would be all timer noise.
        """
        total = sum(outcome.enumerated for outcome in outcomes)
        seconds = sum(outcome.duration for outcome in outcomes)
        if total <= 0 or seconds < 1e-3:
            return
        rate = total / seconds
        key = self.bucket(total)
        with self._lock:
            previous = self._rates.get(key)
            if previous is None:
                self._rates[key] = rate
            else:
                self._rates[key] = (
                    self.alpha * rate + (1.0 - self.alpha) * previous
                )

    def recommend(
        self, total_configs: int, parallelism: int
    ) -> Optional[int]:
        """Shard count for a search of ``total_configs``, or ``None``
        when the bucket has no observations yet (caller keeps its
        default)."""
        with self._lock:
            rate = self._rates.get(self.bucket(total_configs))
        if rate is None or total_configs <= 0:
            return None
        ideal = total_configs / (rate * self.target_seconds)
        ceiling = max(parallelism, total_configs // MIN_SHARD_CONFIGS)
        return max(parallelism, min(ceiling, int(ideal) or 1))

    def snapshot_rates(self) -> Dict[int, float]:
        """Copy of the learned per-bucket rates (introspection only)."""
        with self._lock:
            return dict(self._rates)


def partition_shards(
    subspaces: Sequence[Tuple[int, int, int]],
    shards: int,
    min_shard: int = MIN_SHARD_CONFIGS,
) -> List[ShardSpec]:
    """Chop per-plan subspaces (``(count, shift, pinned)`` triples, as
    from :func:`subspace_params`) into at most ``shards`` ranges.

    The target size is ``ceil(total / shards)`` floored at ``min_shard``;
    each plan's space is cut independently (a shard never spans plans, so
    a worker's kernel cache stays hot within a shard).  Deterministic in
    its inputs -- the driver and any retry round derive identical specs.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    total = sum(count for count, _, _ in subspaces)
    size = max(min_shard, -(-total // shards))
    specs: List[ShardSpec] = []
    for plan_index, (count, shift, pinned) in enumerate(subspaces):
        start = 0
        while start < count:
            end = min(count, start + size)
            specs.append(ShardSpec(
                index=len(specs), plan_index=plan_index,
                start=start, end=end, shift=shift, pinned=pinned,
            ))
            start = end
    return specs


def scan_shard(
    kernel: ShardKernel,
    spec: ShardSpec,
    use_rule3: bool,
    channel: BoundChannel,
    stride: int = BOUND_STRIDE,
) -> ShardOutcome:
    """Scan one Gray-sequence range; return the shard's best key.

    Reproduces the serial fast engine's per-configuration decisions
    exactly, except that skips may additionally come from the shared
    bound or the certified batch prefilter -- both of which only ever
    discard configurations strictly worse than the final winner, so the
    reduced ``(cost, plan, mask)`` minimum is unchanged.
    """
    mtbf_cost = kernel.stats.mtbf_cost
    best: Optional[_BestKey] = None
    enumerated = 0
    bound_skips = 0
    prefiltered = 0
    scored = 0
    updates_before = channel.updates
    started = time.perf_counter()
    channel.refresh()
    shift, pinned = spec.shift, spec.pinned
    kernel.set_mask(subspace_mask(spec.start, shift, pinned))
    # freeze the static-region DP tables (cached across shards of the
    # same plan on the same worker: the window never changes mid-search).
    # The scan itself never repositions the kernel -- the window scorers
    # are pure functions of the mask -- so the Gray sequence below is
    # plain int arithmetic.
    kernel.prepare_window(((1 << len(kernel.free_ids)) - 1) ^ pinned)
    for position in range(spec.start, spec.end):
        mask = ((position ^ (position >> 1)) << shift) | pinned
        if position != spec.start and (position - spec.start) % stride == 0:
            channel.refresh()
        enumerated += 1
        r_max, max_total = kernel.window_bounds(mask)
        if use_rule3:
            bound = channel.best
            if r_max >= bound:
                bound_skips += 1
                if r_max > bound:
                    continue
            # like Rule 3, the certified batch prefilter is a cost-based
            # cutoff: without rule3 the caller asked for exhaustive
            # scoring, so it must not skip anything
            batch_value = kernel.batch_runtime_bound(max_total)
            if batch_value is not None and cost_model.batch_certified_exceeds(
                batch_value, bound, max_total, mtbf_cost
            ):
                prefiltered += 1
                continue
        total = kernel.window_cost()
        scored += 1
        key = (total, spec.plan_index, mask)
        if best is None or key < best:
            best = key
        channel.publish(total)
    return ShardOutcome(
        index=spec.index,
        best=best,
        enumerated=enumerated,
        scored=scored,
        bound_skips=bound_skips,
        bound_updates=channel.updates - updates_before,
        batch_prefiltered=prefiltered,
        duration=time.perf_counter() - started,
    )


# ----------------------------------------------------------------------
# process-pool plumbing (mirrors repro.engine.campaign's resilient runner)
# ----------------------------------------------------------------------
_WORKER_STATE: Dict[str, Any] = {}


def _shard_init(
    plans: Sequence[Plan],
    stats: ClusterStats,
    pruning: PruningConfig,
    exact_waste: bool,
    cell: Any,
    observe: bool = False,
    chaos: Optional[FaultPolicy] = None,
    round_no: int = 0,
) -> None:
    _WORKER_STATE["plans"] = plans  # already Rule 1/2-pruned by the parent
    _WORKER_STATE["stats"] = stats
    _WORKER_STATE["pruning"] = pruning
    _WORKER_STATE["exact_waste"] = exact_waste
    _WORKER_STATE["channel"] = BoundChannel(cell)
    _WORKER_STATE["kernels"] = {}
    _WORKER_STATE["folded"] = {}
    _WORKER_STATE["chaos"] = chaos
    _WORKER_STATE["round_no"] = round_no
    #: crash injection only ever fires inside pool workers -- the serial
    #: path and the serial fallback never set this flag
    _WORKER_STATE["in_worker"] = True
    if observe:
        # parent had a recorder on: record in this worker too; snapshots
        # ride back with each shard outcome and merge in shard order
        obs.enable()


def _maybe_crash(shard_index: int) -> None:
    """Hard-exit the worker process when the chaos policy says so.

    The kill is the chaos layer's
    :func:`~repro.chaos.inject.crash_worker_process` primitive (the only
    sanctioned hard-exit in the tree; lint rule S003).  Decisions are
    keyed by the retry round, so a crashed shard draws fresh dice on
    every retry and the resilient loop terminates for any rate < 1.
    """
    chaos: Optional[FaultPolicy] = _WORKER_STATE.get("chaos")
    if (
        chaos is None or not chaos.pool_active()
        or not _WORKER_STATE.get("in_worker")
    ):
        return
    from ..chaos.inject import crash_worker_process, worker_crash_decision

    assert chaos.worker_crashes is not None
    if worker_crash_decision(
        chaos.seed, chaos.worker_crashes.rate,
        _WORKER_STATE.get("round_no", 0), shard_index,
    ):
        crash_worker_process(17)


def _kernel_for(
    plan_index: int,
    plans: Sequence[Plan],
    stats: ClusterStats,
    exact_waste: bool,
    kernels: Dict[int, ShardKernel],
) -> ShardKernel:
    kernel = kernels.get(plan_index)
    if kernel is None:
        kernel = ShardKernel(
            plans[plan_index], stats, exact_waste=exact_waste
        )
        kernels[plan_index] = kernel
    return kernel


def _fold_kernel_counters(
    recorder: Any,
    kernel: ShardKernel,
    plan_index: int,
    folded: Dict[int, Dict[str, int]],
) -> None:
    """Add the kernel's tallies *since the last fold* to the recorder.

    Kernels outlive shards (a worker reuses them across tasks) while the
    worker recorder resets per task, so deltas -- not totals -- must ship
    with each snapshot or recycled kernels would double-count.
    """
    current = kernel.counters()
    last = folded.get(plan_index, {})
    for name, value in current.items():
        delta = value - last.get(name, 0)
        if delta:
            recorder.add(name, delta)
    folded[plan_index] = current


def _scan_shard_task(spec: ShardSpec) -> ShardOutcome:
    """Worker-side entry: scan one shard with worker-local state."""
    _maybe_crash(spec.index)
    kernel = _kernel_for(
        spec.plan_index, _WORKER_STATE["plans"], _WORKER_STATE["stats"],
        _WORKER_STATE["exact_waste"], _WORKER_STATE["kernels"],
    )
    pruning: PruningConfig = _WORKER_STATE["pruning"]
    outcome = scan_shard(
        kernel, spec, pruning.rule3, _WORKER_STATE["channel"]
    )
    recorder = obs.get_recorder()
    if recorder is None:
        return outcome
    _fold_kernel_counters(
        recorder, kernel, spec.plan_index, _WORKER_STATE["folded"]
    )
    snapshot = recorder.snapshot()
    # fresh recorder per task so recycled workers don't re-ship spans
    # and counters an earlier shard already delivered
    obs.enable()
    return ShardOutcome(
        index=outcome.index, best=outcome.best,
        enumerated=outcome.enumerated, scored=outcome.scored,
        bound_skips=outcome.bound_skips,
        bound_updates=outcome.bound_updates,
        batch_prefiltered=outcome.batch_prefiltered,
        snapshot=snapshot,
        duration=outcome.duration,
    )


def _scan_serial(
    plans: Sequence[Plan],
    stats: ClusterStats,
    pruning: PruningConfig,
    exact_waste: bool,
    specs: Sequence[ShardSpec],
    channel: Optional[BoundChannel] = None,
) -> List[ShardOutcome]:
    """In-process shard scan: the ``parallelism=1`` path and the
    resilient runner's serial fallback (which passes a cell-backed
    channel so bounds published by dead workers still apply)."""
    if channel is None:
        channel = BoundChannel()
    kernels: Dict[int, ShardKernel] = {}
    outcomes = [
        scan_shard(
            _kernel_for(spec.plan_index, plans, stats, exact_waste,
                        kernels),
            spec, pruning.rule3, channel,
        )
        for spec in specs
    ]
    recorder = obs.get_recorder()
    if recorder is not None:
        folded: Dict[int, Dict[str, int]] = {}
        for plan_index in sorted(kernels):
            _fold_kernel_counters(
                recorder, kernels[plan_index], plan_index, folded
            )
    return outcomes


def _scan_resilient(
    plans: Sequence[Plan],
    stats: ClusterStats,
    pruning: PruningConfig,
    exact_waste: bool,
    specs: Sequence[ShardSpec],
    workers: int,
    chaos: Optional[FaultPolicy],
    max_retries: int,
    retry_backoff: float,
) -> List[ShardOutcome]:
    """Pooled shard execution surviving worker deaths.

    Each round submits the still-unfinished shards to a fresh
    :class:`~concurrent.futures.ProcessPoolExecutor`; a shard whose
    future fails (a worker died mid-shard, breaking the pool) stays
    pending for the next round.  After the retry budget, pending shards
    degrade gracefully to in-process execution.  Shards are pure up to
    the bound (which only affects *how much* work a scan does, never its
    best key), so a shard scanned on any round -- or in-process --
    contributes the identical key to the reduce.
    """
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    recorder = obs.get_recorder()
    cell = multiprocessing.Value("d", float("inf"))
    outcomes: List[Optional[ShardOutcome]] = [None] * len(specs)
    pending = list(range(len(specs)))
    for round_no in range(max_retries + 1):
        if not pending:
            break
        if round_no > 0:
            if recorder is not None:
                recorder.add("search.retries", len(pending))
            time.sleep(retry_backoff * (2.0 ** (round_no - 1)))
        executor = ProcessPoolExecutor(
            max_workers=min(workers, len(pending)),
            initializer=_shard_init,
            initargs=(plans, stats, pruning, exact_waste, cell,
                      recorder is not None, chaos, round_no),
        )
        still_pending: List[int] = []
        try:
            futures = [
                (index, executor.submit(_scan_shard_task, specs[index]))
                for index in pending
            ]
            for index, future in futures:
                try:
                    outcomes[index] = future.result()
                except Exception:
                    # the worker died under this shard (or took the
                    # whole pool down): retry it on a fresh pool
                    still_pending.append(index)
        finally:
            executor.shutdown(wait=True)
        pending = still_pending
    if pending:
        # graceful degradation: finish in-process.  The serial path never
        # injects crashes, so this terminates even at crash rate 1.0; the
        # cell-backed channel keeps every bound the workers published.
        if recorder is not None:
            recorder.add("search.serial_fallbacks", len(pending))
        fallback = _scan_serial(
            plans, stats, pruning, exact_waste,
            [specs[index] for index in pending],
            channel=BoundChannel(cell),
        )
        for index, outcome in zip(pending, fallback):
            outcomes[index] = outcome
    complete: List[ShardOutcome] = []
    for index, outcome in enumerate(outcomes):
        if outcome is None:  # pragma: no cover - defensive
            raise RuntimeError(f"search shard {index} was never run")
        complete.append(outcome)
    return complete


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------
def config_space(plan: Plan, config_limit: Optional[int] = None) -> int:
    """``2^n`` capped at ``config_limit`` (the searched subspace size)."""
    space = 1 << len(plan.free_operators)
    if config_limit is not None:
        space = min(space, config_limit)
    return space


def sharded_search(
    plans: Sequence[Plan],
    stats: ClusterStats,
    pruning: PruningConfig,
    exact_waste: bool = False,
    parallelism: int = 1,
    shards: Optional[int] = None,
    config_limit: Optional[int] = None,
    chaos: Optional[FaultPolicy] = None,
    max_retries: int = 3,
    retry_backoff: float = 0.05,
    shard_observer: Optional[
        Callable[[Sequence[ShardOutcome]], None]
    ] = None,
) -> Tuple[_BestKey, PruningStats]:
    """Scan every plan's (capped) config space across shards; reduce.

    Rule 1/2 run once per plan *in the parent*, so their ``marked``
    counters are deterministic and every shard scans the same pruned
    plan.  Returns the lexicographically minimal ``(cost, plan, mask)``
    key -- bit-identical to the serial fast engine and the naive oracle
    over the same subspace -- plus the merged :class:`PruningStats`
    (Rule-3 / estimation counters are timing-dependent under
    ``parallelism > 1``; totals and enumerated counts are not).

    ``shard_observer`` (when given) receives the complete, shard-index
    ordered outcome list after the reduce -- this is how
    :class:`ShardSizer` learns scan rates without the search layer
    knowing about adaptive sizing.  Observer exceptions propagate; it
    runs after the best key is final, so it can never affect results.
    """
    plan_list = list(plans)
    if not plan_list:
        raise ValueError("no candidate plans supplied")
    if parallelism < 1:
        raise ValueError("parallelism must be >= 1")
    if shards is None:
        shards = SHARDS_PER_WORKER * parallelism
    if config_limit is not None and config_limit < 1:
        raise ValueError("config_limit must be >= 1")

    pruning_stats = PruningStats()
    pruned_plans: List[Plan] = []
    subspaces: List[Tuple[int, int, int]] = []
    for plan in plan_list:
        pruning_stats.configs_total += config_space(plan, config_limit)
        pruned = plan
        if pruning.rule1:
            pruned = apply_rule1(
                pruned, stats.const_pipe, stats_out=pruning_stats
            )
        if pruning.rule2:
            pruned = apply_rule2(pruned, stats, stats_out=pruning_stats)
        pruned_plans.append(pruned)
        subspaces.append(
            subspace_params(len(pruned.free_operators), config_limit)
        )
    specs = partition_shards(subspaces, shards)

    recorder = obs.get_recorder()
    with obs.span("search.sharded", plans=len(plan_list),
                  shards=len(specs), parallelism=parallelism):
        workers = min(parallelism, len(specs))
        if workers <= 1:
            outcomes = _scan_serial(
                pruned_plans, stats, pruning, exact_waste, specs
            )
        else:
            outcomes = _scan_resilient(
                pruned_plans, stats, pruning, exact_waste, specs,
                workers, chaos, max_retries, retry_backoff,
            )

    best_key: Optional[_BestKey] = None
    bound_updates = 0
    bound_skips = 0
    batch_prefiltered = 0
    for outcome in outcomes:  # shard-index order: deterministic merge
        pruning_stats.configs_enumerated += outcome.enumerated
        pruning_stats.paths_estimated += outcome.scored
        pruning_stats.rule3_plan_cutoffs += outcome.bound_skips
        bound_updates += outcome.bound_updates
        bound_skips += outcome.bound_skips
        batch_prefiltered += outcome.batch_prefiltered
        if recorder is not None and outcome.snapshot is not None:
            recorder.merge(outcome.snapshot,
                           track=f"search-shard-{outcome.index}")
        if outcome.best is not None and (
            best_key is None or outcome.best < best_key
        ):
            best_key = outcome.best
    if recorder is not None:
        recorder.add("search.shards", len(specs))
        recorder.add("search.bound_updates", bound_updates)
        recorder.add("search.bound_skips", bound_skips)
        recorder.add("search.batch_prefiltered", batch_prefiltered)
    if shard_observer is not None:
        shard_observer(outcomes)
    assert best_key is not None  # every spec scans >= 1 configuration
    return best_key, pruning_stats
