"""Incremental search context for fast materialization-configuration sweeps.

The naive search (``find_best_ft_plan``'s ``engine="naive"`` path)
rebuilds a full :class:`~repro.core.plan.Plan` via ``with_mat_config``
for every one of the ``2^n`` configurations -- re-running the cycle check
per edge -- and then re-collapses the whole DAG from scratch.  This
module holds the per-plan state that makes the sweep cheap instead:

* **validate once** -- plan validation, topological order,
  producer/consumer adjacency and the free-operator index are computed a
  single time and reused for every configuration;
* **bitmask configs** -- a configuration is an integer mask over
  ``free_ids``; no plan copies are made during the sweep;
* **incremental collapse** -- stepping between configurations in
  Gray-code order flips exactly one operator, and only the collapsed
  groups whose membership can change are recomputed (plus a cache keyed
  by ``(anchor, members, m(anchor))`` so revisited group states are
  free);
* **exact scoring by DP** -- the dominant-path cost is a longest-path
  dynamic program over the collapsed DAG instead of enumerating every
  source-to-sink path.

Exactness
---------
The context is *bit-identical* to the naive pipeline, not merely close:

* Group construction replicates ``collapse_plan`` operation for
  operation (same member BFS, same longest-path DP with the same
  ``max``/tie-break, same ``CONST_pipe`` application), so every
  ``t(c)`` equals the naive value bit-for-bit.
* A path cost in the naive engine is a left-fold ``sum`` of ``T(c)``.
  The DP computes ``pre[c] = max(pre[producer]) + T(c)`` with
  ``pre[source] = T(source)``, which performs the additions in the same
  order as the left fold for whichever path realizes the maximum; since
  float addition of non-negative terms is monotone, the DP maximum over
  sinks equals the maximum over all enumerated path sums bit-for-bit.
* ``T(c)`` values come from a memoized *scalar*
  :func:`~repro.core.cost_model.operator_runtime` cache rather than the
  NumPy batch kernel: ``np.exp``/``np.log``/``np.expm1`` differ from
  ``math.*`` in the last ulp for a few percent of inputs, which would
  break oracle equality in engineered ties (see
  :func:`~repro.core.cost_model.operator_runtime_batch`).

Incremental-collapse invariants (single-bit flip of operator ``o``):

* ``o`` becomes materialized: exactly the groups that previously
  contained ``o`` shrink, and ``o`` gains a group of its own.
* ``o`` stops materializing: exactly the groups containing a consumer
  of ``o`` absorb ``o`` (and its non-materialized ancestry), and ``o``'s
  own group disappears -- unless ``o`` is a sink, which stays an anchor
  with ``tm = 0``.
* In both directions every other group's members *and* collapsed
  in-edges are provably unchanged, because group membership depends only
  on the flags of the group's own ancestry and every producer outside a
  group is materialized by construction.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from . import cost_model
from .collapse import CollapsedOperator, CollapsedPlan
from .cost_model import ClusterStats
from .plan import Plan

#: mirrors ``enumeration.MatConfig`` (kept local to avoid an import cycle)
MatConfig = Tuple[Tuple[int, bool], ...]

#: cached group state: the collapsed operator plus its in-edge anchors
_GroupState = Tuple[CollapsedOperator, Tuple[int, ...]]


class SearchContext:
    """Mutable per-plan state for enumerating materialization configs.

    Parameters
    ----------
    plan:
        The candidate plan (validated once, never mutated; its current
        ``m(o)`` flags seed the context state).
    stats:
        Cluster statistics; supplies ``CONST_pipe`` for collapsing and
        the cost-model inputs for scoring.
    exact_waste:
        Use the exact wasted-runtime integral when scoring.
    """

    def __init__(
        self,
        plan: Plan,
        stats: ClusterStats,
        exact_waste: bool = False,
    ) -> None:
        plan.validate()
        self.plan = plan
        self.stats = stats
        self.exact_waste = exact_waste
        self._const_pipe = stats.const_pipe

        self._topo: List[int] = plan.topological_order()
        self._producers: Dict[int, Tuple[int, ...]] = {
            op_id: tuple(plan.producers(op_id)) for op_id in self._topo
        }
        self._consumers: Dict[int, Tuple[int, ...]] = {
            op_id: tuple(plan.consumers(op_id)) for op_id in self._topo
        }
        self._runtime: Dict[int, float] = {
            op_id: plan[op_id].runtime_cost for op_id in self._topo
        }
        self._mat: Dict[int, float] = {
            op_id: plan[op_id].mat_cost for op_id in self._topo
        }
        self._sinks = frozenset(plan.sinks)
        self.free_ids: Tuple[int, ...] = tuple(plan.free_operators)
        self._flags: Dict[int, bool] = {
            op_id: plan[op_id].materialize for op_id in self._topo
        }
        self.mask: int = sum(
            1 << bit
            for bit, op_id in enumerate(self.free_ids)
            if self._flags[op_id]
        )

        # incremental collapse state
        self._groups: Dict[int, CollapsedOperator] = {}
        self._group_in: Dict[int, Tuple[int, ...]] = {}
        #: original op -> anchors whose group currently contains it
        self._membership: Dict[int, Set[int]] = {
            op_id: set() for op_id in self._topo
        }
        self._group_cache: Dict[
            Tuple[int, Tuple[int, ...], bool], _GroupState
        ] = {}

        # collapsed-DAG traversal cache (invalidated on every flip)
        self._order_dirty = True
        self._collapsed_order: List[int] = []
        self._collapsed_inner: Set[int] = set()

        #: memoized scalar T(c) per distinct t(c) (bit-identical to naive)
        self._runtime_cache: Dict[float, float] = {}

        # -- observability tallies (plain ints; folded into repro.obs by
        # the search engines at scan end, never read per configuration)
        self.full_collapses = 0       #: from-scratch group builds
        self.incremental_flips = 0    #: single-bit Gray-code repairs
        self.group_cache_hits = 0     #: group states recalled from cache
        self.group_cache_misses = 0   #: group states computed fresh
        self.runtime_lookups = 0      #: T(c) cache probes while scoring
        self.runtime_cache_misses = 0  #: probes that ran the cost model

        self.full_collapses += 1
        for op_id in self._topo:
            if self._flags[op_id] or op_id in self._sinks:
                self._rebuild_group(op_id)

    # ------------------------------------------------------------------
    # pickling
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        """Slim pickle: the *inputs* plus the current position, nothing
        derived.

        A context accumulates large memo caches (``_group_cache``,
        ``_runtime_cache``, membership sets) that every worker can
        rebuild lazily from the plan alone; shipping them would dominate
        the payload by an order of magnitude and buy nothing -- the
        caches are only warm for configurations the *sender* visited.
        The restored context re-derives everything in ``__init__`` and
        steps to the pickled mask, so it scores every configuration
        bit-identically to the original (the property suite pins this).
        Observability tallies restart at zero: they count work actually
        performed per process, which is what the cross-process merge
        expects.

        Subclasses (:class:`~repro.core.shard.ShardKernel`) inherit this
        unchanged -- ``__setstate__`` dispatches to ``type(self)``'s
        constructor, so a kernel round-trips as a kernel.
        """
        return {
            "plan": self.plan,
            "stats": self.stats,
            "exact_waste": self.exact_waste,
            "mask": self.mask,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__init__(  # type: ignore[misc]
            state["plan"], state["stats"],
            exact_waste=state["exact_waste"],
        )
        self.set_mask(state["mask"])

    # ------------------------------------------------------------------
    # configuration stepping
    # ------------------------------------------------------------------
    def config_for(self, mask: int) -> MatConfig:
        """The ``(op_id, flag)`` tuple a bitmask denotes (naive order)."""
        return tuple(
            (op_id, bool(mask >> bit & 1))
            for bit, op_id in enumerate(self.free_ids)
        )

    def set_mask(self, mask: int) -> None:
        """Jump to an arbitrary configuration, flipping only changed bits."""
        if not 0 <= mask < (1 << len(self.free_ids)):
            raise ValueError(f"mask {mask} out of range for "
                             f"{len(self.free_ids)} free operators")
        diff = self.mask ^ mask
        while diff:
            bit = (diff & -diff).bit_length() - 1
            self._flip(self.free_ids[bit])
            diff &= diff - 1
        self.mask = mask

    def iter_masks(self, order: str = "gray") -> Iterator[int]:
        """Step through all ``2^n`` configurations, updating state in place.

        ``order="gray"`` flips exactly one operator per step (fastest);
        ``order="sequential"`` visits masks in the naive engine's
        counting order (about two flips per step on average), for
        callers whose accounting depends on enumeration order (the
        Figure 13 experiment).  Scoring methods always reflect the last
        yielded mask.
        """
        total = 1 << len(self.free_ids)
        if order == "gray":
            self.set_mask(0)
            yield 0
            gray = 0
            for index in range(1, total):
                next_gray = index ^ (index >> 1)
                bit = (gray ^ next_gray).bit_length() - 1
                self._flip(self.free_ids[bit])
                gray = next_gray
                self.mask = gray
                yield gray
        elif order == "sequential":
            for mask in range(total):
                self.set_mask(mask)
                yield mask
        else:
            raise ValueError(f"unknown iteration order {order!r}")

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def failure_free_dominant(self) -> float:
        """``R_max`` -- the most expensive path's failure-free runtime."""
        return self._dominant_total(failure_free=True)

    def dominant_cost(self) -> float:
        """``T_max`` -- the dominant path's runtime under failures.

        Equals ``estimate_plan_cost(plan.with_mat_config(...), ...).cost``
        bit-for-bit (see the module docstring).
        """
        return self._dominant_total(failure_free=False)

    def dominant_scores(self) -> Tuple[float, float]:
        """``(R_max, T_max)`` fused into a single collapsed-DAG pass.

        The Rule 3 branch of the fast scan needs the failure-free bound
        ``R_max`` for the cheap check and -- whenever the check does not
        prune -- the full dominant cost ``T_max``; computing them
        separately walks the collapsed DAG twice.  This fused pass runs
        both dynamic programs side by side.  The two accumulations are
        independent (each anchor's ``R`` prefix only reads ``R``
        prefixes, ``T`` only ``T``), performing exactly the additions
        and comparisons of :meth:`failure_free_dominant` and
        :meth:`dominant_cost` in the same order, so each component is
        bit-identical to its standalone counterpart.
        """
        self._refresh_order()
        groups = self._groups
        group_in = self._group_in
        cache = self._runtime_cache
        inner = self._collapsed_inner
        ff_prefix: Dict[int, float] = {}
        prefix: Dict[int, float] = {}
        best_ff: Optional[float] = None
        best: Optional[float] = None
        for anchor in self._collapsed_order:
            total = groups[anchor].total_cost
            cached = cache.get(total)
            if cached is None:
                cached = cost_model.operator_runtime(
                    total, self.stats, exact_waste=self.exact_waste
                )
                cache[total] = cached
                self.runtime_cache_misses += 1
            ff_value = total
            value = cached
            incoming = group_in[anchor]
            if incoming:
                ff_value = max(ff_prefix[p] for p in incoming) + ff_value
                value = max(prefix[p] for p in incoming) + value
            ff_prefix[anchor] = ff_value
            prefix[anchor] = value
            if anchor not in inner:  # a collapsed sink ends a path
                if best_ff is None or ff_value > best_ff:
                    best_ff = ff_value
                if best is None or value > best:
                    best = value
        self.runtime_lookups += len(self._collapsed_order)
        assert best_ff is not None and best is not None
        return best_ff, best

    def _dominant_total(self, failure_free: bool) -> float:
        self._refresh_order()
        groups = self._groups
        group_in = self._group_in
        cache = self._runtime_cache
        inner = self._collapsed_inner
        prefix: Dict[int, float] = {}
        best: Optional[float] = None
        for anchor in self._collapsed_order:
            total = groups[anchor].total_cost
            if failure_free:
                value = total
            else:
                cached = cache.get(total)
                if cached is None:
                    cached = cost_model.operator_runtime(
                        total, self.stats, exact_waste=self.exact_waste
                    )
                    cache[total] = cached
                    self.runtime_cache_misses += 1
                value = cached
            incoming = group_in[anchor]
            if incoming:
                value = max(prefix[p] for p in incoming) + value
            prefix[anchor] = value
            if anchor not in inner:  # a collapsed sink ends a path
                if best is None or value > best:
                    best = value
        if not failure_free:
            # one bulk increment per scoring call, not one per anchor
            self.runtime_lookups += len(self._collapsed_order)
        assert best is not None  # a valid plan always has >= 1 path
        return best

    @property
    def runtime_cache_hits(self) -> int:
        """T(c) probes answered from the memo (lookups minus misses)."""
        return self.runtime_lookups - self.runtime_cache_misses

    def counters(self) -> Dict[str, int]:
        """The context's observability tallies, in ``repro.obs`` naming."""
        return {
            "search.collapse.full": self.full_collapses,
            "search.collapse.incremental": self.incremental_flips,
            "cache.group.hit": self.group_cache_hits,
            "cache.group.miss": self.group_cache_misses,
            "cache.runtime.hit": self.runtime_cache_hits,
            "cache.runtime.miss": self.runtime_cache_misses,
        }

    # ------------------------------------------------------------------
    # collapsed-plan export (for callers that enumerate paths themselves)
    # ------------------------------------------------------------------
    def build_collapsed(self) -> CollapsedPlan:
        """Materialize the current state as a real :class:`CollapsedPlan`.

        Group and edge *sets* are identical to
        ``collapse_plan(plan.with_mat_config(...))``; path enumeration,
        sources/sinks and topological order sort their frontiers, so
        downstream consumers see exactly the order the naive pipeline
        produces.
        """
        collapsed = CollapsedPlan()
        for anchor in sorted(self._groups):
            collapsed.add_group(self._groups[anchor])
        for anchor in sorted(self._groups):
            for producer in self._group_in[anchor]:
                collapsed.add_edge(producer, anchor)
        return collapsed

    # ------------------------------------------------------------------
    # incremental collapse
    # ------------------------------------------------------------------
    def _flip(self, op_id: int) -> None:
        """Toggle ``m(op_id)`` and repair exactly the affected groups."""
        self.incremental_flips += 1
        becoming_materialized = not self._flags[op_id]
        if becoming_materialized:
            # groups that contained o shrink; o anchors a new group
            affected = [
                anchor for anchor in self._membership[op_id]
                if anchor != op_id
            ]
            self._flags[op_id] = True
            self._rebuild_group(op_id)
        else:
            # groups holding a consumer of o absorb o's ancestry
            affected_set: Set[int] = set()
            for consumer in self._consumers[op_id]:
                affected_set.update(self._membership[consumer])
            affected_set.discard(op_id)
            affected = sorted(affected_set)
            self._flags[op_id] = False
            if op_id in self._sinks:
                self._rebuild_group(op_id)  # stays an anchor, tm -> 0
            else:
                self._drop_group(op_id)
        for anchor in affected:
            self._rebuild_group(anchor)
        self._order_dirty = True

    def _rebuild_group(self, anchor: int) -> None:
        old = self._groups.get(anchor)
        if old is not None:
            for member in old.members:
                self._membership[member].discard(anchor)
        members = self._members_of(anchor)
        key = (anchor, members, self._flags[anchor])
        cached = self._group_cache.get(key)
        if cached is not None:
            self.group_cache_hits += 1
        else:
            self.group_cache_misses += 1
            dominant_path, path_runtime = self._dominant_path(members, anchor)
            pipe = self._const_pipe if len(dominant_path) > 1 else 1.0
            mat_cost = self._mat[anchor] if self._flags[anchor] else 0.0
            group = CollapsedOperator(
                anchor_id=anchor,
                members=frozenset(members),
                runtime_cost=path_runtime * pipe,
                mat_cost=mat_cost,
                dominant_path=tuple(dominant_path),
            )
            member_set = frozenset(members)
            group_in = tuple(sorted(
                {
                    producer
                    for member in members
                    for producer in self._producers[member]
                } - member_set
            ))
            cached = (group, group_in)
            self._group_cache[key] = cached
        group, group_in = cached
        self._groups[anchor] = group
        self._group_in[anchor] = group_in
        for member in group.members:
            self._membership[member].add(anchor)
        self._order_dirty = True

    def _drop_group(self, anchor: int) -> None:
        old = self._groups.pop(anchor)
        for member in old.members:
            self._membership[member].discard(anchor)
        del self._group_in[anchor]
        self._order_dirty = True

    def _members_of(self, anchor: int) -> Tuple[int, ...]:
        """``coll(anchor)`` under the current flags (sorted ids)."""
        members = [anchor]
        visited = {anchor}
        stack = [
            p for p in self._producers[anchor] if not self._flags[p]
        ]
        while stack:
            current = stack.pop()
            if current in visited:
                continue
            visited.add(current)
            members.append(current)
            stack.extend(
                p for p in self._producers[current] if not self._flags[p]
            )
        return tuple(sorted(members))

    def _dominant_path(
        self, members: Tuple[int, ...], anchor: int
    ) -> Tuple[List[int], float]:
        """Longest path to the anchor; mirrors ``collapse._dominant_path``."""
        member_set = set(members)
        best_cost: Dict[int, float] = {}
        best_pred: Dict[int, int] = {}
        for op_id in self._topo:
            if op_id not in member_set:
                continue
            internal = [
                p for p in self._producers[op_id] if p in member_set
            ]
            incoming = max(
                (best_cost[p] for p in internal), default=0.0
            )
            best_cost[op_id] = incoming + self._runtime[op_id]
            if internal:
                best_pred[op_id] = max(
                    internal, key=lambda p: (best_cost[p], p)
                )
        path = [anchor]
        while path[-1] in best_pred:
            path.append(best_pred[path[-1]])
        path.reverse()
        return path, best_cost[anchor]

    # ------------------------------------------------------------------
    # collapsed-DAG traversal cache
    # ------------------------------------------------------------------
    def _refresh_order(self) -> None:
        """Recompute the collapsed traversal order after flips.

        No Kahn pass is needed: a collapsed edge ``producer -> anchor``
        implies ``producer`` is a plan-level ancestor of the anchor (it
        produces one of the anchor's members), so the *plan's*
        topological order restricted to the current anchors is already a
        valid topological order of the collapsed DAG.  Collapsed sinks
        are the anchors no group lists as an input.
        """
        if not self._order_dirty:
            return
        groups = self._groups
        self._collapsed_order = [
            op_id for op_id in self._topo if op_id in groups
        ]
        inner: Set[int] = set()
        for incoming in self._group_in.values():
            inner.update(incoming)
        self._collapsed_inner = inner
        self._order_dirty = False
