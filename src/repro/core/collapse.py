"""Collapsed plans (Section 3.3, step 2 of the paper's procedure).

Given a fault-tolerant plan ``[P, M_P]``, all operators that do *not*
materialize their output are collapsed into the next materializing
consumer(s).  A collapsed operator ``c`` represents a sub-plan of ``P``
that, once it has materialized its output, never needs to be re-executed:
it is the granularity of recovery.

Construction
------------
Every *anchor* -- an operator with ``m(o) = 1``, or a sink -- yields one
collapsed operator.  ``coll(c)`` contains the anchor plus every operator
reachable backwards through non-materialized producers (stopping at, and
excluding, materialized producers).  In a DAG a non-materialized operator
can feed several anchors; it is then a member of *each* of their groups,
because recovering either anchor requires re-running it (this matches the
re-execution semantics, and the paper's example where collapsing is shown
per consumer).

Costs (Equation 1)
------------------
``tr(c)`` is the cost of the most expensive (dominant) execution path
through ``coll(c)``, scaled by ``CONST_pipe`` when the pipeline contains
more than one operator -- this mirrors the paper's Figure 5 arithmetic,
where a singleton group keeps its raw ``tr``.  ``tm(c)`` is the
materialization cost of the anchor (zero if the anchor is a
non-materializing sink whose output streams to the client).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Sequence, Tuple

from .plan import Plan, PlanError


@dataclass(frozen=True)
class CollapsedOperator:
    """One unit of re-execution in a collapsed plan.

    Attributes
    ----------
    anchor_id:
        The materializing (or sink) operator this group collapses into.
    members:
        ``coll(c)`` -- ids of all original operators in the group.
    runtime_cost:
        ``tr(c)`` per Equation 1.
    mat_cost:
        ``tm(c)`` -- the anchor's materialization cost (0 for
        non-materializing sinks).
    dominant_path:
        Operator ids of the most expensive source-to-anchor path inside
        the group, in execution order.
    """

    anchor_id: int
    members: FrozenSet[int]
    runtime_cost: float
    mat_cost: float
    dominant_path: Tuple[int, ...]

    @property
    def total_cost(self) -> float:
        """``t(c) = tr(c) + tm(c)`` (Section 3.3)."""
        return self.runtime_cost + self.mat_cost

    def __str__(self) -> str:
        ids = ",".join(str(op_id) for op_id in sorted(self.members))
        return f"{{{ids}}}"


@dataclass
class CollapsedPlan:
    """The collapsed plan ``P^c`` for a fault-tolerant plan ``[P, M_P]``."""

    #: collapsed operators keyed by anchor id
    groups: Dict[int, CollapsedOperator] = field(default_factory=dict)
    #: edges between collapsed operators: producer anchor -> consumer anchors
    _consumers: Dict[int, List[int]] = field(default_factory=dict)
    _producers: Dict[int, List[int]] = field(default_factory=dict)

    def add_group(self, group: CollapsedOperator) -> None:
        if group.anchor_id in self.groups:
            raise PlanError(f"duplicate collapsed anchor {group.anchor_id}")
        self.groups[group.anchor_id] = group
        self._consumers.setdefault(group.anchor_id, [])
        self._producers.setdefault(group.anchor_id, [])

    def add_edge(self, producer_anchor: int, consumer_anchor: int) -> None:
        if consumer_anchor not in self._consumers[producer_anchor]:
            self._consumers[producer_anchor].append(consumer_anchor)
            self._producers[consumer_anchor].append(producer_anchor)

    def consumers(self, anchor_id: int) -> List[int]:
        return list(self._consumers[anchor_id])

    def producers(self, anchor_id: int) -> List[int]:
        return list(self._producers[anchor_id])

    @property
    def sources(self) -> List[int]:
        return sorted(a for a in self.groups if not self._producers[a])

    @property
    def sinks(self) -> List[int]:
        return sorted(a for a in self.groups if not self._consumers[a])

    def __len__(self) -> int:
        return len(self.groups)

    def __iter__(self) -> Iterator[CollapsedOperator]:
        return iter(self.groups.values())

    def __getitem__(self, anchor_id: int) -> CollapsedOperator:
        return self.groups[anchor_id]

    def topological_order(self) -> List[int]:
        """Anchor ids in deterministic topological order.

        Heap-based Kahn frontier: smallest anchor id first, matching the
        order of the previous sort-the-frontier implementation without
        its quadratic re-sorting.
        """
        in_degree = {a: len(self._producers[a]) for a in self.groups}
        ready = [a for a, deg in in_degree.items() if deg == 0]
        heapq.heapify(ready)
        order: List[int] = []
        while ready:
            anchor = heapq.heappop(ready)
            order.append(anchor)
            for consumer in self._consumers[anchor]:
                in_degree[consumer] -= 1
                if in_degree[consumer] == 0:
                    heapq.heappush(ready, consumer)
        if len(order) != len(self.groups):
            raise PlanError("collapsed plan contains a cycle")
        return order

    @property
    def total_cost(self) -> float:
        """Sum of ``t(c)`` over all collapsed operators."""
        return sum(group.total_cost for group in self.groups.values())

    def pretty(self) -> str:
        """Human-readable rendering in topological order."""
        lines = []
        for anchor_id in self.topological_order():
            group = self.groups[anchor_id]
            inputs = ",".join(str(p) for p in sorted(self._producers[anchor_id])) or "-"
            lines.append(
                f"{str(group):<16s} tr={group.runtime_cost:<10.4g} "
                f"tm={group.mat_cost:<8.4g} t={group.total_cost:<10.4g} "
                f"inputs={inputs}"
            )
        return "\n".join(lines)


def collapse_plan(plan: Plan, const_pipe: float = 1.0) -> CollapsedPlan:
    """Build the collapsed plan ``P^c`` from ``[P, M_P]`` (``collapsePlan``).

    The materialization configuration is read from the plan's operators
    (``plan[o].materialize``); use :meth:`Plan.with_mat_config` to apply a
    candidate configuration first.

    Parameters
    ----------
    plan:
        The DAG-structured execution plan with ``m(o)`` flags set.
    const_pipe:
        ``CONST_pipe`` in ``(0, 1]``; discount for pipeline parallelism
        applied to multi-operator dominant paths (Equation 1).
    """
    if not 0 < const_pipe <= 1:
        raise ValueError("const_pipe must be in (0, 1]")
    plan.validate()

    sink_ids = set(plan.sinks)
    anchor_ids = sorted(
        op_id for op_id, op in plan.operators.items()
        if op.materialize or op_id in sink_ids
    )

    collapsed = CollapsedPlan()
    membership: Dict[int, List[int]] = {}  # original op -> anchors it feeds
    for anchor_id in anchor_ids:
        members = _group_members(plan, anchor_id)
        dominant_path, path_runtime = _dominant_path(plan, members, anchor_id)
        pipe = const_pipe if len(dominant_path) > 1 else 1.0
        anchor = plan[anchor_id]
        mat_cost = anchor.mat_cost if anchor.materialize else 0.0
        collapsed.add_group(
            CollapsedOperator(
                anchor_id=anchor_id,
                members=frozenset(members),
                runtime_cost=path_runtime * pipe,
                mat_cost=mat_cost,
                dominant_path=tuple(dominant_path),
            )
        )
        for member in members:
            membership.setdefault(member, []).append(anchor_id)

    # an edge (u, v) with u materialized crosses a recovery boundary; the
    # consumer v may be a member of several groups, each of which then
    # depends on u's group.
    for producer_id, consumer_id in plan.edges():
        if not plan[producer_id].materialize:
            continue
        for consumer_anchor in membership.get(consumer_id, []):
            if consumer_anchor != producer_id:
                collapsed.add_edge(producer_id, consumer_anchor)
    return collapsed


def _group_members(plan: Plan, anchor_id: int) -> List[int]:
    """``coll(anchor)``: the anchor plus non-materialized ancestors."""
    members = [anchor_id]
    visited = {anchor_id}
    stack = [p for p in plan.producers(anchor_id)
             if not plan[p].materialize]
    while stack:
        current = stack.pop()
        if current in visited:
            continue
        visited.add(current)
        members.append(current)
        stack.extend(
            p for p in plan.producers(current) if not plan[p].materialize
        )
    return sorted(members)


def _dominant_path(
    plan: Plan, members: Sequence[int], anchor_id: int
) -> Tuple[List[int], float]:
    """Most expensive path (by ``sum tr``) through the group to the anchor.

    Uses longest-path DP over the group-internal edges, which is linear in
    the group size because the group is a DAG.
    """
    member_set = set(members)
    order = [op_id for op_id in plan.topological_order() if op_id in member_set]
    best_cost: Dict[int, float] = {}
    best_pred: Dict[int, int] = {}
    for op_id in order:
        internal_producers = [
            p for p in plan.producers(op_id) if p in member_set
        ]
        incoming = max(
            (best_cost[p] for p in internal_producers), default=0.0
        )
        best_cost[op_id] = incoming + plan[op_id].runtime_cost
        if internal_producers:
            best_pred[op_id] = max(
                internal_producers, key=lambda p: (best_cost[p], p)
            )
    path = [anchor_id]
    while path[-1] in best_pred:
        path.append(best_pred[path[-1]])
    path.reverse()
    return path, best_cost[anchor_id]


def collapsed_total_costs(collapsed: CollapsedPlan) -> Dict[int, float]:
    """Map of anchor id -> ``t(c)``, convenience for the cost model."""
    return {anchor: group.total_cost for anchor, group in collapsed.groups.items()}
