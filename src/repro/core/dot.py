"""Graphviz DOT export for plans and collapsed plans.

``plan_to_dot`` renders the DAG with per-operator costs and flags;
``collapsed_to_dot`` renders the recovery units.  The output is plain
DOT text -- pipe it to ``dot -Tsvg`` (no graphviz dependency here).
"""

from __future__ import annotations

from typing import List

from .collapse import CollapsedPlan
from .plan import Plan


def _escape(text: str) -> str:
    return text.replace('"', r"\"")


def plan_to_dot(plan: Plan, title: str = "plan") -> str:
    """Render a plan as a DOT digraph.

    Materializing operators are drawn as filled boxes, bound operators
    with dashed borders; labels carry ``tr``/``tm``.
    """
    lines: List[str] = [
        f'digraph "{_escape(title)}" {{',
        "  rankdir=BT;",
        '  node [shape=box, fontname="Helvetica", fontsize=10];',
    ]
    for op_id in plan.topological_order():
        operator = plan[op_id]
        label = (f"[{op_id}] {operator.name}\\n"
                 f"tr={operator.runtime_cost:.3g} "
                 f"tm={operator.mat_cost:.3g}")
        styles = []
        if operator.materialize:
            styles.append("filled")
        if not operator.free:
            styles.append("dashed")
        style = f', style="{",".join(styles)}"' if styles else ""
        fill = ', fillcolor="lightblue"' if operator.materialize else ""
        lines.append(
            f'  op{op_id} [label="{_escape(label)}"{style}{fill}];'
        )
    for producer, consumer in sorted(plan.edges()):
        lines.append(f"  op{producer} -> op{consumer};")
    lines.append("}")
    return "\n".join(lines)


def collapsed_to_dot(collapsed: CollapsedPlan,
                     title: str = "collapsed") -> str:
    """Render a collapsed plan's recovery units as a DOT digraph."""
    lines: List[str] = [
        f'digraph "{_escape(title)}" {{',
        "  rankdir=BT;",
        '  node [shape=box3d, fontname="Helvetica", fontsize=10];',
    ]
    for anchor in collapsed.topological_order():
        group = collapsed[anchor]
        members = ",".join(str(m) for m in sorted(group.members))
        label = (f"{{{members}}}\\n"
                 f"t(c)={group.total_cost:.3g}")
        lines.append(f'  g{anchor} [label="{_escape(label)}"];')
    for anchor in collapsed.topological_order():
        for consumer in sorted(collapsed.consumers(anchor)):
            lines.append(f"  g{anchor} -> g{consumer};")
    lines.append("}")
    return "\n".join(lines)
