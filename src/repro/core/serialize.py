"""JSON (de)serialization for plans and cluster statistics.

A library users adopt needs its core objects to survive a round trip to
disk: optimizer inputs arrive from other systems as JSON, chosen
configurations get shipped to executors, experiment setups get archived.
The format is a plain dict -- stable keys, no pickling -- versioned via
a ``format`` field so later revisions can migrate.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Union

from .cost_model import ClusterStats
from .plan import Operator, Plan

FORMAT = "repro-plan/1"
STATS_FORMAT = "repro-cluster-stats/1"


def plan_to_dict(plan: Plan) -> Dict[str, Any]:
    """Serialize a plan (operators, flags, costs, edges) to a dict."""
    return {
        "format": FORMAT,
        "operators": [
            {
                "op_id": op.op_id,
                "name": op.name,
                "runtime_cost": op.runtime_cost,
                "mat_cost": op.mat_cost,
                "materialize": op.materialize,
                "free": op.free,
                "cardinality": op.cardinality,
                "base_inputs": op.base_inputs,
                "state_ckpt_cost": op.state_ckpt_cost,
            }
            for _, op in sorted(plan.operators.items())
        ],
        "edges": [list(edge) for edge in sorted(plan.edges())],
    }


def plan_from_dict(payload: Dict[str, Any]) -> Plan:
    """Rebuild a plan from :func:`plan_to_dict` output."""
    if payload.get("format") != FORMAT:
        raise ValueError(
            f"unsupported plan format: {payload.get('format')!r} "
            f"(expected {FORMAT!r})"
        )
    plan = Plan()
    for entry in payload["operators"]:
        plan.add_operator(Operator(
            op_id=int(entry["op_id"]),
            name=str(entry["name"]),
            runtime_cost=float(entry["runtime_cost"]),
            mat_cost=float(entry["mat_cost"]),
            materialize=bool(entry["materialize"]),
            free=bool(entry["free"]),
            cardinality=(None if entry.get("cardinality") is None
                         else int(entry["cardinality"])),
            base_inputs=int(entry.get("base_inputs", 0)),
            state_ckpt_cost=(
                None if entry.get("state_ckpt_cost") is None
                else float(entry["state_ckpt_cost"])
            ),
        ))
    for producer, consumer in payload["edges"]:
        plan.add_edge(int(producer), int(consumer))
    plan.validate()
    return plan


def stats_to_dict(stats: ClusterStats) -> Dict[str, Any]:
    """Serialize cluster statistics."""
    return {
        "format": STATS_FORMAT,
        "mtbf": stats.mtbf,
        "mttr": stats.mttr,
        "nodes": stats.nodes,
        "const_cost": stats.const_cost,
        "const_pipe": stats.const_pipe,
        "success_percentile": stats.success_percentile,
        "scale_mtbf_by_nodes": stats.scale_mtbf_by_nodes,
    }


def stats_from_dict(payload: Dict[str, Any]) -> ClusterStats:
    if payload.get("format") != STATS_FORMAT:
        raise ValueError(
            f"unsupported stats format: {payload.get('format')!r} "
            f"(expected {STATS_FORMAT!r})"
        )
    return ClusterStats(
        mtbf=float(payload["mtbf"]),
        mttr=float(payload["mttr"]),
        nodes=int(payload["nodes"]),
        const_cost=float(payload.get("const_cost", 1.0)),
        const_pipe=float(payload.get("const_pipe", 1.0)),
        success_percentile=float(payload.get("success_percentile", 0.95)),
        scale_mtbf_by_nodes=bool(payload.get("scale_mtbf_by_nodes",
                                             False)),
    )


def dump_plan(plan: Plan, target: Union[str, IO[str]]) -> None:
    """Write a plan as JSON to a path or open text file."""
    payload = plan_to_dict(plan)
    if isinstance(target, str):
        with open(target, "w") as handle:
            json.dump(payload, handle, indent=2)
    else:
        json.dump(payload, target, indent=2)


def load_plan(source: Union[str, IO[str]]) -> Plan:
    """Read a plan from a JSON path or open text file."""
    if isinstance(source, str):
        with open(source) as handle:
            payload = json.load(handle)
    else:
        payload = json.load(source)
    return plan_from_dict(payload)
