"""Join graphs: the input to join-order enumeration.

A :class:`JoinGraph` records base relations (with cardinalities and row
widths) and join edges (with selectivities).  The cardinality of joining
two relation sets follows the classic independence model:

``|A |><| B| = |A| * |B| * prod(selectivity of every edge between A and B)``

which is what both the DP optimizer and the exhaustive enumerator use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List


@dataclass(frozen=True)
class Relation:
    """A base relation of the join graph."""

    name: str
    rows: float
    width: float = 16.0     #: bytes per row of this relation's contribution

    def __post_init__(self) -> None:
        if self.rows < 0:
            raise ValueError(f"{self.name}: negative cardinality")
        if self.width <= 0:
            raise ValueError(f"{self.name}: width must be > 0")


@dataclass(frozen=True)
class JoinEdge:
    """An equi-join predicate between two relations."""

    left: str
    right: str
    selectivity: float

    def __post_init__(self) -> None:
        if not 0 < self.selectivity <= 1:
            raise ValueError("selectivity must be in (0, 1]")
        if self.left == self.right:
            raise ValueError("self-join edges are not supported")

    @property
    def key(self) -> FrozenSet[str]:
        return frozenset((self.left, self.right))


@dataclass
class JoinGraph:
    """Relations + join edges, with cardinality estimation helpers."""

    relations: Dict[str, Relation] = field(default_factory=dict)
    edges: List[JoinEdge] = field(default_factory=list)

    def add_relation(self, name: str, rows: float,
                     width: float = 16.0) -> Relation:
        if name in self.relations:
            raise ValueError(f"duplicate relation {name!r}")
        relation = Relation(name=name, rows=rows, width=width)
        self.relations[name] = relation
        return relation

    def add_edge(self, left: str, right: str, selectivity: float) -> JoinEdge:
        for name in (left, right):
            if name not in self.relations:
                raise ValueError(f"unknown relation {name!r}")
        edge = JoinEdge(left=left, right=right, selectivity=selectivity)
        if any(existing.key == edge.key for existing in self.edges):
            raise ValueError(f"duplicate edge {left}-{right}")
        self.edges.append(edge)
        return edge

    # ------------------------------------------------------------------
    @property
    def relation_names(self) -> List[str]:
        return sorted(self.relations)

    def neighbors(self, name: str) -> List[str]:
        result = []
        for edge in self.edges:
            if edge.left == name:
                result.append(edge.right)
            elif edge.right == name:
                result.append(edge.left)
        return sorted(result)

    def connected(self, names: Iterable[str]) -> bool:
        """Is the induced subgraph on ``names`` connected?"""
        names = set(names)
        if not names:
            return False
        start = next(iter(names))
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for neighbor in self.neighbors(current):
                if neighbor in names and neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return seen == names

    def crossing_edges(
        self, left: Iterable[str], right: Iterable[str]
    ) -> List[JoinEdge]:
        """Edges with one endpoint in each set."""
        left_set, right_set = set(left), set(right)
        return [
            edge for edge in self.edges
            if (edge.left in left_set and edge.right in right_set)
            or (edge.right in left_set and edge.left in right_set)
        ]

    # ------------------------------------------------------------------
    # cardinality model
    # ------------------------------------------------------------------
    def set_cardinality(self, names: Iterable[str]) -> float:
        """Estimated cardinality of joining all relations in ``names``.

        Applies every internal edge's selectivity once (independence).
        """
        names = set(names)
        rows = 1.0
        # sorted(): float multiplication is order-sensitive, and string
        # set order varies across processes under hash randomization
        for name in sorted(names):
            rows *= self.relations[name].rows
        for edge in self.edges:
            if edge.left in names and edge.right in names:
                rows *= edge.selectivity
        return rows

    def set_width(self, names: Iterable[str]) -> float:
        """Output row width of the joined set (sum of member widths)."""
        # sorted(): callers pass sets; keep the float sum order-stable
        return sum(self.relations[name].width for name in sorted(names))

    def join_cardinality(
        self, left: Iterable[str], right: Iterable[str]
    ) -> float:
        """Cardinality of ``left |><| right`` (both already joined sets)."""
        return self.set_cardinality(set(left) | set(right))
