"""Join-order enumeration: join graphs, DP top-k optimization, the
exhaustive cross-product-free enumeration of the pruning experiment, and
the seeded synthetic large-DAG generator the sharded search scales on."""

from .dp import RankedTree, top_k_plans
from .exhaustive import count_join_trees, enumerate_join_trees
from .graph import JoinEdge, JoinGraph, Relation
from .synthetic import (
    SyntheticSpec,
    scaling_specs,
    synthetic_join_graph,
    synthetic_plan,
)
from .tpch_graphs import q3_join_graph, q5_join_graph
from .trees import JoinTree, cout_cost, left_deep, tree_to_plan

__all__ = [
    "JoinEdge",
    "JoinGraph",
    "JoinTree",
    "RankedTree",
    "Relation",
    "SyntheticSpec",
    "count_join_trees",
    "cout_cost",
    "enumerate_join_trees",
    "left_deep",
    "q3_join_graph",
    "q5_join_graph",
    "scaling_specs",
    "synthetic_join_graph",
    "synthetic_plan",
    "top_k_plans",
    "tree_to_plan",
]
