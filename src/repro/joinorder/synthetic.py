"""Seeded synthetic large-DAG generator: the scaling regime's workload.

The TPC-H queries of the paper top out at five free operators (Q5), so
the search benchmarks enumerate at most a few thousand configurations.
Production DAGs have 50-500 operators, and the sharded search
(:mod:`repro.core.shard`) exists for exactly that regime -- but it needs
plans to run on.  This module generates them: deterministic,
seed-reproducible join plans with ``n`` free operators (n = 20..100 and
beyond), configurable tree shape (fan-in/depth) and selectivity regime,
lowered through the same :func:`~repro.joinorder.trees.tree_to_plan`
pipeline as the TPC-H workloads so every downstream consumer (search
engines, pruning rules, linter, simulator) sees a perfectly ordinary
plan.

Generation runs *tree first*: a join tree of the requested shape is
drawn, then the join graph receives exactly the edges the tree's joins
need (plus optional extra edges), so every generated tree is
cross-product-free by construction -- no rejection sampling, identical
output for identical specs on every platform.

Typical use::

    from repro.joinorder.synthetic import SyntheticSpec, synthetic_plan

    plan = synthetic_plan(SyntheticSpec(n_joins=40, seed=7,
                                        shape="bushy"))
    assert len(plan.free_operators) == 40
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Tuple

from ..core.plan import Plan
from ..stats.estimates import CostParameters
from .graph import JoinGraph
from .trees import JoinTree, tree_to_plan

#: tree shapes: chain (maximal depth), balanced (maximal fan-in of
#: independent sub-pipelines), or a seeded mix of the two
SHAPES = ("left-deep", "bushy", "random")

#: selectivity regimes: how aggressively joins cut cardinalities
SELECTIVITY_REGIMES = ("uniform", "sparse", "mixed")


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of one synthetic plan (hashable, frozen -- cache-key
    friendly).

    Parameters
    ----------
    n_joins:
        Number of join operators == number of *free* operators of the
        generated plan (the bound aggregate on top is extra).
    seed:
        Drives every random draw; equal specs generate equal plans.
    shape:
        ``"left-deep"`` chains every join (depth ``n``),
        ``"bushy"`` splits relation runs in half recursively
        (depth ``~log2 n``, wide independent sub-pipelines),
        ``"random"`` picks a seeded split point per node.
    selectivity:
        ``"uniform"`` draws every edge selectivity from one band,
        ``"sparse"`` uses very selective joins (small intermediates),
        ``"mixed"`` alternates selective and permissive edges -- the
        regime with the most cost variance between configurations.
    extra_edge_rate:
        Probability of adding a non-tree join edge between neighbouring
        relations (denser graphs change cardinalities, not the tree).
    min_rows / max_rows:
        Log-uniform band for base-relation cardinalities.
    """

    n_joins: int
    seed: int = 0
    shape: str = "random"
    selectivity: str = "mixed"
    extra_edge_rate: float = 0.15
    # NOTE the narrow default band: JoinGraph.set_cardinality multiplies
    # *all* member rows before applying selectivities, so a 100-relation
    # set needs sum(log10 rows) < ~300 to stay finite in float64.
    min_rows: float = 10.0
    max_rows: float = 1e3

    def __post_init__(self) -> None:
        if self.n_joins < 1:
            raise ValueError("n_joins must be >= 1")
        if self.shape not in SHAPES:
            raise ValueError(f"unknown shape {self.shape!r} "
                             f"(expected one of {SHAPES})")
        if self.selectivity not in SELECTIVITY_REGIMES:
            raise ValueError(
                f"unknown selectivity regime {self.selectivity!r} "
                f"(expected one of {SELECTIVITY_REGIMES})"
            )
        if not 0.0 <= self.extra_edge_rate <= 1.0:
            raise ValueError("extra_edge_rate must be in [0, 1]")
        if not 0 < self.min_rows <= self.max_rows:
            raise ValueError("need 0 < min_rows <= max_rows")


def _draw_fanout(rng: random.Random, regime: str, edge_index: int) -> float:
    """The join's *fan-out factor* ``f``: ``|out| ~= f * max(|L|, |R|)``.

    Tree-edge selectivities are solved from these targets (see
    :func:`synthetic_join_graph`) rather than drawn absolutely: under the
    independence model an absolute selectivity band makes intermediates
    grow geometrically with ``n`` and overflow float64 near n=40.
    Factors have geometric mean ~1 (uniform/mixed) so a 100-join chain
    of intermediates neither overflows nor underflows the row band.
    """
    if regime == "uniform":
        return rng.uniform(0.5, 2.0)
    if regime == "sparse":
        return rng.uniform(0.1, 0.6)
    # mixed: alternate permissive (growing) and selective (collapsing)
    # joins so configurations differ sharply in materialization value
    if edge_index % 2 == 0:
        return rng.uniform(0.8, 5.0)
    return rng.uniform(0.2, 1.25)


def _build_tree(names: List[str], rng: random.Random,
                shape: str) -> JoinTree:
    """A join tree over ``names`` (in run order) of the requested shape."""
    if len(names) == 1:
        return JoinTree.leaf(names[0])
    if shape == "left-deep":
        split = len(names) - 1
    elif shape == "bushy":
        split = len(names) // 2
    else:  # random: any proper split of the run
        split = rng.randint(1, len(names) - 1)
    left = _build_tree(names[:split], rng, shape)
    right = _build_tree(names[split:], rng, shape)
    return JoinTree.join(left, right)


def _tree_joins(tree: JoinTree) -> List[Tuple[Tuple[str, ...],
                                              Tuple[str, ...]]]:
    """One (left run, right run) name pair per join, in post-order.

    Joining adjacent runs of the relation sequence means the boundary
    pair ``(last of left run, first of right run)`` always crosses the
    join -- giving each join a graph edge keeps every intermediate
    connected (no cartesian products) for *any* shape.  Post-order means
    children precede parents, so the caller can calibrate each join's
    selectivity against the cardinalities its children already have.
    """
    joins: List[Tuple[Tuple[str, ...], Tuple[str, ...]]] = []

    def visit(node: JoinTree) -> Tuple[str, ...]:
        if node.is_leaf:
            return (node.relation,)
        left_names = visit(node.left)
        right_names = visit(node.right)
        joins.append((left_names, right_names))
        return left_names + right_names

    visit(tree)
    return joins


def synthetic_join_graph(spec: SyntheticSpec) -> Tuple[JoinGraph, JoinTree]:
    """Generate the (graph, tree) pair for ``spec``.

    The tree is drawn first and the graph receives exactly the edges the
    tree needs (plus seeded extras), so the tree is guaranteed
    cross-product-free in the graph.
    """
    rng = random.Random(spec.seed)
    count = spec.n_joins + 1
    names = [f"R{index:03d}" for index in range(count)]
    graph = JoinGraph()
    log_lo, log_hi = math.log(spec.min_rows), math.log(spec.max_rows)
    for name in names:
        # log-uniform rows: production tables span orders of magnitude
        rows = math.exp(rng.uniform(log_lo, log_hi))
        graph.add_relation(name, rows=rows,
                           width=rng.choice((8.0, 16.0, 32.0, 64.0)))

    tree = _build_tree(names, rng, spec.shape)
    # extra edges go in first so the tree-edge calibration below already
    # accounts for their selectivity; distance-2 pairs never collide with
    # tree edges, which always connect *adjacent* names in the sequence
    for index in range(count - 2):
        if rng.random() < spec.extra_edge_rate:
            graph.add_edge(names[index], names[index + 2],
                           rng.uniform(0.05, 0.9))
    # tree edges, children first: solve each join's selectivity so its
    # output hits ``f * max(|L|, |R|)`` given everything already placed
    for index, (left_run, right_run) in enumerate(_tree_joins(tree)):
        fanout = _draw_fanout(rng, spec.selectivity, index)
        card_left = graph.set_cardinality(left_run)
        card_right = graph.set_cardinality(right_run)
        card_open = graph.set_cardinality(left_run + right_run)
        # the cap stops deep chains from ratcheting upward: the max()
        # target resets low excursions at the base-relation band but
        # would let high excursions compound over ~n joins otherwise
        target = min(fanout * max(card_left, card_right),
                     100.0 * spec.max_rows)
        selectivity = 1.0
        if card_open > 0.0 and target < card_open:
            selectivity = max(target / card_open, 1e-12)
        graph.add_edge(left_run[-1], right_run[0], selectivity)
    return graph, tree


def synthetic_plan(
    spec: SyntheticSpec,
    params: CostParameters = CostParameters(
        cpu_row_cost=0.01, mat_byte_cost=2e-4, nodes=10
    ),
) -> Plan:
    """Generate the costed plan for ``spec`` (n_joins free operators).

    The default calibration keeps operator runtimes in the
    seconds-to-minutes band at the generator's default cardinalities, so
    cluster MTBFs from minutes to days produce interesting retry
    behaviour; pass custom :class:`CostParameters` to re-anchor.
    """
    graph, tree = synthetic_join_graph(spec)
    plan = tree_to_plan(tree, graph, params)
    assert len(plan.free_operators) == spec.n_joins
    return plan


def scaling_specs(
    sizes: Tuple[int, ...] = (20, 40, 60, 100),
    seed: int = 0,
) -> List[SyntheticSpec]:
    """The benchmark ladder: one mixed-regime spec per requested size."""
    return [
        SyntheticSpec(n_joins=size, seed=seed + size, shape="random",
                      selectivity="mixed")
        for size in sizes
    ]
