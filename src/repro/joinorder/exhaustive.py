"""Exhaustive enumeration of join orders without cartesian products.

Enumerates every *bushy* join tree whose every intermediate is connected
in the join graph -- the space the paper sweeps in the pruning experiment
("all 1344 equivalent join orders of TPC-H query 5 (i.e., we do not
enumerate plans with cartesian products)", Section 5.5).

The enumeration is the textbook connected-subgraph recursion: a tree for
relation set ``S`` is a leaf when ``|S| = 1``, otherwise any split of
``S`` into connected, edge-linked halves ``(L, R)`` combined from their
respective trees.  Operand order matters (``A |><| B`` and ``B |><| A``
are different physical plans -- build vs probe side), matching how
"join orders" are counted in the paper's 1344 figure; pass
``ordered=False`` to count unordered tree shapes instead.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Tuple

from .graph import JoinGraph
from .trees import JoinTree


def enumerate_join_trees(
    graph: JoinGraph, ordered: bool = True
) -> Iterator[JoinTree]:
    """Yield every cross-product-free join tree over the whole graph."""
    all_relations = frozenset(graph.relation_names)
    if not all_relations:
        return
    memo: Dict[FrozenSet[str], List[JoinTree]] = {}
    yield from _trees_for(graph, all_relations, memo, ordered)


def count_join_trees(graph: JoinGraph, ordered: bool = True) -> int:
    """Number of cross-product-free join trees (DP count, no enumeration)."""
    all_relations = frozenset(graph.relation_names)
    counts: Dict[FrozenSet[str], int] = {}

    def count(subset: FrozenSet[str]) -> int:
        if subset in counts:
            return counts[subset]
        if len(subset) == 1:
            counts[subset] = 1
            return 1
        total = 0
        for left, right in _splits(graph, subset, ordered):
            total += count(left) * count(right)
        counts[subset] = total
        return total

    return count(all_relations)


def _trees_for(
    graph: JoinGraph,
    subset: FrozenSet[str],
    memo: Dict[FrozenSet[str], List[JoinTree]],
    ordered: bool,
) -> Iterator[JoinTree]:
    if subset in memo:
        yield from memo[subset]
        return
    results: List[JoinTree] = []
    if len(subset) == 1:
        (name,) = subset
        results.append(JoinTree.leaf(name))
    else:
        for left, right in _splits(graph, subset, ordered):
            for left_tree in _trees_for(graph, left, memo, ordered):
                for right_tree in _trees_for(graph, right, memo, ordered):
                    results.append(JoinTree.join(left_tree, right_tree))
    memo[subset] = results
    yield from results


def _splits(
    graph: JoinGraph, subset: FrozenSet[str], ordered: bool
) -> Iterator[Tuple[FrozenSet[str], FrozenSet[str]]]:
    """Valid (left, right) partitions of ``subset``.

    Both halves must be connected, and at least one join edge must cross
    between them (no cartesian products).  For unordered enumeration only
    one orientation of each partition is produced.
    """
    members = sorted(subset)
    anchor = members[0]
    rest = members[1:]
    # every split is identified by the sub-multiset joined with the anchor;
    # iterate over non-empty proper subsets of the rest
    for mask in range(2 ** len(rest)):
        left = frozenset(
            [anchor] + [rest[i] for i in range(len(rest)) if mask >> i & 1]
        )
        if left == subset:
            continue
        right = subset - left
        if not graph.connected(left) or not graph.connected(right):
            continue
        if not graph.crossing_edges(left, right):
            continue
        yield left, right
        if ordered:
            yield right, left
