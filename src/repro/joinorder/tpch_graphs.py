"""Join graphs of the TPC-H workload queries.

Cardinalities come from the analytical model in
:mod:`repro.tpch.cardinality`; selectivities follow the primary-key /
foreign-key structure (``1 / |referenced|``) plus the query's own filter
predicates, folded into the base-relation cardinalities.
"""

from __future__ import annotations

from ..tpch import cardinality as card
from .graph import JoinGraph


def q5_join_graph(
    scale_factor: float,
    date_selectivity: float = None,
    include_nation_supplier_edge: bool = False,
) -> JoinGraph:
    """The Q5 join graph: the chain R - N - C - O - L - S (Figure 9).

    Relations carry their post-filter cardinalities (region filtered to
    one name, orders to the date window); edges carry PK-FK
    selectivities.  Treated as a chain, the graph has exactly **1344**
    cross-product-free ordered join trees -- the count the paper sweeps
    in its pruning experiment (Section 5.5).  Q5's
    ``c_nationkey = s_nationkey`` condition is folded into the L - S
    edge's selectivity (it is applied as part of the supplier join);
    pass ``include_nation_supplier_edge=True`` to model it as an explicit
    N - S edge instead, which turns the chain into a cycle.
    """
    if date_selectivity is None:
        date_selectivity = card.date_range_selectivity(365)
    graph = JoinGraph()
    graph.add_relation("R", 1.0, width=16)          # filtered to one region
    graph.add_relation("N", 25.0, width=24)
    graph.add_relation("C", card.table_rows("customer", scale_factor),
                       width=16)
    graph.add_relation(
        "O",
        card.table_rows("orders", scale_factor) * date_selectivity,
        width=16,
    )
    graph.add_relation("L", card.table_rows("lineitem", scale_factor),
                       width=24)
    graph.add_relation("S", card.table_rows("supplier", scale_factor),
                       width=16)
    graph.add_edge("R", "N", 1.0 / 5.0)       # n_regionkey = r_regionkey
    graph.add_edge("N", "C", 1.0 / 25.0)      # c_nationkey = n_nationkey
    graph.add_edge("C", "O",
                   1.0 / card.table_rows("customer", scale_factor))
    graph.add_edge("O", "L",
                   1.0 / card.table_rows("orders", scale_factor))
    # l_suppkey = s_suppkey, with the same-nation condition
    # (c_nationkey = s_nationkey) folded in as an extra 1/25 factor
    graph.add_edge(
        "L", "S",
        card.same_nation_join_selectivity()
        / card.table_rows("supplier", scale_factor),
    )
    if include_nation_supplier_edge:
        graph.add_edge("N", "S", 1.0 / 25.0)  # s_nationkey = n_nationkey
    return graph


def q3_join_graph(scale_factor: float) -> JoinGraph:
    """The Q3 join graph: C - O - L with the query's filters applied."""
    graph = JoinGraph()
    graph.add_relation(
        "C",
        card.table_rows("customer", scale_factor)
        * card.mktsegment_selectivity(),
        width=16,
    )
    graph.add_relation(
        "O", card.table_rows("orders", scale_factor) * 0.475, width=16
    )
    graph.add_relation(
        "L", card.table_rows("lineitem", scale_factor) * 0.525, width=24
    )
    graph.add_edge("C", "O",
                   1.0 / card.table_rows("customer", scale_factor))
    graph.add_edge("O", "L",
                   1.0 / card.table_rows("orders", scale_factor))
    return graph
