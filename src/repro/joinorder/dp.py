"""Dynamic-programming join-order optimization with top-k output.

Implements the first phase of the paper's ``enumFTPlans`` (Section 3.2):
"use dynamic programming to find the top-k plans (produced by the last
iteration) ordered ascending by their cost without mid-query failures".

The DP runs bottom-up over connected subgraphs (DPsub-style), keeping the
``k`` cheapest join trees per relation subset under the ``C_out`` cost
function.  Keeping top-k partial plans (instead of just the optimum)
guarantees the final level really contains the k cheapest complete trees
under an additive cost function.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from .graph import JoinGraph
from .trees import JoinTree


@dataclass(frozen=True)
class RankedTree:
    """A join tree with its failure-free cost."""

    cost: float
    tree: JoinTree


def top_k_plans(graph: JoinGraph, k: int = 5) -> List[RankedTree]:
    """The ``k`` cheapest cross-product-free join trees by ``C_out``.

    Raises :class:`ValueError` for disconnected join graphs (they would
    force cartesian products).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    names = graph.relation_names
    if not names:
        raise ValueError("empty join graph")
    if not graph.connected(names):
        raise ValueError("join graph is disconnected")

    #: subset -> top-k (cost, tree) ascending by cost
    best: Dict[FrozenSet[str], List[RankedTree]] = {}
    for name in names:
        best[frozenset((name,))] = [RankedTree(0.0, JoinTree.leaf(name))]

    for size in range(2, len(names) + 1):
        for combo in itertools.combinations(names, size):
            subset = frozenset(combo)
            if not graph.connected(subset):
                continue
            out_rows = graph.set_cardinality(subset)
            candidates: List[RankedTree] = []
            for left, right in _ordered_splits(graph, subset):
                if left not in best or right not in best:
                    continue
                for left_ranked in best[left]:
                    for right_ranked in best[right]:
                        cost = (
                            left_ranked.cost + right_ranked.cost + out_rows
                        )
                        candidates.append(RankedTree(
                            cost=cost,
                            tree=JoinTree.join(
                                left_ranked.tree, right_ranked.tree
                            ),
                        ))
            if candidates:
                candidates.sort(key=lambda ranked: ranked.cost)
                best[subset] = candidates[:k]

    full = frozenset(names)
    if full not in best:
        raise ValueError("no cross-product-free plan covers all relations")
    return best[full]


def _ordered_splits(
    graph: JoinGraph, subset: FrozenSet[str]
) -> List[Tuple[FrozenSet[str], FrozenSet[str]]]:
    """All (left, right) connected, edge-linked ordered partitions."""
    members = sorted(subset)
    anchor = members[0]
    rest = members[1:]
    splits: List[Tuple[FrozenSet[str], FrozenSet[str]]] = []
    for mask in range(2 ** len(rest)):
        left = frozenset(
            [anchor] + [rest[i] for i in range(len(rest)) if mask >> i & 1]
        )
        if left == subset:
            continue
        right = subset - left
        if not graph.connected(left) or not graph.connected(right):
            continue
        if not graph.crossing_edges(left, right):
            continue
        splits.append((left, right))
        splits.append((right, left))
    return splits
