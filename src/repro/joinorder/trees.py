"""Join trees and their translation into costed execution plans.

A join tree is the binary-tree shape of a join order.  The exhaustive
enumerator and the DP optimizer both produce :class:`JoinTree` values;
:func:`tree_to_plan` lowers one into a :class:`repro.core.Plan` whose join
operators are *free* (their outputs are materialization candidates) and
whose scans and final aggregate are bound -- the plan shape of the paper's
Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from ..core.plan import Operator, Plan
from ..stats.estimates import CostParameters
from .graph import JoinGraph


@dataclass(frozen=True)
class JoinTree:
    """Binary join tree; leaves name base relations."""

    relation: Optional[str] = None
    left: Optional["JoinTree"] = None
    right: Optional["JoinTree"] = None

    def __post_init__(self) -> None:
        if self.relation is not None:
            if self.left is not None or self.right is not None:
                raise ValueError("leaf nodes cannot have children")
        elif self.left is None or self.right is None:
            raise ValueError("inner nodes need both children")

    @property
    def is_leaf(self) -> bool:
        return self.relation is not None

    @property
    def relations(self) -> FrozenSet[str]:
        if self.is_leaf:
            return frozenset((self.relation,))
        return self.left.relations | self.right.relations

    @property
    def join_count(self) -> int:
        if self.is_leaf:
            return 0
        return 1 + self.left.join_count + self.right.join_count

    def __str__(self) -> str:
        if self.is_leaf:
            return self.relation
        return f"({self.left} |><| {self.right})"

    @classmethod
    def leaf(cls, relation: str) -> "JoinTree":
        return cls(relation=relation)

    @classmethod
    def join(cls, left: "JoinTree", right: "JoinTree") -> "JoinTree":
        return cls(left=left, right=right)


def left_deep(relations: List[str]) -> JoinTree:
    """Left-deep tree over ``relations`` in the given order."""
    if not relations:
        raise ValueError("need at least one relation")
    tree = JoinTree.leaf(relations[0])
    for name in relations[1:]:
        tree = JoinTree.join(tree, JoinTree.leaf(name))
    return tree


def cout_cost(tree: JoinTree, graph: JoinGraph) -> float:
    """The classic ``C_out`` cost: summed intermediate cardinalities.

    Used by the DP phase to rank join orders *without* failures, as the
    paper's first phase does.
    """
    if tree.is_leaf:
        return 0.0
    own = graph.set_cardinality(tree.relations)
    return own + cout_cost(tree.left, graph) + cout_cost(tree.right, graph)


def tree_to_plan(
    tree: JoinTree,
    graph: JoinGraph,
    params: CostParameters,
    agg_out_rows: float = 5.0,
    agg_out_bytes: float = 240.0,
) -> Plan:
    """Lower a join tree into a costed DAG plan.

    Base-table scans are folded into the consuming join (the sub-plan
    convention described in :mod:`repro.tpch.queries`): each join is a
    free operator whose ``work_rows`` covers its base-table reads, its
    materialized inputs and its output, and whose ``out_bytes`` follows
    the joined set's width.  A bound always-materialized aggregate sits
    on top (Figure 9's plan shape); joins are numbered 1..n bottom-up.
    """
    if tree.is_leaf:
        raise ValueError("a single-relation tree has no join to plan")
    plan = Plan()
    join_counter = [0]

    def lower(node: JoinTree) -> Tuple[Optional[int], float]:
        """Insert operators for ``node``; return (op_id, out_rows).

        Leaves insert nothing (their read cost is charged to the
        consuming join) and return ``(None, base_rows)``.
        """
        if node.is_leaf:
            return None, graph.relations[node.relation].rows

        left_id, left_rows = lower(node.left)
        right_id, right_rows = lower(node.right)
        out_rows = graph.set_cardinality(node.relations)
        out_bytes = out_rows * graph.set_width(node.relations)
        work = left_rows + right_rows + out_rows
        join_counter[0] += 1
        op_id = join_counter[0]
        base_inputs = (left_id is None) + (right_id is None)
        plan.add_operator(Operator(
            op_id=op_id,
            name=f"Join{op_id}({','.join(sorted(node.relations))})",
            runtime_cost=params.runtime_cost(work),
            mat_cost=params.mat_cost(out_bytes),
            materialize=False,
            free=True,
            cardinality=round(out_rows),
            base_inputs=base_inputs,
        ))
        for child_id in (left_id, right_id):
            if child_id is not None:
                plan.add_edge(child_id, op_id)
        return op_id, out_rows

    root_id, root_rows = lower(tree)
    # 99 matches the paper's figures for the hand-sized queries; synthetic
    # plans with >= 99 joins bump past the join ids to stay collision-free
    agg_id = max(99, join_counter[0] + 1)
    plan.add_operator(Operator(
        op_id=agg_id,
        name="Aggregate",
        runtime_cost=params.runtime_cost(root_rows),
        mat_cost=params.mat_cost(agg_out_bytes),
        materialize=True,
        free=False,
        cardinality=round(agg_out_rows),
    ))
    plan.add_edge(root_id, agg_id)
    plan.validate()
    return plan
