"""Figure 11: overhead vs. MTBF (Exp. 2b).

TPC-H Q5 at SF = 100 (baseline ~905 s) under per-node MTBFs of one week
(cluster A), one day (cluster B) and one hour (cluster C), on 10 nodes.

Paper's measurements for reference (overhead %):

==================  =========  ========  =========
scheme              1 week     1 day     1 hour
==================  =========  ========  =========
all-mat             34.13      40.93     73.83
no-mat (lineage)    0          29.34     84.66
no-mat (restart)    0          57.74     231.80
cost-based          0          29.30     52.12
==================  =========  ========  =========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..chaos import FaultPolicy
from ..core.failure import DAY, HOUR, WEEK
from ..engine.campaign import run_campaign
from ..engine.cluster import Cluster
from ..tpch.queries import build_query_plan
from .common import (
    DEFAULT_MTTR,
    DEFAULT_NODES,
    OverheadCell,
    comparison_cell,
    default_params_for,
    overhead_cell,
)

#: (label, seconds) in the paper's order
PAPER_MTBFS: Tuple[Tuple[str, float], ...] = (
    ("Cluster A (10 nodes, MTBF=1 week)", WEEK),
    ("Cluster B (10 nodes, MTBF=1 day)", DAY),
    ("Cluster C (10 nodes, MTBF=1 hour)", HOUR),
)


@dataclass(frozen=True)
class Fig11Result:
    scale_factor: float
    baseline: float
    #: cluster label -> cells (one per scheme)
    by_cluster: Dict[str, Tuple[OverheadCell, ...]]


def run(
    scale_factor: float = 100.0,
    mtbfs: Sequence[Tuple[str, float]] = PAPER_MTBFS,
    nodes: int = DEFAULT_NODES,
    trace_count: int = 10,
    base_seed: int = 1100,
    jobs: int = 1,
    chaos: Optional[FaultPolicy] = None,
) -> Fig11Result:
    params = default_params_for(nodes)
    cluster = Cluster(nodes=nodes, mttr=DEFAULT_MTTR)
    plan = build_query_plan("Q5", scale_factor, params)
    grid = [
        comparison_cell(
            plan, "Q5", mtbf=mtbf,
            trace_count=trace_count, base_seed=base_seed + index,
        )
        for index, (_, mtbf) in enumerate(mtbfs)
    ]
    results = run_campaign(grid, cluster, jobs=jobs, chaos=chaos)
    by_cluster: Dict[str, Tuple[OverheadCell, ...]] = {}
    baseline = 0.0
    for cell_index, (label, _) in enumerate(mtbfs):
        cells = tuple(
            overhead_cell(r) for r in results if r.cell_index == cell_index
        )
        by_cluster[label] = cells
        baseline = cells[0].baseline
    return Fig11Result(
        scale_factor=scale_factor,
        baseline=baseline,
        by_cluster=by_cluster,
    )


def format_table(result: Fig11Result) -> str:
    schemes = [
        cell.scheme for cell in next(iter(result.by_cluster.values()))
    ]
    width = max(len(s) for s in schemes) + 2
    lines = [
        f"Figure 11 -- Q5 @ SF {result.scale_factor:g} "
        f"(baseline {result.baseline:.0f}s):",
        "cluster".ljust(40) + "".join(s.rjust(width) for s in schemes),
    ]
    for label, cells in result.by_cluster.items():
        row = label.ljust(40)
        lookup = {cell.scheme: cell for cell in cells}
        for scheme in schemes:
            row += lookup[scheme].formatted().rjust(width)
        lines.append(row)
    return "\n".join(lines)
