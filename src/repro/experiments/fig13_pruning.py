"""Figure 13: effectiveness of the pruning rules (Section 5.5).

The paper enumerates all 1344 cross-product-free join orders of TPC-H Q5
at SF = 10 (each with 2^5 = 32 materialization configurations, i.e.
43,008 fault-tolerant plans in total) and reports the percentage of
fault-tolerant plans pruned by each rule, for MTBFs of one week, one day
and one hour.

Accounting follows the paper:

* Rules 1 and 2 bind operators to ``m(o) = 0`` before configuration
  enumeration; a plan with ``k`` of its 5 free operators bound skips
  ``32 - 2^(5-k)`` configurations.
* Rule 3 prunes lazily during path enumeration.  A fault-tolerant plan
  where the rule fires at all is counted as *half* pruned (the paper's
  averaging over the rule firing on the first vs the last enumerated
  path).
* "All rules" applies rules 1 and 2 first and rule 3 on the surviving
  configurations, memoizing the best dominant paths across *all* join
  orders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core.collapse import CollapsedPlan
from ..core.cost_model import ClusterStats
from ..core.enumeration import count_mat_configs
from ..core.failure import DAY, HOUR, WEEK
from ..core.paths import enumerate_paths, path_total_costs
from ..core.plan import Plan
from ..core.pruning import (
    DominantPathMemo,
    apply_rule1,
    apply_rule2,
)
from ..core.search_context import SearchContext
from ..joinorder import enumerate_join_trees, q5_join_graph, tree_to_plan
from .common import DEFAULT_MTTR, DEFAULT_NODES, default_params_for

#: the paper's cluster setups for this experiment
PAPER_MTBFS: Tuple[Tuple[str, float], ...] = (
    ("Cluster A (10 nodes, MTBF=1 week)", WEEK),
    ("Cluster B (10 nodes, MTBF=1 day)", DAY),
    ("Cluster C (10 nodes, MTBF=1 hour)", HOUR),
)


@dataclass(frozen=True)
class PruningEffect:
    """Pruning percentages for one cluster setup."""

    label: str
    mtbf: float
    total_ft_plans: int
    rule1_percent: float
    rule2_percent: float
    rule3_percent: float
    all_rules_percent: float


@dataclass(frozen=True)
class Fig13Result:
    join_orders: int
    effects: Tuple[PruningEffect, ...]


def run(
    scale_factor: float = 1000.0,
    nodes: int = DEFAULT_NODES,
    mtbfs: Sequence[Tuple[str, float]] = PAPER_MTBFS,
    max_join_orders: int = None,
) -> Fig13Result:
    """Measure pruning effectiveness over the Q5 join-order space.

    ``max_join_orders`` limits the sweep (useful for quick runs/tests);
    ``None`` sweeps all 1344 orders as the paper does.

    The default scale factor is 1000 rather than the paper's label of 10:
    the paper's pruning thresholds operate on the optimizer's *internal
    cost units* (``MTBF_cost = MTBF * CONST_cost``), and its reported
    rule 2/3 gradients require operator costs comparable to
    ``-MTBF * ln(S)`` (tens of minutes to hours).  Our cost units are
    calibrated seconds, so the equivalent regime -- operator costs
    straddling the one-hour-to-one-week thresholds -- is reached at
    SF ~= 1000.  The rules' qualitative behaviour (rule 1 MTBF-invariant
    and strongest; rules 2 and 3 growing with MTBF) is what this
    experiment checks.
    """
    params = default_params_for(nodes)
    graph = q5_join_graph(scale_factor)
    plans: List[Plan] = []
    for index, tree in enumerate(enumerate_join_trees(graph)):
        if max_join_orders is not None and index >= max_join_orders:
            break
        plans.append(tree_to_plan(tree, graph, params))

    effects: List[PruningEffect] = []
    for label, mtbf in mtbfs:
        stats = ClusterStats(mtbf=mtbf, mttr=DEFAULT_MTTR, nodes=nodes)
        total = sum(count_mat_configs(plan) for plan in plans)
        rule1 = _eager_rule_pruned(plans, stats, rule=1)
        rule2 = _eager_rule_pruned(plans, stats, rule=2)
        rule3 = _rule3_pruned(plans, stats, pre_bind=False)
        all_rules = _all_rules_pruned(plans, stats)
        effects.append(PruningEffect(
            label=label,
            mtbf=mtbf,
            total_ft_plans=total,
            rule1_percent=100.0 * rule1 / total,
            rule2_percent=100.0 * rule2 / total,
            rule3_percent=100.0 * rule3 / total,
            all_rules_percent=100.0 * all_rules / total,
        ))
    return Fig13Result(join_orders=len(plans), effects=tuple(effects))


def _eager_rule_pruned(
    plans: Sequence[Plan], stats: ClusterStats, rule: int
) -> float:
    """FT plans skipped because Rule 1 or 2 bound free operators."""
    pruned = 0.0
    for plan in plans:
        before = count_mat_configs(plan)
        if rule == 1:
            bound_plan = apply_rule1(plan, stats.const_pipe)
        else:
            bound_plan = apply_rule2(plan, stats)
        after = count_mat_configs(bound_plan)
        pruned += before - after
    return pruned


def _rule3_pruned(
    plans: Sequence[Plan], stats: ClusterStats, pre_bind: bool
) -> float:
    """FT plans where Rule 3 cut path enumeration short (half credit).

    The memo of best dominant paths is shared across all join orders, as
    Section 4.3 suggests for cost-based enumeration.
    """
    memo = DominantPathMemo()
    cutoffs = 0
    for plan in plans:
        search_plan = plan
        if pre_bind:
            search_plan = apply_rule2(apply_rule1(plan, stats.const_pipe),
                                      stats)
        context = SearchContext(search_plan, stats)
        for _ in context.iter_masks(order="sequential"):
            fired_cheap, dominant_costs, dominant_total = _scan_paths(
                context.build_collapsed(), stats, memo
            )
            if fired_cheap:
                cutoffs += 1
            elif dominant_costs is not None:
                memo.record_dominant(dominant_costs, dominant_total)
    return 0.5 * cutoffs


def _scan_paths(
    collapsed: CollapsedPlan, stats: ClusterStats, memo: DominantPathMemo
):
    """Enumerate paths with Rule 3 checks; mirror the search inner loop.

    Returns ``(fired_cheap, dominant_costs, dominant_total)``.  Following
    the paper's accounting, only the *cheap* checks count as pruning --
    the failure-free ``R_Pt >= bestT`` comparison and the Equation 9
    dominance test avoid calling the cost function at all, whereas the
    ``T_Pt >= bestT`` check already paid for the estimate.
    """
    dominant_costs = None
    dominant_total = -1.0
    for path in enumerate_paths(collapsed):
        costs = path_total_costs(path)
        decision = memo.should_skip_plan(costs, stats)
        if decision.skip and decision.cheap:
            return True, None, None
        if decision.skip:
            return False, None, None
        if decision.estimated > dominant_total:
            dominant_total = decision.estimated
            dominant_costs = costs
    return False, dominant_costs, dominant_total


def _all_rules_pruned(plans: Sequence[Plan], stats: ClusterStats) -> float:
    """Rules 1+2 eagerly, then Rule 3 on the surviving configurations."""
    pruned = 0.0
    memo = DominantPathMemo()
    for plan in plans:
        before = count_mat_configs(plan)
        bound_plan = apply_rule2(apply_rule1(plan, stats.const_pipe), stats)
        after = count_mat_configs(bound_plan)
        pruned += before - after
        context = SearchContext(bound_plan, stats)
        for _ in context.iter_masks(order="sequential"):
            fired_cheap, dominant_costs, dominant_total = _scan_paths(
                context.build_collapsed(), stats, memo
            )
            if fired_cheap:
                pruned += 0.5
            elif dominant_costs is not None:
                memo.record_dominant(dominant_costs, dominant_total)
    return pruned


def format_table(result: Fig13Result) -> str:
    lines = [
        f"Figure 13 -- pruning effectiveness over {result.join_orders} "
        f"join orders ({result.effects[0].total_ft_plans} FT plans):",
        f"{'cluster':<38s}{'Rule 1':>9s}{'Rule 2':>9s}{'Rule 3':>9s}"
        f"{'All':>9s}",
    ]
    for effect in result.effects:
        lines.append(
            f"{effect.label:<38s}{effect.rule1_percent:>8.1f}%"
            f"{effect.rule2_percent:>8.1f}%{effect.rule3_percent:>8.1f}%"
            f"{effect.all_rules_percent:>8.1f}%"
        )
    return "\n".join(lines)
