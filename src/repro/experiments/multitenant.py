"""Multi-tenant cluster experiment: the shared-cluster scenario, end to end.

Thousands of queries from priority-tenant classes hit one simulated
cluster through the advisory service.  The experiment is a thin,
registry-shaped wrapper over :mod:`repro.workload.simulate` -- it maps
friendly knobs onto a :class:`~repro.workload.MultiTenantConfig`, runs
the simulation, and renders the per-class table (aggregate FT overhead,
tail latency, queue wait, chosen-vs-oracle regret) plus the advice-cache
economics.  See ``docs/workload.md`` for how to read the numbers.
"""

from __future__ import annotations

from typing import List

from ..workload import (
    MultiTenantConfig,
    MultiTenantResult,
    default_tenant_mix,
    run_multitenant,
)


def run(
    queries: int = 2000,
    tenants: int = 3,
    churn: float = 0.5,
    base_mtbf: float = 3600.0,
    nodes: int = 10,
    slots: int = 8,
    seed: int = 0,
    chaos_seed: int = 0,
    trace_count: int = 3,
    templates_per_class: int = 4,
    jobs: int = 1,
) -> MultiTenantResult:
    """One multi-tenant day on a shared cluster.

    ``tenants`` selects the first N default priority classes
    (interactive > reporting > batch); ``churn`` in [0, 1] is the
    spot-fleet reclaim intensity the optimizer never sees.  ``jobs``
    fans the measurement campaign out; results are bit-identical to
    ``jobs=1``.
    """
    config = MultiTenantConfig(
        queries=queries,
        tenant_classes=default_tenant_mix(tenants),
        churn=churn,
        base_mtbf=base_mtbf,
        nodes=nodes,
        slots=slots,
        seed=seed,
        chaos_seed=chaos_seed,
        trace_count=trace_count,
        templates_per_class=templates_per_class,
    )
    return run_multitenant(config, jobs=jobs)


def format_table(result: MultiTenantResult) -> str:
    """Per-class metrics plus advice-cache and campaign health lines."""
    lines: List[str] = []
    config = result.config
    lines.append(
        f"{config.queries} queries, "
        f"{len(config.tenant_classes)} tenant classes, "
        f"{config.nodes} nodes / {config.slots} slots, "
        f"churn {config.churn:g}, base MTBF {config.base_mtbf:g}s"
    )
    advice = result.advice
    lines.append(
        f"advice cache: {advice.requests} requests, "
        f"{advice.hits} hits / {advice.misses} misses "
        f"(hit rate {advice.hit_rate:.1%}), "
        f"{advice.searches} searches, {len(result.groups)} groups"
    )
    header = (f"{'class':<14s} {'prio':>4s} {'queries':>7s} "
              f"{'overhead':>9s} {'p50 lat':>10s} {'p99 lat':>10s} "
              f"{'mean wait':>10s} {'p99 wait':>10s} {'regret':>7s}")
    lines.append(header)
    lines.append("-" * len(header))
    for metrics in result.classes:
        lines.append(
            f"{metrics.name:<14s} {metrics.priority:>4d} "
            f"{metrics.queries:>7d} "
            f"{metrics.overhead_percent:>8.1f}% "
            f"{metrics.latency_p50:>9.1f}s {metrics.latency_p99:>9.1f}s "
            f"{metrics.wait_mean:>9.1f}s {metrics.wait_p99:>9.1f}s "
            f"{metrics.regret:>6.3f}x"
        )
    lines.append(
        f"totals: {result.error_rows} error rows, "
        f"{result.failed_queries} failed queries, "
        f"{result.aborted_runs} aborted runs, "
        f"makespan {result.makespan:.0f}s"
    )
    return "\n".join(lines)
