"""Figure 10: overhead vs. query runtime (Exp. 2a).

TPC-H Q5 executed over scale factors from 1 to 1000 so the baseline
runtime spans seconds to hours, with a fixed per-node MTBF of 1 day.
Expected shape: every scheme starts near 0 % for short queries; the
no-mat schemes' overhead grows with runtime (restart eventually fails to
finish); all-mat tracks the cost-based scheme but stays ~34 % above it
for short queries (Q5's total materialization tax); the cost-based scheme
is the lower envelope, switching from materializing nothing to
materializing the cheap intermediates as runtime grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core.failure import DAY
from ..engine.campaign import run_campaign
from ..engine.cluster import Cluster
from ..engine.coordinator import pure_baseline_runtime
from ..engine.executor import SimulatedEngine
from ..tpch.queries import build_query_plan
from .common import (
    DEFAULT_MTTR,
    DEFAULT_NODES,
    OverheadCell,
    comparison_cell,
    default_params_for,
    overhead_cell,
)

#: scale factors sweeping the paper's runtime range
PAPER_SCALE_FACTORS: Tuple[float, ...] = (1, 10, 30, 100, 300, 1000, 3000, 7000)


@dataclass(frozen=True)
class Fig10Result:
    mtbf: float
    #: one entry per scale factor
    scale_factors: Tuple[float, ...]
    baselines: Tuple[float, ...]
    cells: Tuple[OverheadCell, ...]


def run(
    scale_factors: Sequence[float] = PAPER_SCALE_FACTORS,
    mtbf: float = DAY,
    nodes: int = DEFAULT_NODES,
    trace_count: int = 10,
    base_seed: int = 1000,
    jobs: int = 1,
) -> Fig10Result:
    params = default_params_for(nodes)
    cluster = Cluster(nodes=nodes, mttr=DEFAULT_MTTR)
    engine = SimulatedEngine(cluster)
    grid = []
    baselines: List[float] = []
    for index, scale_factor in enumerate(scale_factors):
        plan = build_query_plan("Q5", scale_factor, params)
        baseline = pure_baseline_runtime(plan, engine, cluster.stats(mtbf))
        baselines.append(baseline)
        grid.append(comparison_cell(
            plan, f"Q5@SF{scale_factor:g}", mtbf=mtbf,
            trace_count=trace_count, base_seed=base_seed + index,
            baseline=baseline,
        ))
    results = run_campaign(grid, cluster, jobs=jobs)
    cells: List[OverheadCell] = [overhead_cell(r) for r in results]
    return Fig10Result(
        mtbf=mtbf,
        scale_factors=tuple(scale_factors),
        baselines=tuple(baselines),
        cells=tuple(cells),
    )


def format_table(result: Fig10Result) -> str:
    schemes = list(dict.fromkeys(cell.scheme for cell in result.cells))
    width = max(len(s) for s in schemes) + 2
    lines = [
        f"Figure 10 -- Q5 overhead vs runtime (MTBF = {result.mtbf:.0f}s "
        "per node):",
        "runtime(min)".ljust(14) + "".join(s.rjust(width) for s in schemes),
    ]
    by_query = {}
    for cell in result.cells:
        by_query.setdefault(cell.query, {})[cell.scheme] = cell
    for scale_factor, baseline in zip(result.scale_factors,
                                      result.baselines):
        query = f"Q5@SF{scale_factor:g}"
        row = f"{baseline / 60.0:<14.1f}"
        for scheme in schemes:
            cell = by_query[query].get(scheme)
            row += (cell.formatted() if cell else "-").rjust(width)
        lines.append(row)
    return "\n".join(lines)
