"""Figure 1: probability of success of a query vs. runtime.

Reproduces the paper's motivation figure: for four cluster setups
(crossing MTBF in {1 hour, 1 week} with cluster size in {10, 100}), the
probability that a query of a given runtime finishes without any
mid-query failure, ``P(N^n_t = 0) = e^(-t*n/MTBF)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..core import failure
from ..core.failure import HOUR, MINUTE, WEEK


@dataclass(frozen=True)
class ClusterSetup:
    """One curve of Figure 1."""

    label: str
    mtbf: float        #: per-node MTBF, seconds
    nodes: int


#: the paper's four cluster setups, in Figure 1's legend order
PAPER_CLUSTERS: Tuple[ClusterSetup, ...] = (
    ClusterSetup("Cluster 1 (MTBF=1 hour,n=100)", HOUR, 100),
    ClusterSetup("Cluster 2 (MTBF=1 week,n=100)", WEEK, 100),
    ClusterSetup("Cluster 3 (MTBF=1 hour,n=10)", HOUR, 10),
    ClusterSetup("Cluster 4 (MTBF=1 week,n=10)", WEEK, 10),
)


@dataclass(frozen=True)
class Fig1Result:
    runtimes_min: Tuple[float, ...]
    #: cluster label -> success probability (%) per runtime
    curves: Dict[str, Tuple[float, ...]]


def run(
    max_runtime_min: float = 160.0,
    step_min: float = 10.0,
    clusters: Sequence[ClusterSetup] = PAPER_CLUSTERS,
) -> Fig1Result:
    """Compute the success-probability curves on Figure 1's axes."""
    steps = int(max_runtime_min / step_min)
    runtimes_min = tuple(step_min * i for i in range(steps + 1))
    curves: Dict[str, Tuple[float, ...]] = {}
    for cluster in clusters:
        curves[cluster.label] = tuple(
            100.0 * failure.success_probability(
                runtime * MINUTE, cluster.mtbf, cluster.nodes
            )
            for runtime in runtimes_min
        )
    return Fig1Result(runtimes_min=runtimes_min, curves=curves)


def format_table(result: Fig1Result) -> str:
    """Figure 1 as a text table (runtime rows x cluster columns)."""
    labels = list(result.curves)
    header = "runtime(min)".ljust(14) + "".join(
        f"{label.split('(')[0].strip():>12s}" for label in labels
    )
    lines = [header]
    for index, runtime in enumerate(result.runtimes_min):
        cells = "".join(
            f"{result.curves[label][index]:>11.1f}%" for label in labels
        )
        lines.append(f"{runtime:<14.0f}{cells}")
    return "\n".join(lines)
