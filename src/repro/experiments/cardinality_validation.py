"""Cardinality-model validation: analytical predictions vs real execution.

The cost model's inputs come from the analytical cardinality model
(:mod:`repro.tpch.cardinality`) -- the equivalent of the paper's "perfect
statistics" at scale factors too large to execute.  This experiment
closes the loop: generate databases at small scale factors, really run
the workload in the mini engine, and compare each operator's measured
output cardinality against the model's prediction.

Not a paper artifact; it is the validation that licences the SF 1-1000
substitution described in DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..relational.executor import profile
from ..tpch.datagen import generate
from ..tpch.queries import QUERIES

#: per query: physical-operator description -> logical-operator name.
#: Only operators with stable, identifiable descriptions are matched;
#: deliberately excludes Q5's same-nation supplier join, whose measured
#: value is dominated by small-sample noise (~20 suppliers at tiny SFs).
OPERATOR_MAP: Dict[str, Dict[str, str]] = {
    "Q3": {
        "HashJoin(c_custkey=o_custkey)": "Join(C,O)",
        "HashJoin(o_orderkey=l_orderkey)": "Join(CO,L)",
    },
    "Q5": {
        "HashJoin(n_nationkey=c_nationkey)": "Join(RN,C)",
        "HashJoin(c_custkey=o_custkey)": "Join(RNC,sigma(O))",
        "HashJoin(o_orderkey=l_orderkey)": "Join(RNCO,L)",
    },
    "Q10": {
        "HashJoin(o_orderkey=l_orderkey)": "Join(sigma(O),sigma(L))",
        "HashJoin(o_custkey=c_custkey)": "Join(OL,C)",
        "HashJoin(c_nationkey=n_nationkey)": "Join(OLC,N)",
    },
    "Q2C": {
        "CteBuffer(min_cost_cte)": "MinCostByPart (CTE)",
    },
}


@dataclass(frozen=True)
class ValidationPoint:
    query: str
    operator: str
    scale_factor: float
    predicted: float
    measured: int

    @property
    def relative_error(self) -> float:
        if self.measured == 0:
            return 0.0 if self.predicted == 0 else float("inf")
        return (self.predicted - self.measured) / self.measured


@dataclass(frozen=True)
class ValidationResult:
    points: Tuple[ValidationPoint, ...]

    @property
    def mean_absolute_error(self) -> float:
        errors = [abs(p.relative_error) for p in self.points]
        return sum(errors) / len(errors)

    @property
    def worst_absolute_error(self) -> float:
        return max(abs(p.relative_error) for p in self.points)


def run(
    scale_factors: Sequence[float] = (0.002, 0.004),
    seed: int = 42,
) -> ValidationResult:
    """Measure each mapped operator at each scale factor."""
    points: List[ValidationPoint] = []
    for index, scale_factor in enumerate(scale_factors):
        db = generate(scale_factor, seed=seed + index)
        for query_name, mapping in OPERATOR_MAP.items():
            query = QUERIES[query_name]
            _, profiles = profile(query.physical_tree(db))
            measured_by_desc = {
                p.description: p.output_rows for p in profiles.values()
            }
            predicted_by_name = {
                op.name: op.out_rows
                for op in query.logical_ops(scale_factor)
            }
            for description, logical_name in mapping.items():
                points.append(ValidationPoint(
                    query=query_name,
                    operator=logical_name,
                    scale_factor=scale_factor,
                    predicted=predicted_by_name[logical_name],
                    measured=measured_by_desc[description],
                ))
    return ValidationResult(points=tuple(points))


def format_table(result: ValidationResult) -> str:
    lines = [
        "Cardinality model vs measured execution "
        "(analytical predictions licence the SF 1-1000 substitution):",
        f"{'query':<6s}{'operator':<24s}{'SF':>7s}{'predicted':>11s}"
        f"{'measured':>10s}{'error':>8s}",
    ]
    for point in result.points:
        lines.append(
            f"{point.query:<6s}{point.operator:<24s}"
            f"{point.scale_factor:>7.3f}{point.predicted:>11.1f}"
            f"{point.measured:>10d}{100 * point.relative_error:>7.1f}%"
        )
    lines.append("")
    lines.append(
        f"mean |error| = {100 * result.mean_absolute_error:.1f}%, "
        f"worst |error| = {100 * result.worst_absolute_error:.1f}%"
    )
    return "\n".join(lines)
