"""Table 2: the paper's worked cost-estimation example.

Four collapsed operators with ``t(c) = 4, 3, 1, 2``, ``MTBF_cost = 60``,
``MTTR_cost = 0`` and ``S = 0.95``; the two execution paths of Figure 3
are ``Pt1 = ({1,2,3}, {4,5}, {6})`` and ``Pt2 = ({1,2,3}, {4,5}, {7})``.

The paper's printed values (``a = 0.0648``, ``T_Pt1 = 8.13``) are computed
from the *rounded* probabilities shown in the table (``gamma = 0.94``);
with exact arithmetic the same procedure yields ``a = 0.0929`` and
``T_Pt1 = 8.19``.  We report both; the golden tests pin each to its own
protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from ..core.cost_model import (
    ClusterStats,
    OperatorCostBreakdown,
    operator_breakdown,
    path_cost,
)

#: the example's collapsed operators and their t(c) values (Figure 3)
EXAMPLE_OPERATORS: Tuple[Tuple[str, float], ...] = (
    ("{1,2,3}", 4.0),
    ("{4,5}", 3.0),
    ("{6}", 1.0),
    ("{7}", 2.0),
)

EXAMPLE_STATS = ClusterStats(mtbf=60.0, mttr=0.0, nodes=1)

#: the two execution paths, as t(c) sequences
PATH_PT1 = (4.0, 3.0, 1.0)
PATH_PT2 = (4.0, 3.0, 2.0)


@dataclass(frozen=True)
class Tab2Result:
    rows: Dict[str, OperatorCostBreakdown]
    cost_pt1: float
    cost_pt2: float
    dominant_path: str

    #: the same quantities re-derived with the paper's rounding protocol
    rounded_cost_pt1: float
    rounded_cost_pt2: float


def run() -> Tab2Result:
    """Evaluate the worked example, exact and paper-rounded."""
    rows = {
        name: operator_breakdown(total_cost, EXAMPLE_STATS)
        for name, total_cost in EXAMPLE_OPERATORS
    }
    cost_pt1 = path_cost(PATH_PT1, EXAMPLE_STATS)
    cost_pt2 = path_cost(PATH_PT2, EXAMPLE_STATS)
    rounded_pt1 = sum(_rounded_runtime(t) for t in PATH_PT1)
    rounded_pt2 = sum(_rounded_runtime(t) for t in PATH_PT2)
    return Tab2Result(
        rows=rows,
        cost_pt1=cost_pt1,
        cost_pt2=cost_pt2,
        dominant_path="Pt2" if cost_pt2 >= cost_pt1 else "Pt1",
        rounded_cost_pt1=rounded_pt1,
        rounded_cost_pt2=rounded_pt2,
    )


def _rounded_runtime(total_cost: float) -> float:
    """T(c) using gamma rounded to 2 decimals, the paper's arithmetic."""
    gamma = round(math.exp(-total_cost / 60.0), 2)
    eta = 1.0 - gamma
    if eta <= 0:
        attempts = 0.0
    else:
        attempts = max(math.log(1 - 0.95) / math.log(eta) - 1.0, 0.0)
    wasted = total_cost / 2.0
    return total_cost + attempts * wasted


def format_table(result: Tab2Result) -> str:
    header = (
        f"{'c':<10s}{'t(c)':>8s}{'w(c)':>8s}{'gamma':>8s}"
        f"{'a(c)':>9s}{'T(c)':>8s}"
    )
    lines = [header]
    for name, row in result.rows.items():
        lines.append(
            f"{name:<10s}{row.total_cost:>8.0f}{row.wasted:>8.1f}"
            f"{row.gamma:>8.2f}{row.attempts:>9.4f}{row.runtime:>8.2f}"
        )
    lines.append("")
    lines.append(
        f"T_Pt1 = {result.cost_pt1:.2f} (paper-rounded "
        f"{result.rounded_cost_pt1:.2f}); "
        f"T_Pt2 = {result.cost_pt2:.2f} (paper-rounded "
        f"{result.rounded_cost_pt2:.2f}); dominant: {result.dominant_path}"
    )
    return "\n".join(lines)
