"""Static vs adaptive regret under drift: does closing the loop pay?

The robustness experiment measures how much the static cost-based choice
*loses* when reality violates the model (chosen-vs-oracle regret); this
experiment asks how much of that loss the drift-aware adaptive re-planner
(:mod:`repro.engine.adaptive`) *recoups*.  Per drift regime it reports
three numbers over the same trace sets:

* ``oracle`` -- the best mean runtime over **all** materialization
  configurations, simulated exhaustively under the regime (exact, not
  sampled);
* ``static`` -- the mean runtime of the configuration the cost-based
  scheme picks from the assumed (stale) statistics, frozen for the whole
  run;
* ``adaptive`` -- the mean runtime of :class:`~repro.engine.adaptive.
  AdaptiveCostBased`, which starts from the *same* static choice and
  re-plans mid-query when its :class:`~repro.engine.adaptive.DriftMonitor`
  sees the observed MTBF or runtime leave the drift envelope.

``static_regret = static / oracle`` and ``adaptive_regret = adaptive /
oracle``; closing the loop pays wherever ``adaptive_regret <
static_regret``.  The zero-drift regime doubles as the identity control:
the adaptive runner must perform **zero** re-plans and reproduce the
static runtimes bit-for-bit (``identical_to_static``), so the envelope's
false-trigger rate is measured, not assumed.  The adaptive scheme can
even beat the *static* oracle on drifting regimes -- the oracle is the
best *fixed* configuration, while re-planning switches configurations
mid-flight.

``benchmarks/bench_adaptive.py`` wraps this into ``BENCH_adaptive.json``
and gates on it in CI (see ``docs/adaptive.md``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..chaos import CorrelatedFailures, FaultPolicy, MtbfDrift, Stragglers
from ..core.failure import HOUR
from ..core.search_context import SearchContext
from ..core.strategies import ConfiguredPlan, RecoveryMode
from ..engine.adaptive import AdaptiveCostBased, DriftEnvelope
from ..engine.campaign import CampaignCell, run_campaign
from ..engine.cluster import Cluster
from ..engine.coordinator import pure_baseline_runtime
from ..engine.executor import SimulatedEngine
from ..tpch.queries import build_query_plan
from .common import DEFAULT_MTTR, DEFAULT_NODES, default_params_for
from .robustness import Regime, _config_label


def default_regimes(
    mtbf: float, chaos_seed: int = 0
) -> Tuple[Regime, ...]:
    """The swept drift regimes, mildest first.

    ``zero drift`` is the identity control (reality matches the
    statistics exactly); the drifting regimes make the cluster fail
    faster than assumed -- constantly (stale statistic), cyclically
    (diurnal health), in rack-scoped bursts, or slow it down with
    stragglers the estimates don't know about.  Strengths are tuned so
    the sweep exercises both sides of the envelope: the stale and
    straggler regimes push observations far enough out that re-planning
    fires and pays, while the diurnal and burst regimes stay near the
    boundary where a well-calibrated envelope should *hold* (zero
    re-plans, bit-identical to static).
    """
    return (
        Regime("zero drift", None),
        Regime("stale MTBF /8", FaultPolicy(
            seed=chaos_seed, mtbf_drift=MtbfDrift(scale=8.0),
        )),
        Regime("diurnal x6 +-80%", FaultPolicy(
            seed=chaos_seed, mtbf_drift=MtbfDrift(
                scale=6.0, amplitude=0.8, period=mtbf / 8.0,
            ),
        )),
        Regime("rack bursts", FaultPolicy(
            seed=chaos_seed,
            correlated=CorrelatedFailures(
                burst_mtbf=mtbf / 4.0, intensity=1.0, rack_size=5,
                jitter=2.0,
            ),
        )),
        Regime("stragglers 40% x3", FaultPolicy(
            seed=chaos_seed, stragglers=Stragglers(rate=0.4, factor=3.0),
        )),
    )


@dataclass(frozen=True)
class AdaptiveDriftRow:
    """Static vs adaptive vs oracle for one drift regime."""

    regime: str
    effective_mtbf: float          #: what the regime's process really implies
    chosen_config: str             #: the assumed-statistics winner
    oracle_config: str             #: the regime's true best fixed config
    static_mean: float             #: mean runtime of the frozen choice
    adaptive_mean: float           #: mean runtime of the re-planning run
    oracle_mean: float             #: best fixed-config mean
    replans: int                   #: re-plan searches over all traces
    identical_to_static: bool      #: adaptive runtimes == static, bitwise

    @property
    def static_regret(self) -> float:
        if not math.isfinite(self.static_mean):
            return float("inf")
        return self.static_mean / self.oracle_mean

    @property
    def adaptive_regret(self) -> float:
        if not math.isfinite(self.adaptive_mean):
            return float("inf")
        return self.adaptive_mean / self.oracle_mean


@dataclass(frozen=True)
class AdaptiveDriftResult:
    query: str
    mtbf: float
    baseline: float                      #: pure failure-free runtime
    envelope: DriftEnvelope
    config_labels: Tuple[str, ...]       #: enumeration order
    rows: Tuple[AdaptiveDriftRow, ...]


def _regime_effective_mtbf(
    regime: Regime, nodes: int, mtbf: float
) -> float:
    if regime.policy is None:
        return mtbf
    if regime.policy.mtbf_drift is not None:
        return regime.policy.mtbf_drift.effective_mtbf(mtbf)
    if regime.policy.correlated is not None:
        return regime.policy.correlated.effective_mtbf(nodes, mtbf)
    return mtbf


def run(
    query: str = "Q5",
    scale_factor: float = 100.0,
    mtbf: float = 4.0 * HOUR,
    nodes: int = DEFAULT_NODES,
    trace_count: int = 10,
    base_seed: int = 1700,
    chaos_seed: int = 0,
    regimes: Optional[Sequence[Regime]] = None,
    envelope: DriftEnvelope = DriftEnvelope(),
    half_life: Optional[float] = None,
    jobs: int = 1,
) -> AdaptiveDriftResult:
    """Sweep drift regimes: frozen choice vs mid-query re-planning.

    One campaign per regime with two cells sharing the regime's trace
    sets: an exhaustive all-configurations cell (yields the oracle and
    the static chosen row) and an :class:`AdaptiveCostBased` cell.
    ``jobs`` fans each campaign out; results are bit-identical to
    ``jobs=1`` under every policy.

    The default assumed MTBF (4h) sits where the static scheme picks a
    *partial* configuration (one mid-plan checkpoint for Q5 at scale
    100): re-planning can only act at materialization boundaries, so a
    choice of ``{}`` would leave the adaptive runner with no decision
    points and the sweep would measure nothing (see the limitation note
    in :mod:`repro.engine.adaptive`).
    """
    if regimes is None:
        regimes = default_regimes(mtbf, chaos_seed=chaos_seed)
    params = default_params_for(nodes)
    plan = build_query_plan(query, scale_factor, params)
    cluster = Cluster(nodes=nodes, mttr=DEFAULT_MTTR)
    stats = cluster.stats(mtbf)

    # what the cost-based scheme picks under the assumed statistics
    context = SearchContext(plan, stats)
    scored: List[Tuple[float, Tuple[Tuple[int, bool], ...]]] = []
    for mask in context.iter_masks(order="sequential"):
        scored.append((context.dominant_cost(), context.config_for(mask)))
    chosen_index = min(range(len(scored)), key=lambda i: scored[i][0])

    configs = [config for _, config in scored]
    labels = [_config_label(config) for config in configs]
    configured = tuple(
        ConfiguredPlan(
            plan=plan.with_mat_config(dict(config)),
            recovery=RecoveryMode.FINE_GRAINED,
            scheme=label,
        )
        for config, label in zip(configs, labels)
    )
    adaptive_scheme = AdaptiveCostBased(
        envelope=envelope, half_life=half_life,
    )
    engine = SimulatedEngine(cluster)
    baseline = pure_baseline_runtime(plan, engine, stats)

    rows: List[AdaptiveDriftRow] = []
    for regime in regimes:
        grid_cell = CampaignCell(
            label=query,
            plan=plan,
            mtbf=mtbf,
            configured=configured,
            trace_count=trace_count,
            base_seed=base_seed,
            baseline=baseline,
        )
        adaptive_cell = CampaignCell(
            label=query,
            plan=plan,
            mtbf=mtbf,
            schemes=(adaptive_scheme,),
            trace_count=trace_count,
            base_seed=base_seed,
            baseline=baseline,
        )
        results = run_campaign(
            [grid_cell, adaptive_cell], cluster, jobs=jobs,
            chaos=regime.policy,
        )
        grid = results[:len(configured)]
        adaptive = results[len(configured)]
        if adaptive.error is not None:
            raise RuntimeError(
                f"adaptive unit failed under {regime.name!r}: "
                f"{adaptive.error}"
            )
        means = [result.mean_runtime for result in grid]
        oracle_index = min(range(len(means)), key=means.__getitem__)
        rows.append(AdaptiveDriftRow(
            regime=regime.name,
            effective_mtbf=_regime_effective_mtbf(regime, nodes, mtbf),
            chosen_config=labels[chosen_index],
            oracle_config=labels[oracle_index],
            static_mean=means[chosen_index],
            adaptive_mean=adaptive.mean_runtime,
            oracle_mean=means[oracle_index],
            replans=adaptive.replans,
            # deliberate bit-identity check (not cost arithmetic): the
            # zero-drift gate demands the adaptive run reproduce the
            # static scheme's runtimes exactly, so no tolerance applies
            identical_to_static=(
                tuple(adaptive.runtimes)
                == tuple(grid[chosen_index].runtimes)
            ),
        ))
    return AdaptiveDriftResult(
        query=query,
        mtbf=mtbf,
        baseline=baseline,
        envelope=envelope,
        config_labels=tuple(labels),
        rows=tuple(rows),
    )


def format_table(result: AdaptiveDriftResult) -> str:
    envelope = result.envelope
    lines = [
        f"Adaptive re-planning under drift -- static vs adaptive "
        f"chosen-vs-oracle M_P regret ({result.query}, assumed MTBF "
        f"{result.mtbf:.0f}s, baseline {result.baseline:.0f}s, "
        f"envelope mtbf x{envelope.mtbf_ratio}, "
        f"runtime x{envelope.runtime_ratio}):",
        f"{'regime':<20s}{'eff.MTBF':>10s}{'oracle':>9s}"
        f"{'static':>9s}{'adaptive':>10s}{'replans':>9s}",
    ]
    for row in result.rows:
        identity = " (=static)" if row.identical_to_static else ""
        lines.append(
            f"{row.regime:<20s}{row.effective_mtbf:>9.0f}s"
            f"{row.oracle_config:>9s}"
            f"{row.static_regret:>8.2f}x"
            f"{row.adaptive_regret:>9.2f}x"
            f"{row.replans:>9d}{identity}"
        )
    lines.append(
        "regret = mean simulated runtime / the regime's best fixed "
        "configuration; the adaptive runner starts from the static "
        "choice and re-plans when observations leave the envelope."
    )
    return "\n".join(lines)
