"""The paper's evaluation, experiment by experiment.

Each module reproduces one table or figure of the paper (see the
per-experiment index in DESIGN.md) and exposes ``run(...)`` returning a
structured result plus ``format_table(result)`` rendering it the way the
paper reports it.  The ``benchmarks/`` directory wraps these into
pytest-benchmark targets; ``EXPERIMENTS.md`` records paper-vs-measured.
"""

from . import (
    adaptive_drift,
    cardinality_validation,
    fig1_success,
    fig8_queries,
    fig10_runtime,
    fig11_mtbf,
    fig12_accuracy,
    fig13_pruning,
    robustness,
    tab2_example,
    tab3_robustness,
)

__all__ = [
    "adaptive_drift",
    "cardinality_validation",
    "fig1_success",
    "fig8_queries",
    "fig10_runtime",
    "fig11_mtbf",
    "fig12_accuracy",
    "fig13_pruning",
    "robustness",
    "tab2_example",
    "tab3_robustness",
]
