"""Shared plumbing for the evaluation experiments.

Every overhead experiment follows the paper's protocol (Section 5.1/5.2):

1. build the query's costed plan at the experiment's scale factor;
2. measure the baseline -- the failure-free runtime of the plan without
   any extra materialization;
3. generate 10 failure traces for the MTBF under test;
4. run every fault-tolerance scheme against the *same* traces;
5. report overhead = mean runtime / baseline - 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .. import obs
from ..core.plan import Plan
from ..core.strategies import FaultToleranceScheme
from ..engine.campaign import CampaignCell, CellResult, run_campaign
from ..engine.cluster import Cluster
from ..stats.calibration import DEFAULT_NODES, default_parameters
from ..stats.estimates import CostParameters

#: the paper's cluster configuration
DEFAULT_MTTR = 1.0
DEFAULT_TRACES = 10


@dataclass(frozen=True)
class OverheadCell:
    """One (query, scheme, mtbf) measurement."""

    query: str
    scheme: str
    mtbf: float
    baseline: float
    overhead_percent: float
    aborted: bool
    materialized_ids: "tuple[int, ...]"

    def formatted(self) -> str:
        if self.aborted:
            return "Aborted"
        return f"{self.overhead_percent:.0f}%"


def overhead_cell(result: CellResult) -> OverheadCell:
    """Convert one campaign row into the experiments' reporting shape."""
    return OverheadCell(
        query=result.label,
        scheme=result.scheme,
        mtbf=result.mtbf,
        baseline=result.baseline,
        overhead_percent=result.overhead_percent,
        aborted=result.all_aborted,
        materialized_ids=result.materialized_ids,
    )


def comparison_cell(
    plan: Plan,
    query_name: str,
    mtbf: float,
    trace_count: int = DEFAULT_TRACES,
    base_seed: int = 0,
    schemes: Optional[Sequence[FaultToleranceScheme]] = None,
    traces: Optional[Sequence] = None,
    baseline: Optional[float] = None,
) -> CampaignCell:
    """One grid cell of the standard protocol, ready for a campaign."""
    return CampaignCell(
        label=query_name,
        plan=plan,
        mtbf=mtbf,
        schemes=tuple(schemes) if schemes is not None else (),
        trace_count=trace_count,
        base_seed=base_seed,
        traces=tuple(traces) if traces is not None else None,
        baseline=baseline,
    )


def run_overhead_comparison(
    plan: Plan,
    query_name: str,
    mtbf: float,
    nodes: int = DEFAULT_NODES,
    mttr: float = DEFAULT_MTTR,
    trace_count: int = DEFAULT_TRACES,
    base_seed: int = 0,
    schemes: Optional[Sequence[FaultToleranceScheme]] = None,
    traces: Optional[Sequence] = None,
    jobs: int = 1,
    baseline: Optional[float] = None,
) -> List[OverheadCell]:
    """Steps 1-5 above for one plan and MTBF (a single-cell campaign)."""
    with obs.span("experiment.cell", query=query_name, mtbf=mtbf,
                  traces=trace_count):
        cluster = Cluster(nodes=nodes, mttr=mttr)
        cell = comparison_cell(
            plan, query_name, mtbf,
            trace_count=trace_count, base_seed=base_seed,
            schemes=schemes, traces=traces, baseline=baseline,
        )
        results = run_campaign([cell], cluster, jobs=jobs)
        obs.add("experiment.cells")
        obs.add("experiment.measurements", len(results))
    return [overhead_cell(result) for result in results]


def overhead_grid(cells: Sequence[OverheadCell]) -> str:
    """Render cells as a query x scheme text table (Figure 8 style)."""
    queries = list(dict.fromkeys(cell.query for cell in cells))
    schemes = list(dict.fromkeys(cell.scheme for cell in cells))
    lookup: Dict[tuple, OverheadCell] = {
        (cell.query, cell.scheme): cell for cell in cells
    }
    width = max(len(s) for s in schemes) + 2
    header = "query".ljust(8) + "".join(s.rjust(width) for s in schemes)
    lines = [header]
    for query in queries:
        row = query.ljust(8)
        for scheme in schemes:
            cell = lookup.get((query, scheme))
            row += (cell.formatted() if cell else "-").rjust(width)
        lines.append(row)
    return "\n".join(lines)


def default_params_for(nodes: int = DEFAULT_NODES) -> CostParameters:
    return default_parameters(nodes=nodes)
