"""Shared plumbing for the evaluation experiments.

Every overhead experiment follows the paper's protocol (Section 5.1/5.2):

1. build the query's costed plan at the experiment's scale factor;
2. measure the baseline -- the failure-free runtime of the plan without
   any extra materialization;
3. generate 10 failure traces for the MTBF under test;
4. run every fault-tolerance scheme against the *same* traces;
5. report overhead = mean runtime / baseline - 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.plan import Plan
from ..core.strategies import FaultToleranceScheme, standard_schemes
from ..engine.cluster import Cluster
from ..engine.coordinator import measure_scheme, pure_baseline_runtime
from ..engine.executor import SimulatedEngine
from ..engine.traces import FailureTrace, generate_trace_set
from ..stats.calibration import DEFAULT_NODES, default_parameters
from ..stats.estimates import CostParameters

#: the paper's cluster configuration
DEFAULT_MTTR = 1.0
DEFAULT_TRACES = 10


@dataclass(frozen=True)
class OverheadCell:
    """One (query, scheme, mtbf) measurement."""

    query: str
    scheme: str
    mtbf: float
    baseline: float
    overhead_percent: float
    aborted: bool
    materialized_ids: "tuple[int, ...]"

    def formatted(self) -> str:
        if self.aborted:
            return "Aborted"
        return f"{self.overhead_percent:.0f}%"


def run_overhead_comparison(
    plan: Plan,
    query_name: str,
    mtbf: float,
    nodes: int = DEFAULT_NODES,
    mttr: float = DEFAULT_MTTR,
    trace_count: int = DEFAULT_TRACES,
    base_seed: int = 0,
    schemes: Optional[Sequence[FaultToleranceScheme]] = None,
    traces: Optional[Sequence[FailureTrace]] = None,
) -> List[OverheadCell]:
    """Steps 1-5 above for one plan and MTBF."""
    if schemes is None:
        schemes = standard_schemes()
    cluster = Cluster(nodes=nodes, mttr=mttr)
    stats = cluster.stats(mtbf)
    engine = SimulatedEngine(cluster)
    baseline = pure_baseline_runtime(plan, engine, stats)
    if traces is None:
        horizon = max(baseline * 20.0, mtbf * 2.0, 1000.0)
        traces = generate_trace_set(
            nodes, mtbf, horizon, count=trace_count, base_seed=base_seed
        )
    cells = []
    for scheme in schemes:
        measurement = measure_scheme(
            scheme, plan, engine, stats, traces, baseline=baseline
        )
        cells.append(OverheadCell(
            query=query_name,
            scheme=scheme.name,
            mtbf=mtbf,
            baseline=baseline,
            overhead_percent=measurement.overhead_percent,
            aborted=measurement.all_aborted,
            materialized_ids=measurement.materialized_ids,
        ))
    return cells


def overhead_grid(cells: Sequence[OverheadCell]) -> str:
    """Render cells as a query x scheme text table (Figure 8 style)."""
    queries = list(dict.fromkeys(cell.query for cell in cells))
    schemes = list(dict.fromkeys(cell.scheme for cell in cells))
    lookup: Dict[tuple, OverheadCell] = {
        (cell.query, cell.scheme): cell for cell in cells
    }
    width = max(len(s) for s in schemes) + 2
    header = "query".ljust(8) + "".join(s.rjust(width) for s in schemes)
    lines = [header]
    for query in queries:
        row = query.ljust(8)
        for scheme in schemes:
            cell = lookup.get((query, scheme))
            row += (cell.formatted() if cell else "-").rjust(width)
        lines.append(row)
    return "\n".join(lines)


def default_params_for(nodes: int = DEFAULT_NODES) -> CostParameters:
    return default_parameters(nodes=nodes)
