"""Robustness under *wrong assumptions*: chosen-vs-oracle regret (chaos).

Table 3 asks how the cost model degrades when the *statistics* it is fed
are inaccurate.  This experiment extends that question to the model's
structural *assumptions*: failures arrive independently and
exponentially, materialization writes always succeed, nodes are equally
fast.  Each injected regime (a :class:`~repro.chaos.FaultPolicy`)
violates one assumption while the optimizer still plans under the
assumed exponential statistics.

Protocol: enumerate every materialization configuration ``M_P`` of the
query's plan; the *chosen* configuration is the estimated-cost winner
under the assumed statistics (what the cost-based scheme would pick).
Simulate **all** configurations under each injected regime over the same
trace sets; the *oracle* configuration is the one with the smallest mean
simulated runtime under that regime.  Report

``regret = mean runtime of chosen / mean runtime of oracle``

per regime -- 1.00x means the cost model's pick was still optimal even
though its assumptions were violated; the gap quantifies how much a
regime-aware optimizer could recoup.  The search layer itself is never
shown the injections (pinned by the differential test battery); an
operator who *knows* the burst regime can compensate by feeding the
model the effective MTBF
(:meth:`~repro.chaos.CorrelatedFailures.effective_mtbf`), reported per
regime for reference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..chaos import CorrelatedFailures, FaultPolicy, FlakyWrites, Stragglers
from ..core.failure import HOUR
from ..core.search_context import SearchContext
from ..core.strategies import ConfiguredPlan, RecoveryMode
from ..engine.campaign import CampaignCell, run_campaign
from ..engine.cluster import Cluster
from ..engine.coordinator import pure_baseline_runtime
from ..engine.executor import SimulatedEngine
from ..tpch.queries import build_query_plan
from .common import DEFAULT_MTTR, DEFAULT_NODES, default_params_for


@dataclass(frozen=True)
class Regime:
    """One injected fault regime: a name plus the policy realizing it."""

    name: str
    policy: Optional[FaultPolicy]   #: ``None`` = the assumed regime


def default_regimes(
    mtbf: float, chaos_seed: int = 0
) -> Tuple[Regime, ...]:
    """The swept regimes, mildest first.

    Scaled off the assumed per-node ``mtbf`` so the sweep stays
    meaningful at any cluster: rack bursts with a cluster-wide burst
    gap of half (resp. a quarter of) the per-node MTBF roughly double
    (resp. quadruple) the failure rate a 10-node cluster sees.
    """
    return (
        Regime("assumed (exponential)", None),
        Regime("weibull k=0.7", FaultPolicy(
            seed=chaos_seed,
            correlated=CorrelatedFailures(
                burst_mtbf=mtbf, intensity=0.0, base_shape=0.7,
            ),
        )),
        Regime("rack bursts", FaultPolicy(
            seed=chaos_seed,
            correlated=CorrelatedFailures(
                burst_mtbf=mtbf / 2.0, intensity=1.0, rack_size=3,
                jitter=2.0,
            ),
        )),
        Regime("heavy rack bursts", FaultPolicy(
            seed=chaos_seed,
            correlated=CorrelatedFailures(
                burst_mtbf=mtbf / 4.0, intensity=1.0, rack_size=5,
                jitter=2.0,
            ),
        )),
        Regime("flaky writes 10%", FaultPolicy(
            seed=chaos_seed, flaky_writes=FlakyWrites(rate=0.1),
        )),
        Regime("stragglers 30% x2", FaultPolicy(
            seed=chaos_seed, stragglers=Stragglers(rate=0.3, factor=2.0),
        )),
    )


@dataclass(frozen=True)
class RobustnessRow:
    """Chosen-vs-oracle outcome for one injected regime."""

    regime: str
    effective_mtbf: float          #: what the regime's traces really imply
    chosen_config: str             #: the assumed-statistics winner
    oracle_config: str             #: the regime's true best configuration
    chosen_mean: float             #: mean simulated runtime of chosen
    oracle_mean: float             #: mean simulated runtime of oracle

    @property
    def regret(self) -> float:
        """``chosen_mean / oracle_mean`` (1.0 = chosen was optimal)."""
        if not math.isfinite(self.chosen_mean):
            return float("inf")
        return self.chosen_mean / self.oracle_mean


@dataclass(frozen=True)
class RobustnessResult:
    query: str
    mtbf: float
    baseline: float                      #: pure failure-free runtime
    config_labels: Tuple[str, ...]       #: enumeration order
    rows: Tuple[RobustnessRow, ...]


def _config_label(config: Sequence[Tuple[int, bool]]) -> str:
    materialized = [str(op_id) for op_id, flag in config if flag]
    return "{" + ",".join(materialized) + "}"


def run(
    query: str = "Q5",
    scale_factor: float = 100.0,
    mtbf: float = HOUR,
    nodes: int = DEFAULT_NODES,
    trace_count: int = 10,
    base_seed: int = 1500,
    chaos_seed: int = 0,
    regimes: Optional[Sequence[Regime]] = None,
    jobs: int = 1,
) -> RobustnessResult:
    """Sweep injected regimes against the assumed-statistics choice.

    One campaign per regime (a regime's policy is campaign-wide); every
    campaign measures *all* materialization configurations over the
    regime's trace sets, so the oracle is exact, not sampled.  ``jobs``
    fans each campaign out; results are bit-identical to ``jobs=1``
    under every policy.
    """
    if regimes is None:
        regimes = default_regimes(mtbf, chaos_seed=chaos_seed)
    params = default_params_for(nodes)
    plan = build_query_plan(query, scale_factor, params)
    cluster = Cluster(nodes=nodes, mttr=DEFAULT_MTTR)
    stats = cluster.stats(mtbf)

    # what the cost-based scheme would pick under the assumed statistics
    # (sequential order keeps labels aligned with the naive enumeration)
    context = SearchContext(plan, stats)
    scored: List[Tuple[float, Tuple[Tuple[int, bool], ...]]] = []
    for mask in context.iter_masks(order="sequential"):
        scored.append((context.dominant_cost(), context.config_for(mask)))
    chosen_index = min(range(len(scored)), key=lambda i: scored[i][0])

    configs = [config for _, config in scored]
    labels = [_config_label(config) for config in configs]
    configured = tuple(
        ConfiguredPlan(
            plan=plan.with_mat_config(dict(config)),
            recovery=RecoveryMode.FINE_GRAINED,
            scheme=label,
        )
        for config, label in zip(configs, labels)
    )
    engine = SimulatedEngine(cluster)
    baseline = pure_baseline_runtime(plan, engine, stats)

    rows: List[RobustnessRow] = []
    for regime in regimes:
        cell = CampaignCell(
            label=query,
            plan=plan,
            mtbf=mtbf,
            configured=configured,
            trace_count=trace_count,
            base_seed=base_seed,
            baseline=baseline,
        )
        results = run_campaign(
            [cell], cluster, jobs=jobs, chaos=regime.policy
        )
        means = [result.mean_runtime for result in results]
        oracle_index = min(range(len(means)), key=means.__getitem__)
        effective = mtbf
        if regime.policy is not None and regime.policy.correlated is not None:
            effective = regime.policy.correlated.effective_mtbf(nodes, mtbf)
        rows.append(RobustnessRow(
            regime=regime.name,
            effective_mtbf=effective,
            chosen_config=labels[chosen_index],
            oracle_config=labels[oracle_index],
            chosen_mean=means[chosen_index],
            oracle_mean=means[oracle_index],
        ))
    return RobustnessResult(
        query=query,
        mtbf=mtbf,
        baseline=baseline,
        config_labels=tuple(labels),
        rows=tuple(rows),
    )


def format_table(result: RobustnessResult) -> str:
    lines = [
        f"Robustness -- chosen-vs-oracle M_P regret under injected "
        f"regimes ({result.query}, assumed MTBF {result.mtbf:.0f}s, "
        f"baseline {result.baseline:.0f}s):",
        f"{'regime':<24s}{'eff.MTBF':>10s}{'chosen':>10s}"
        f"{'oracle':>10s}{'regret':>9s}",
    ]
    for row in result.rows:
        lines.append(
            f"{row.regime:<24s}{row.effective_mtbf:>9.0f}s"
            f"{row.chosen_config:>10s}{row.oracle_config:>10s}"
            f"{row.regret:>8.2f}x"
        )
    lines.append(
        "regret = mean simulated runtime of the assumed-statistics "
        "choice / the regime's true best; the optimizer never sees the "
        "injections."
    )
    return "\n".join(lines)
