"""Table 3: robustness of the cost model to inaccurate statistics (Exp. 3b).

Protocol (Section 5.4): rank all 32 materialization configurations of
TPC-H Q5 (SF = 100, MTBF = 1 hour) by their estimated runtime with exact
statistics -- the *baseline ranking*.  Then perturb the statistics the
optimizer sees (MTBF, I/O costs, or compute + I/O costs, each by factors
0.1x / 0.5x / 2x / 10x), re-rank, and report which baseline positions the
perturbed top-5 now occupies.  Small numbers mean the perturbation barely
hurt; a 28 in the top row means the optimizer picked a plan that was
28th-best under the true statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.cost_model import ClusterStats
from ..core.failure import HOUR
from ..core.plan import Plan
from ..core.search_context import SearchContext
from ..engine.campaign import campaign_map
from ..stats.perturbation import (
    PAPER_FACTORS,
    PerturbationKind,
    perturb_plan,
    perturb_stats,
)
from ..tpch.queries import build_query_plan
from .common import DEFAULT_MTTR, DEFAULT_NODES, default_params_for

MatConfigKey = Tuple[Tuple[int, bool], ...]


@dataclass(frozen=True)
class Tab3Row:
    kind: PerturbationKind
    factor: float
    #: baseline positions (1-based) of the perturbed ranking's top-5
    top5_baseline_positions: Tuple[int, ...]

    @property
    def label(self) -> str:
        return f"{self.kind.value} x{self.factor:g}"


@dataclass(frozen=True)
class Tab3Result:
    #: configurations ordered by exact-statistics estimate (the baseline)
    baseline_ranking: Tuple[MatConfigKey, ...]
    rows: Tuple[Tab3Row, ...]
    #: estimated runtimes of the baseline ranking (for regret analysis)
    baseline_costs: Tuple[float, ...]

    def regret(self, row: Tab3Row) -> float:
        """True-cost ratio of the perturbed winner vs the true optimum."""
        winner_position = row.top5_baseline_positions[0]
        return (
            self.baseline_costs[winner_position - 1]
            / self.baseline_costs[0]
        )


def _ranking(
    plan: Plan, stats: ClusterStats
) -> List[Tuple[float, MatConfigKey]]:
    """All configurations with their estimated runtime, cheapest first.

    Scored through a :class:`SearchContext` sweep (one incremental
    collapse per configuration); the stable sort keeps equal-cost
    configurations in enumeration order, exactly like the previous
    per-config rebuild did.
    """
    context = SearchContext(plan, stats)
    scored = []
    for mask in context.iter_masks(order="sequential"):
        scored.append((context.dominant_cost(), context.config_for(mask)))
    scored.sort(key=lambda item: item[0])
    return scored


def _perturbed_top5(
    item: Tuple[Plan, ClusterStats, PerturbationKind, float],
) -> Tuple[MatConfigKey, ...]:
    """Top-5 configurations after perturbing what the optimizer sees.

    Module-level so :func:`~repro.engine.campaign.campaign_map` can ship
    it to worker processes.
    """
    plan, stats, kind, factor = item
    perturbed_plan = perturb_plan(plan, kind, factor)
    perturbed_stats = perturb_stats(stats, kind, factor)
    perturbed_ranking = _ranking(perturbed_plan, perturbed_stats)
    return tuple(config for _, config in perturbed_ranking[:5])


def run(
    scale_factor: float = 100.0,
    mtbf: float = HOUR,
    nodes: int = DEFAULT_NODES,
    factors: Sequence[float] = PAPER_FACTORS,
    jobs: int = 1,
) -> Tab3Result:
    params = default_params_for(nodes)
    plan = build_query_plan("Q5", scale_factor, params)
    stats = ClusterStats(mtbf=mtbf, mttr=DEFAULT_MTTR, nodes=nodes)

    baseline_scored = _ranking(plan, stats)
    baseline_ranking = [config for _, config in baseline_scored]
    baseline_costs = [cost for cost, _ in baseline_scored]
    position_of: Dict[MatConfigKey, int] = {
        config: index + 1 for index, config in enumerate(baseline_ranking)
    }

    grid = [
        (plan, stats, kind, factor)
        for kind in PerturbationKind
        for factor in factors
    ]
    top5s = campaign_map(_perturbed_top5, grid, jobs=jobs)
    rows: List[Tab3Row] = [
        Tab3Row(
            kind=kind,
            factor=factor,
            top5_baseline_positions=tuple(
                position_of[config] for config in top5
            ),
        )
        for (_, _, kind, factor), top5 in zip(grid, top5s)
    ]
    return Tab3Result(
        baseline_ranking=tuple(baseline_ranking),
        rows=tuple(rows),
        baseline_costs=tuple(baseline_costs),
    )


def format_table(result: Tab3Result) -> str:
    lines = [
        "Table 3 -- baseline positions of the perturbed top-5 "
        "(1 2 3 4 5 = unaffected):",
        f"{'perturbation':<28s}{'top-5 baseline positions':>30s}"
        f"{'regret':>9s}",
    ]
    for row in result.rows:
        positions = " ".join(f"{p:>2d}" for p in row.top5_baseline_positions)
        lines.append(
            f"{row.label:<28s}{positions:>30s}"
            f"{result.regret(row):>8.2f}x"
        )
    return "\n".join(lines)
