"""Figure 12: accuracy of the cost model (Exp. 3a).

Panel (a): actual vs. estimated runtime of the cost-based scheme's chosen
plan for TPC-H Q5 at SF = 100 across MTBFs from one month down to 30
minutes.  Panel (b): actual vs. estimated runtime of *all 32*
materialization configurations of Q5's plan (5 free operators) at a fixed
MTBF of one hour, sorted by estimated runtime.

Expected shapes: estimates track actuals closely for high MTBFs and
underestimate by up to ~30 % at low MTBFs (the model ignores cross-node
max effects and uses the dominant path only), and estimated and actual
rankings of the 32 configurations correlate strongly -- the property that
makes the model useful for plan *selection*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core.enumeration import enumerate_mat_configs, estimate_plan_cost
from ..core.failure import DAY, HOUR, MINUTE, MONTH, WEEK
from ..core.strategies import ConfiguredPlan, CostBased, RecoveryMode
from ..engine.campaign import CampaignCell, run_campaign
from ..engine.cluster import Cluster
from ..engine.executor import SimulatedEngine
from ..tpch.queries import build_query_plan
from .common import DEFAULT_MTTR, DEFAULT_NODES, default_params_for

#: the paper's MTBF range, one month down to 30 minutes
PAPER_MTBFS: Tuple[Tuple[str, float], ...] = (
    ("MTBF=1 month", MONTH),
    ("MTBF=1 week", WEEK),
    ("MTBF=1 day", DAY),
    ("MTBF=1 hour", HOUR),
    ("MTBF=30 min", 30 * MINUTE),
)


@dataclass(frozen=True)
class AccuracyPoint:
    label: str
    estimated: float
    actual: float

    @property
    def error_percent(self) -> float:
        """Relative estimation error ((estimated - actual) / actual)."""
        return 100.0 * (self.estimated - self.actual) / self.actual


@dataclass(frozen=True)
class Fig12Result:
    #: panel (a): one point per MTBF
    by_mtbf: Tuple[AccuracyPoint, ...]
    #: panel (b): one point per materialization configuration,
    #: sorted ascending by estimated runtime
    by_config: Tuple[AccuracyPoint, ...]
    #: Spearman rank correlation between estimated and actual in panel (b)
    rank_correlation: float


def run(
    scale_factor: float = 100.0,
    nodes: int = DEFAULT_NODES,
    trace_count: int = 10,
    panel_b_mtbf: float = HOUR,
    mtbfs: Sequence[Tuple[str, float]] = PAPER_MTBFS,
    base_seed: int = 1200,
    jobs: int = 1,
) -> Fig12Result:
    params = default_params_for(nodes)
    plan = build_query_plan("Q5", scale_factor, params)
    cluster = Cluster(nodes=nodes, mttr=DEFAULT_MTTR)
    engine = SimulatedEngine(cluster)

    # the cost-based searches run in the parent (panel (a) needs the
    # search's own estimate); the simulations fan out as one campaign of
    # pre-configured cells.  The campaign lints the plan once up front,
    # so the searches skip their per-configure re-check.
    cells: List[CampaignCell] = []
    estimates: List[float] = []
    labels: List[str] = []
    for index, (label, mtbf) in enumerate(mtbfs):
        stats = cluster.stats(mtbf)
        configured = CostBased(preflight_lint=False).configure(plan, stats)
        estimates.append(configured.search.cost)
        labels.append(label)
        cells.append(CampaignCell(
            label=label,
            plan=plan,
            mtbf=mtbf,
            configured=(configured,),
            trace_count=trace_count,
            base_seed=base_seed + index,
            baseline=engine.execute(configured).runtime,
        ))

    stats = cluster.stats(panel_b_mtbf)
    config_labels: List[str] = []
    config_estimates: List[float] = []
    for config_index, config in enumerate(enumerate_mat_configs(plan)):
        candidate = plan.with_mat_config(config)
        estimate = estimate_plan_cost(candidate, stats)
        configured = ConfiguredPlan(
            plan=candidate,
            recovery=RecoveryMode.FINE_GRAINED,
            scheme=f"config-{config_index}",
        )
        config_labels.append(_config_label(config))
        config_estimates.append(estimate.cost)
        cells.append(CampaignCell(
            label=f"config-{config_index}",
            plan=plan,
            mtbf=panel_b_mtbf,
            configured=(configured,),
            trace_count=trace_count,
            base_seed=base_seed + 100,
            baseline=engine.execute(configured).runtime,
        ))

    results = run_campaign(cells, cluster, jobs=jobs)
    panel_a, panel_b = results[:len(mtbfs)], results[len(mtbfs):]

    by_mtbf = tuple(
        AccuracyPoint(
            label=labels[i],
            estimated=estimates[i],
            actual=_mean_actual(result),
        )
        for i, result in enumerate(panel_a)
    )
    by_config = [
        AccuracyPoint(
            label=config_labels[i],
            estimated=config_estimates[i],
            actual=_mean_actual(result),
        )
        for i, result in enumerate(panel_b)
    ]
    by_config.sort(key=lambda point: point.estimated)
    return Fig12Result(
        by_mtbf=by_mtbf,
        by_config=tuple(by_config),
        rank_correlation=_spearman(
            [p.estimated for p in by_config],
            [p.actual for p in by_config],
        ),
    )


def _mean_actual(result) -> float:
    """Mean achieved runtime over the cell's traces.

    Matches the pre-campaign implementation exactly: the mean is taken
    with :func:`numpy.mean` (whose pairwise summation can differ from a
    running sum in the last ulp) over all runs -- fine-grained recovery
    never aborts, so the finished-run set is the full trace set.
    """
    runtimes = list(result.runtimes)
    runtimes.extend([float("inf")] * result.aborted_runs)
    return float(np.mean(runtimes))


def _config_label(config) -> str:
    materialized = [str(op_id) for op_id, flag in config if flag]
    return "{" + ",".join(materialized) + "}"


def _spearman(a: Sequence[float], b: Sequence[float]) -> float:
    rank_a = np.argsort(np.argsort(a))
    rank_b = np.argsort(np.argsort(b))
    if len(a) < 2:
        return 1.0
    return float(np.corrcoef(rank_a, rank_b)[0, 1])


def format_table(result: Fig12Result) -> str:
    lines = ["Figure 12(a) -- accuracy across MTBFs (Q5 @ SF 100):",
             f"{'MTBF':<16s}{'estimated(s)':>14s}{'actual(s)':>12s}"
             f"{'error':>9s}"]
    for point in result.by_mtbf:
        lines.append(
            f"{point.label:<16s}{point.estimated:>14.0f}"
            f"{point.actual:>12.0f}{point.error_percent:>8.1f}%"
        )
    lines.append("")
    lines.append("Figure 12(b) -- all 32 configurations at MTBF=1 hour "
                 "(sorted by estimate):")
    lines.append(f"{'rank':<6s}{'materialized':<20s}"
                 f"{'estimated(s)':>14s}{'actual(s)':>12s}")
    for rank, point in enumerate(result.by_config, start=1):
        lines.append(
            f"{rank:<6d}{point.label:<20s}{point.estimated:>14.0f}"
            f"{point.actual:>12.0f}"
        )
    lines.append("")
    lines.append(f"Spearman rank correlation (estimated vs actual): "
                 f"{result.rank_correlation:.3f}")
    return "\n".join(lines)
