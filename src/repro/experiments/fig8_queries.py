"""Figure 8: overhead of the four schemes for varying queries.

The paper runs Q1, Q3, Q5, Q1C and Q2C over a TPC-H database of SF = 100
and injects failures with two MTBF settings per query:

* **low MTBF** -- 1.1x the query's baseline runtime (high failure rate;
  Figure 8a), and
* **high MTBF** -- 10x the baseline runtime (low failure rate;
  Figure 8b).

Expected shapes: the cost-based scheme always has the least (or tied)
overhead; no-mat (restart) aborts every query at low MTBF; at high MTBF
the all-mat scheme pays a visible materialization tax on Q1C/Q2C whose
intermediates are expensive to write.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..chaos import FaultPolicy
from ..core.strategies import standard_schemes
from ..engine.campaign import run_campaign
from ..engine.cluster import Cluster
from ..engine.coordinator import pure_baseline_runtime
from ..engine.executor import SimulatedEngine
from ..tpch.queries import build_query_plan
from .common import (
    DEFAULT_MTTR,
    DEFAULT_NODES,
    OverheadCell,
    comparison_cell,
    default_params_for,
    overhead_cell,
    overhead_grid,
)

PAPER_QUERIES: Tuple[str, ...] = ("Q1", "Q3", "Q5", "Q1C", "Q2C")


@dataclass(frozen=True)
class Fig8Result:
    low_mtbf_cells: Tuple[OverheadCell, ...]     #: Figure 8(a)
    high_mtbf_cells: Tuple[OverheadCell, ...]    #: Figure 8(b)
    baselines: Dict[str, float]


def run(
    scale_factor: float = 100.0,
    queries: Sequence[str] = PAPER_QUERIES,
    nodes: int = DEFAULT_NODES,
    trace_count: int = 10,
    base_seed: int = 800,
    engine_name: str = "fast",
    parallelism: int = 1,
    jobs: int = 1,
    chaos: Optional[FaultPolicy] = None,
) -> Fig8Result:
    """Measure both Figure 8 panels as one campaign.

    ``engine_name``/``parallelism`` select the cost-based scheme's
    search engine (results are engine-independent; see
    :func:`repro.core.enumeration.find_best_ft_plan`).  ``jobs`` fans
    the (query, MTBF, scheme) grid out over worker processes; results
    are identical to the serial run.  ``chaos`` injects a fault policy
    into every measurement (baselines stay clean; a null policy
    reproduces the un-injected figure exactly).
    """
    params = default_params_for(nodes)
    cluster = Cluster(nodes=nodes, mttr=DEFAULT_MTTR)
    engine = SimulatedEngine(cluster)
    # the campaign preflights each plan once up front, so the cost-based
    # search skips its per-configure re-lint
    schemes = standard_schemes(engine=engine_name, parallelism=parallelism,
                               preflight_lint=False)

    cells = []
    baselines: Dict[str, float] = {}
    for query_name in queries:
        plan = build_query_plan(query_name, scale_factor, params)
        baseline = pure_baseline_runtime(
            plan, engine, cluster.stats(mtbf=1.0)
        )
        baselines[query_name] = baseline
        cells.append(comparison_cell(          # low MTBF -- Figure 8(a)
            plan, query_name, mtbf=1.1 * baseline,
            trace_count=trace_count, base_seed=base_seed,
            schemes=schemes, baseline=baseline,
        ))
        cells.append(comparison_cell(          # high MTBF -- Figure 8(b)
            plan, query_name, mtbf=10.0 * baseline,
            trace_count=trace_count, base_seed=base_seed + 1,
            schemes=schemes, baseline=baseline,
        ))
    results = run_campaign(cells, cluster, jobs=jobs, chaos=chaos)
    low_cells: List[OverheadCell] = []
    high_cells: List[OverheadCell] = []
    for result in results:
        # cells alternate low, high per query
        target = low_cells if result.cell_index % 2 == 0 else high_cells
        target.append(overhead_cell(result))
    return Fig8Result(
        low_mtbf_cells=tuple(low_cells),
        high_mtbf_cells=tuple(high_cells),
        baselines=baselines,
    )


def format_table(result: Fig8Result) -> str:
    lines = ["Figure 8(a) -- low MTBF (1.1x baseline runtime):"]
    lines.append(overhead_grid(result.low_mtbf_cells))
    lines.append("")
    lines.append("Figure 8(b) -- high MTBF (10x baseline runtime):")
    lines.append(overhead_grid(result.high_mtbf_cells))
    lines.append("")
    lines.append("baseline runtimes (s): " + ", ".join(
        f"{q}={b:.0f}" for q, b in result.baselines.items()
    ))
    return "\n".join(lines)
