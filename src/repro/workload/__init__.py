"""Multi-tenant cluster workloads: thousands of queries, one cluster.

The package composes the existing subsystems into the roadmap's shared
production-cluster scenario: seeded tenant traffic
(:mod:`~repro.workload.tenants`), diurnal MTBF cycles and spot-fleet
churn (:mod:`~repro.workload.churn`), resilient advisory-driven plan
choice (:mod:`~repro.workload.advisor`), and the end-to-end simulation
with priority admission queueing (:mod:`~repro.workload.simulate`).
See ``docs/workload.md``.
"""

from .advisor import (
    DEFAULT_ADVICE_RETRIES,
    AdvisedCostBased,
    configured_from_advice,
    resolve_advice,
)
from .churn import DiurnalCycle, spot_fleet_policy
from .simulate import (
    CHOSEN_INDEX,
    SCHEME_ORDER,
    AdmissionRecord,
    AdviceTraffic,
    ClassMetrics,
    GroupOutcome,
    MeasurementGroup,
    MultiTenantConfig,
    MultiTenantPrepared,
    MultiTenantResult,
    arrival_stats,
    assemble,
    prepare,
    run_multitenant,
    simulate_admission,
)
from .tenants import (
    DEFAULT_TENANT_CLASSES,
    PlanTemplate,
    QueryArrival,
    TenantClass,
    TenantWorkload,
    default_tenant_mix,
    generate_tenant_workload,
)

__all__ = [
    "DEFAULT_ADVICE_RETRIES",
    "AdvisedCostBased",
    "configured_from_advice",
    "resolve_advice",
    "DiurnalCycle",
    "spot_fleet_policy",
    "CHOSEN_INDEX",
    "SCHEME_ORDER",
    "AdmissionRecord",
    "AdviceTraffic",
    "ClassMetrics",
    "GroupOutcome",
    "MeasurementGroup",
    "MultiTenantConfig",
    "MultiTenantPrepared",
    "MultiTenantResult",
    "arrival_stats",
    "assemble",
    "prepare",
    "run_multitenant",
    "simulate_admission",
    "DEFAULT_TENANT_CLASSES",
    "PlanTemplate",
    "QueryArrival",
    "TenantClass",
    "TenantWorkload",
    "default_tenant_mix",
    "generate_tenant_workload",
]
