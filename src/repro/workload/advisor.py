"""Driving plan choice through the advisory service, resiliently.

The multi-tenant workload does not call
:func:`~repro.core.enumeration.find_best_ft_plan` directly -- every
query's materialization configuration comes from a
:class:`~repro.serve.AdvisoryEngine`, exactly like a fleet of clients
hitting the advisory service.  That buys the workload the engine's
cache/single-flight layers (and lets the experiment *measure* them),
but it also imports the service's failure mode: a bounded request queue
that sheds with :class:`~repro.serve.ServiceOverloaded` under pressure.

:func:`resolve_advice` is the client-side contract: bounded retries
with exponential backoff on shed (counted on the
``workload.advice_retries`` counter), then a :class:`ServiceOverloaded`
whose message carries the retry count.  :class:`AdvisedCostBased` wraps
that contract as a :class:`~repro.core.strategies.FaultToleranceScheme`
so campaign cells can route their plan choice through a live engine --
a shed that survives the retry budget surfaces as a
:class:`~repro.engine.campaign.CellResult` *error row* (the campaign
demotes unit exceptions), never as an exception that poisons the grid.

``AdvisedCostBased`` holds a live engine (locks, threads) and therefore
does not pickle: use it with ``jobs=1`` campaigns, or pre-resolve advice
in the parent and hand the campaign picklable
:class:`~repro.core.strategies.ConfiguredPlan` s -- which is what
:mod:`repro.workload.simulate` does.
"""

from __future__ import annotations

import time
from typing import Optional

from .. import obs
from ..core.cost_model import ClusterStats
from ..core.plan import Plan
from ..core.strategies import (
    ConfiguredPlan,
    FaultToleranceScheme,
    RecoveryMode,
)
from ..serve.engine import Advice, AdvisoryEngine, ServiceOverloaded

#: default shed-retry budget of the workload's advisory clients
DEFAULT_ADVICE_RETRIES = 3


def resolve_advice(
    engine: AdvisoryEngine,
    plan: Plan,
    stats: ClusterStats,
    scheme: str = "cost-based",
    max_retries: int = DEFAULT_ADVICE_RETRIES,
    retry_backoff: float = 0.01,
) -> Advice:
    """One advisory request with bounded retries on queue shed.

    Uses the engine's bounded-queue frontend (:meth:`submit`) when it is
    started -- the path that can shed -- and falls back to the direct
    synchronous :meth:`advise` otherwise (which never sheds; retries are
    then irrelevant).  Each shed increments ``workload.advice_retries``
    and sleeps ``retry_backoff * 2**attempt`` before retrying; once the
    budget is exhausted the final :class:`ServiceOverloaded` is
    re-raised with the retry count in its message, so campaign error
    rows record how hard the client tried.
    """
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    if retry_backoff < 0:
        raise ValueError("retry_backoff must be >= 0")
    if not engine.started:
        return engine.advise(plan, stats, scheme)
    for attempt in range(max_retries + 1):
        try:
            return engine.submit(plan, stats, scheme).result()
        except ServiceOverloaded:
            if attempt == max_retries:
                raise ServiceOverloaded(
                    f"advisory queue still full after {max_retries} "
                    f"retries"
                ) from None
            obs.add("workload.advice_retries")
            time.sleep(retry_backoff * (2.0 ** attempt))
    raise AssertionError("unreachable")  # pragma: no cover


class AdvisedCostBased(FaultToleranceScheme):
    """Cost-based plan choice routed through a live advisory engine.

    ``configure`` resolves the materialization configuration via
    :func:`resolve_advice`; the advice is bit-identical to a direct
    cost-based search on the engine's canonical stats, so a campaign
    measuring this scheme measures the same plans the advisory service
    would hand a real client.  Not picklable (the engine holds locks and
    threads): campaign use is ``jobs=1`` only.
    """

    name = "cost-based (advised)"

    def __init__(
        self,
        engine: AdvisoryEngine,
        max_retries: int = DEFAULT_ADVICE_RETRIES,
        retry_backoff: float = 0.01,
    ) -> None:
        self.engine = engine
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff

    def configure(self, plan: Plan, stats: ClusterStats) -> ConfiguredPlan:
        advice = resolve_advice(
            self.engine, plan, stats,
            max_retries=self.max_retries,
            retry_backoff=self.retry_backoff,
        )
        return configured_from_advice(plan, advice, scheme=self.name)


def configured_from_advice(
    plan: Plan, advice: Advice, scheme: Optional[str] = None,
) -> ConfiguredPlan:
    """The simulatable plan an :class:`Advice` describes."""
    return ConfiguredPlan(
        plan=plan.with_mat_config(dict(advice.mat_config)),
        recovery=RecoveryMode(advice.recovery),
        scheme=scheme if scheme is not None else advice.scheme,
    )
