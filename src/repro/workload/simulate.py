"""The multi-tenant cluster experiment: thousands of queries, one cluster.

This is the "millions of users" scenario from the roadmap, composed
entirely from existing subsystems:

1. **Traffic** -- :func:`~repro.workload.tenants.generate_tenant_workload`
   draws a seeded arrival stream from priority-tenant classes with
   zipf-skewed plan popularity and diurnal intensity.
2. **Plan choice** -- every arrival asks a
   :class:`~repro.serve.AdvisoryEngine` for its materialization
   configuration, carrying jittered *measured* stats for the diurnal
   phase it arrived in; the engine's log-bucketed cache turns the skewed
   stream into a small set of real searches, and the run reports the
   observed hit rate.
3. **Measurement** -- distinct (plan template, canonical stats) groups
   become :class:`~repro.engine.campaign.CampaignCell` s measuring the
   advised configuration against the three static schemes over shared
   seeded traces, fanned out by :func:`~repro.engine.campaign.run_campaign`
   (``jobs=N`` bit-identical to ``jobs=1``), with spot-fleet churn
   injected campaign-wide as a :class:`~repro.chaos.FaultPolicy` the
   optimizer never sees.
4. **Admission** -- a deterministic discrete-event queue replays the
   arrival stream against ``slots`` concurrent query slots with strict
   priority scheduling (FIFO within a class), charging each query the
   simulated runtime its group measured; per-class tail latency, queue
   wait, aggregate FT overhead and chosen-vs-oracle regret fall out.

Everything after the seeds is deterministic: the same
:class:`MultiTenantConfig` produces the identical
:class:`MultiTenantResult` (and JSON payload) at any job count.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from .. import obs
from ..chaos import FaultPolicy
from ..core.cost_model import ClusterStats
from ..core.strategies import (
    AllMat,
    ConfiguredPlan,
    NoMatLineage,
    NoMatRestart,
)
from ..engine.campaign import CampaignCell, CellResult, run_campaign
from ..engine.cluster import Cluster
from ..serve import AdvisoryEngine
from ..serve.engine import Advice
from .advisor import configured_from_advice, resolve_advice
from .churn import DiurnalCycle, spot_fleet_policy
from .tenants import (
    DEFAULT_TENANT_CLASSES,
    TenantClass,
    TenantWorkload,
    generate_tenant_workload,
)

#: target order inside every measurement cell; the advised configuration
#: is last, mirroring the paper's scheme line-up
SCHEME_ORDER = (
    "all-mat", "no-mat (lineage)", "no-mat (restart)", "cost-based",
)
#: index of the advised (chosen) configuration in :data:`SCHEME_ORDER`
CHOSEN_INDEX = SCHEME_ORDER.index("cost-based")


@dataclass(frozen=True)
class MultiTenantConfig:
    """Every knob of one multi-tenant run (seeds included)."""

    queries: int = 2000
    tenant_classes: Tuple[TenantClass, ...] = DEFAULT_TENANT_CLASSES
    churn: float = 0.5
    base_mtbf: float = 3600.0
    mttr: float = 1.0
    nodes: int = 10
    slots: int = 8
    seed: int = 0
    chaos_seed: int = 0
    duration: float = 86400.0
    templates_per_class: int = 4
    trace_count: int = 3
    cache_size: int = 1024
    config_limit: Optional[int] = None
    diurnal: DiurnalCycle = field(default_factory=DiurnalCycle)

    def __post_init__(self) -> None:
        if self.queries < 1:
            raise ValueError("queries must be >= 1")
        if self.slots < 1:
            raise ValueError("slots must be >= 1")
        if self.base_mtbf <= 0:
            raise ValueError("base_mtbf must be > 0")
        if self.trace_count < 1:
            raise ValueError("trace_count must be >= 1")
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0")


@dataclass(frozen=True)
class MeasurementGroup:
    """One distinct (plan template, canonical stats) advisory identity.

    All arrivals in the group received the same advice (same cache
    entry) and share one campaign cell's trace-driven measurement.
    """

    index: int
    label: str
    tenant: str
    template_index: int
    canonical_mtbf: float
    canonical_mttr: float
    advice: Advice
    arrivals: Tuple[int, ...]


@dataclass(frozen=True)
class AdviceTraffic:
    """What the advisory engine saw while resolving the arrival stream."""

    requests: int
    hits: int
    misses: int
    evictions: int
    searches: int

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


@dataclass(frozen=True)
class MultiTenantPrepared:
    """Phases 1-2 done: traffic generated, advice resolved, cells built.

    Everything :func:`run_campaign` needs (``cells``, ``cluster``,
    ``policy``) is exposed so tests can replay the measurement as a
    plain campaign and assert byte-identity.
    """

    config: MultiTenantConfig
    workload: TenantWorkload
    groups: Tuple[MeasurementGroup, ...]
    cells: Tuple[CampaignCell, ...]
    cluster: Cluster
    policy: Optional[FaultPolicy]
    advice: AdviceTraffic


@dataclass(frozen=True)
class AdmissionRecord:
    """One query's trip through the admission queue."""

    index: int
    tenant_index: int
    priority: int
    arrival: float
    admitted: float
    finished: float
    service: float
    failed: bool

    @property
    def wait(self) -> float:
        return self.admitted - self.arrival

    @property
    def latency(self) -> float:
        return self.finished - self.arrival


@dataclass(frozen=True)
class ClassMetrics:
    """Aggregate outcome of one tenant class."""

    name: str
    priority: int
    queries: int
    failed: int
    overhead_percent: float
    latency_p50: float
    latency_p99: float
    wait_mean: float
    wait_p99: float
    regret: float


@dataclass(frozen=True)
class GroupOutcome:
    """Per-group chosen-vs-oracle summary (one row per cache entry)."""

    label: str
    tenant: str
    arrivals: int
    baseline: float
    chosen_mean: float
    oracle_mean: float
    oracle_scheme: str
    error: Optional[str]

    @property
    def regret(self) -> float:
        if not math.isfinite(self.chosen_mean) or self.oracle_mean <= 0:
            return float("inf")
        return self.chosen_mean / self.oracle_mean


@dataclass(frozen=True)
class MultiTenantResult:
    """Everything one multi-tenant run produced."""

    config: MultiTenantConfig
    advice: AdviceTraffic
    classes: Tuple[ClassMetrics, ...]
    groups: Tuple[GroupOutcome, ...]
    rows: Tuple[CellResult, ...]
    admissions: Tuple[AdmissionRecord, ...]
    error_rows: int
    failed_queries: int
    aborted_runs: int
    makespan: float

    def to_payload(self, include_rows: bool = True) -> Dict:
        """JSON-ready report (the golden/benchmark serialization)."""
        payload: Dict = {
            "workload": {
                "queries": self.config.queries,
                "tenant_classes": len(self.config.tenant_classes),
                "churn": self.config.churn,
                "base_mtbf": self.config.base_mtbf,
                "nodes": self.config.nodes,
                "slots": self.config.slots,
                "seed": self.config.seed,
                "trace_count": self.config.trace_count,
                "distinct_groups": len(self.groups),
            },
            "advice_cache": {
                "requests": self.advice.requests,
                "hits": self.advice.hits,
                "misses": self.advice.misses,
                "evictions": self.advice.evictions,
                "searches": self.advice.searches,
                "hit_rate": self.advice.hit_rate,
            },
            "classes": [
                {
                    "name": metrics.name,
                    "priority": metrics.priority,
                    "queries": metrics.queries,
                    "failed": metrics.failed,
                    "overhead_percent": metrics.overhead_percent,
                    "latency_p50": metrics.latency_p50,
                    "latency_p99": metrics.latency_p99,
                    "wait_mean": metrics.wait_mean,
                    "wait_p99": metrics.wait_p99,
                    "regret": metrics.regret,
                }
                for metrics in self.classes
            ],
            "groups": [
                {
                    "label": group.label,
                    "tenant": group.tenant,
                    "arrivals": group.arrivals,
                    "baseline": group.baseline,
                    "chosen_mean": group.chosen_mean,
                    "oracle_mean": group.oracle_mean,
                    "oracle_scheme": group.oracle_scheme,
                    "regret": group.regret,
                    "error": group.error,
                }
                for group in self.groups
            ],
            "totals": {
                "error_rows": self.error_rows,
                "failed_queries": self.failed_queries,
                "aborted_runs": self.aborted_runs,
                "makespan": self.makespan,
            },
        }
        if include_rows:
            payload["rows"] = [
                {
                    "label": row.label,
                    "scheme": row.scheme,
                    "mtbf": row.mtbf,
                    "baseline": row.baseline,
                    "runtimes": list(row.runtimes),
                    "aborted_runs": row.aborted_runs,
                    "materialized_ids": list(row.materialized_ids),
                    "error": row.error,
                }
                for row in self.rows
            ]
        return payload


def arrival_stats(
    config: MultiTenantConfig, arrival_time: float,
    mtbf_jitter: float = 1.0, mttr_jitter: float = 1.0,
) -> ClusterStats:
    """The measured stats a tenant attaches to a request at this time."""
    base = config.diurnal.mtbf_at(config.base_mtbf, arrival_time)
    return ClusterStats(
        mtbf=base * mtbf_jitter,
        mttr=config.mttr * mttr_jitter,
        nodes=config.nodes,
    )


def prepare(
    config: MultiTenantConfig,
    engine: Optional[AdvisoryEngine] = None,
) -> MultiTenantPrepared:
    """Phases 1-2: generate traffic, resolve advice, build the cells.

    ``engine`` defaults to a fresh in-process
    :class:`~repro.serve.AdvisoryEngine`; passing a started engine
    routes plan choice through its bounded-queue frontend instead
    (the path that can shed under pressure).
    """
    workload = generate_tenant_workload(
        classes=config.tenant_classes,
        count=config.queries,
        seed=config.seed,
        duration=config.duration,
        templates_per_class=config.templates_per_class,
        diurnal=config.diurnal,
    )
    if engine is None:
        engine = AdvisoryEngine(cache_size=config.cache_size,
                                config_limit=config.config_limit)
    group_arrivals: Dict[Hashable, List[int]] = {}
    group_advice: Dict[Hashable, Advice] = {}
    with obs.span("workload.advice", arrivals=len(workload.arrivals)):
        for arrival in workload.arrivals:
            template = workload.templates[arrival.template_index]
            stats = arrival_stats(config, arrival.time,
                                  arrival.mtbf_jitter,
                                  arrival.mttr_jitter)
            advice = resolve_advice(engine, template.plan, stats)
            key = (arrival.template_index, advice.canonical_mtbf,
                   advice.canonical_mttr)
            if key not in group_advice:
                group_advice[key] = advice
                group_arrivals[key] = []
            group_arrivals[key].append(arrival.index)
    cache_stats = engine.cache.stats() if engine.cache is not None else {
        "hits": 0, "misses": len(workload.arrivals), "evictions": 0,
    }
    advice_traffic = AdviceTraffic(
        requests=len(workload.arrivals),
        hits=cache_stats["hits"],
        misses=cache_stats["misses"],
        evictions=cache_stats["evictions"],
        searches=len(group_advice),
    )
    groups: List[MeasurementGroup] = []
    cells: List[CampaignCell] = []
    for index, (key, advice) in enumerate(group_advice.items()):
        template_index = key[0]
        template = workload.templates[template_index]
        label = (f"{template.label}"
                 f"|mtbf{advice.canonical_mtbf:.6g}"
                 f"|mttr{advice.canonical_mttr:.6g}")
        groups.append(MeasurementGroup(
            index=index,
            label=label,
            tenant=template.tenant,
            template_index=template_index,
            canonical_mtbf=advice.canonical_mtbf,
            canonical_mttr=advice.canonical_mttr,
            advice=advice,
            arrivals=tuple(group_arrivals[key]),
        ))
        canonical = ClusterStats(
            mtbf=advice.canonical_mtbf,
            mttr=advice.canonical_mttr,
            nodes=config.nodes,
        )
        configured: Tuple[ConfiguredPlan, ...] = (
            AllMat().configure(template.plan, canonical),
            NoMatLineage().configure(template.plan, canonical),
            NoMatRestart().configure(template.plan, canonical),
            configured_from_advice(template.plan, advice,
                                   scheme="cost-based"),
        )
        cells.append(CampaignCell(
            label=label,
            plan=template.plan,
            mtbf=advice.canonical_mtbf,
            configured=configured,
            trace_count=config.trace_count,
            base_seed=config.seed,
        ))
    return MultiTenantPrepared(
        config=config,
        workload=workload,
        groups=tuple(groups),
        cells=tuple(cells),
        cluster=Cluster(nodes=config.nodes, mttr=config.mttr),
        policy=spot_fleet_policy(config.churn, config.base_mtbf,
                                 seed=config.chaos_seed),
        advice=advice_traffic,
    )


def simulate_admission(
    workload: TenantWorkload,
    services: Sequence[float],
    failed: Sequence[bool],
    slots: int,
) -> Tuple[AdmissionRecord, ...]:
    """Replay the arrival stream through ``slots`` priority slots.

    Strict priority with FIFO within a class: whenever a slot frees (or
    a query arrives to a free slot), the waiting query with the smallest
    ``(priority, arrival index)`` is admitted.  Failed queries (error
    rows) occupy no slot time (``service = 0``) but still flow through
    the queue, so their class's wait accounting stays honest.  Pure
    deterministic replay -- no randomness, no wall clock.
    """
    arrivals = workload.arrivals
    records: List[Optional[AdmissionRecord]] = [None] * len(arrivals)
    waiting: List[Tuple[int, int]] = []      # (priority, arrival index)
    running: List[float] = []                # finish-time min-heap
    cursor = 0

    def admit(now: float) -> None:
        while waiting and len(running) < slots:
            _, index = heapq.heappop(waiting)
            arrival = arrivals[index]
            service = services[index]
            finished = now + service
            heapq.heappush(running, finished)
            records[index] = AdmissionRecord(
                index=index,
                tenant_index=arrival.tenant_index,
                priority=arrival.priority,
                arrival=arrival.time,
                admitted=now,
                finished=finished,
                service=service,
                failed=failed[index],
            )

    while cursor < len(arrivals) or waiting or running:
        next_arrival = (arrivals[cursor].time
                        if cursor < len(arrivals) else math.inf)
        next_finish = running[0] if running else math.inf
        if next_finish <= next_arrival:
            now = heapq.heappop(running)
        else:
            now = next_arrival
            arrival = arrivals[cursor]
            heapq.heappush(waiting, (arrival.priority, arrival.index))
            cursor += 1
        admit(now)
    assert all(record is not None for record in records)
    return tuple(records)  # type: ignore[arg-type]


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def assemble(
    prepared: MultiTenantPrepared, rows: Sequence[CellResult],
) -> MultiTenantResult:
    """Phase 4: fold campaign rows + the admission replay into metrics."""
    config = prepared.config
    workload = prepared.workload
    targets = len(SCHEME_ORDER)
    assert len(rows) == len(prepared.cells) * targets

    group_outcomes: List[GroupOutcome] = []
    arrival_group: Dict[int, int] = {}
    for group in prepared.groups:
        group_rows = rows[group.index * targets:
                          (group.index + 1) * targets]
        chosen = group_rows[CHOSEN_INDEX]
        means = [row.mean_runtime for row in group_rows]
        oracle_index = min(range(targets), key=means.__getitem__)
        error = next((row.error for row in group_rows
                      if row.error is not None), None)
        group_outcomes.append(GroupOutcome(
            label=group.label,
            tenant=group.tenant,
            arrivals=len(group.arrivals),
            baseline=chosen.baseline,
            chosen_mean=chosen.mean_runtime,
            oracle_mean=means[oracle_index],
            oracle_scheme=SCHEME_ORDER[oracle_index],
            error=error,
        ))
        for index in group.arrivals:
            arrival_group[index] = group.index

    services: List[float] = []
    failed_flags: List[bool] = []
    for arrival in workload.arrivals:
        group_index = arrival_group[arrival.index]
        chosen = rows[group_index * targets + CHOSEN_INDEX]
        if chosen.error is not None or not chosen.runtimes:
            services.append(0.0)
            failed_flags.append(True)
        else:
            pick = arrival.index % len(chosen.runtimes)
            services.append(chosen.runtimes[pick])
            failed_flags.append(False)
    admissions = simulate_admission(workload, services, failed_flags,
                                    config.slots)

    class_metrics: List[ClassMetrics] = []
    for tenant_index, tenant in enumerate(workload.classes):
        members = [record for record in admissions
                   if record.tenant_index == tenant_index]
        finished = [record for record in members if not record.failed]
        latencies = sorted(record.latency for record in finished)
        waits = sorted(record.wait for record in members)
        service_sum = sum(record.service for record in finished)
        baseline_sum = 0.0
        chosen_sum = 0.0
        oracle_sum = 0.0
        for record in finished:
            outcome = group_outcomes[arrival_group[record.index]]
            baseline_sum += outcome.baseline
            chosen_sum += outcome.chosen_mean
            oracle_sum += outcome.oracle_mean
        overhead = (service_sum / baseline_sum - 1.0
                    if baseline_sum > 0 else float("inf"))
        regret = (chosen_sum / oracle_sum
                  if oracle_sum > 0 else float("inf"))
        class_metrics.append(ClassMetrics(
            name=tenant.name,
            priority=tenant.priority,
            queries=len(members),
            failed=len(members) - len(finished),
            overhead_percent=overhead * 100.0,
            latency_p50=_percentile(latencies, 0.50),
            latency_p99=_percentile(latencies, 0.99),
            wait_mean=(sum(waits) / len(waits) if waits else 0.0),
            wait_p99=_percentile(waits, 0.99),
            regret=regret,
        ))

    error_rows = sum(1 for row in rows if row.error is not None)
    aborted_runs = sum(row.aborted_runs for row in rows)
    if obs.get_recorder() is not None:
        obs.add("workload.queries", len(workload.arrivals))
        obs.add("workload.groups", len(prepared.groups))
        obs.add("workload.error_rows", error_rows)
    return MultiTenantResult(
        config=config,
        advice=prepared.advice,
        classes=tuple(class_metrics),
        groups=tuple(group_outcomes),
        rows=tuple(rows),
        admissions=admissions,
        error_rows=error_rows,
        failed_queries=sum(1 for flag in failed_flags if flag),
        aborted_runs=aborted_runs,
        makespan=max((record.finished for record in admissions),
                     default=0.0),
    )


def run_multitenant(
    config: MultiTenantConfig,
    jobs: int = 1,
    engine: Optional[AdvisoryEngine] = None,
) -> MultiTenantResult:
    """One full multi-tenant run; bit-identical across ``jobs`` counts.

    The advisory phase runs serially in the calling process (it is a
    cache-driven dict walk); only the trace-driven measurement fans out,
    through :func:`~repro.engine.campaign.run_campaign`, which pins
    ``jobs=N == jobs=1`` exactly.
    """
    with obs.span("workload.multitenant", queries=config.queries,
                  churn=config.churn, jobs=jobs):
        prepared = prepare(config, engine=engine)
        rows = run_campaign(
            list(prepared.cells), prepared.cluster, jobs=jobs,
            chaos=prepared.policy, preflight_lint=False,
        )
        return assemble(prepared, rows)
