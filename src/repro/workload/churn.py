"""Cluster weather: diurnal MTBF cycles and spot-fleet node churn.

Two environmental effects separate a shared production cluster from the
paper's steady single-query setup:

* **Diurnal MTBF cycles.**  Failure rates track the day: thermal load,
  deploy windows and co-tenant pressure make daytime MTBF measurably
  worse than the quiet night.  Tenants *see* this -- the stats attached
  to an advisory request are whatever the current monitoring window
  measured -- so the advice cache naturally partitions into a few
  canonical per-phase cluster profiles.
* **Spot-fleet churn.**  Preemptible instances vanish in correlated
  groups (capacity reclaims hit whole racks), on top of the base
  failure process and *unseen* by the optimizer -- the regime
  ``examples/spot_fleet.py`` sketches, expressed here as a
  :class:`~repro.chaos.FaultPolicy` so the campaign layer injects it
  into every simulated run.  The churn knob maps onto burst *intensity*
  (thinning), which the chaos layer guarantees is metamorphic: for a
  fixed seed, more churn only ever adds failures, so aggregate
  fault-tolerance overhead is non-decreasing in churn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..chaos import CorrelatedFailures, FaultPolicy

#: burst gap = base MTBF / this factor (the chaos preset's regime)
SPOT_BURST_DIVISOR = 2.0
#: nodes reclaimed together by one spot capacity event
SPOT_RACK_SIZE = 3
#: mean per-node delay within a reclaim burst, seconds
SPOT_JITTER = 2.0


@dataclass(frozen=True)
class DiurnalCycle:
    """A day of cluster weather, discretized into equal phases.

    ``mtbf_multipliers[i]`` scales the base per-node MTBF during phase
    ``i`` (values < 1 mean the cluster fails *more* often);
    ``arrival_intensities[i]`` scales tenant traffic in the same phase.
    The defaults model a quiet night, a normal morning, a stressed
    afternoon peak, and a normal evening.
    """

    period: float = 86400.0
    mtbf_multipliers: Tuple[float, ...] = (1.5, 1.0, 0.6, 1.0)
    arrival_intensities: Tuple[float, ...] = (0.3, 1.0, 1.8, 1.0)

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be > 0")
        if not self.mtbf_multipliers:
            raise ValueError("need at least one phase")
        if len(self.arrival_intensities) != len(self.mtbf_multipliers):
            raise ValueError("one arrival intensity per MTBF phase")
        if any(m <= 0 for m in self.mtbf_multipliers):
            raise ValueError("mtbf multipliers must be > 0")
        if any(a <= 0 for a in self.arrival_intensities):
            raise ValueError("arrival intensities must be > 0")

    @property
    def phases(self) -> int:
        return len(self.mtbf_multipliers)

    def phase_index(self, time: float) -> int:
        """The phase covering wall-clock ``time`` (period-wrapped)."""
        position = (time % self.period) / self.period
        return min(self.phases - 1, int(position * self.phases))

    def phase_mtbf(self, base_mtbf: float, phase: int) -> float:
        """Per-node MTBF during ``phase`` of the cycle."""
        if base_mtbf <= 0:
            raise ValueError("base_mtbf must be > 0")
        return base_mtbf * self.mtbf_multipliers[phase]

    def mtbf_at(self, base_mtbf: float, time: float) -> float:
        return self.phase_mtbf(base_mtbf, self.phase_index(time))

    def arrival_intensity(self, time: float) -> float:
        return self.arrival_intensities[self.phase_index(time)]


def spot_fleet_policy(
    churn: float, base_mtbf: float, seed: int = 0,
) -> Optional[FaultPolicy]:
    """The fault policy realizing spot churn at level ``churn`` in [0, 1].

    ``churn`` is the probability a reclaim opportunity fires (burst
    thinning intensity); opportunities arrive with a mean gap of
    ``base_mtbf / 2`` cluster-wide, each reclaiming a rack of
    :data:`SPOT_RACK_SIZE` nodes.  ``churn = 0`` returns ``None`` --
    no policy at all, pinned bit-identical to the chaos-free campaign.
    Monotonicity in ``churn`` is inherited from the chaos layer's
    intensity thinning (same seed, higher intensity = superset of
    failures).
    """
    if not 0.0 <= churn <= 1.0:
        raise ValueError("churn must be within [0, 1]")
    if base_mtbf <= 0:
        raise ValueError("base_mtbf must be > 0")
    if churn <= 0.0:
        return None
    return FaultPolicy(
        seed=seed,
        correlated=CorrelatedFailures(
            burst_mtbf=base_mtbf / SPOT_BURST_DIVISOR,
            intensity=churn,
            rack_size=SPOT_RACK_SIZE,
            jitter=SPOT_JITTER,
        ),
    )
