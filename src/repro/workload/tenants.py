"""Seeded multi-tenant query mixes (who submits what, and when).

The paper's evaluation measures one query at a time; a shared cluster
serves *tenants* -- classes of users with different priorities, query
shapes and arrival patterns.  This module generates that traffic
deterministically:

* a :class:`TenantClass` names a priority class (interactive dashboards,
  scheduled reports, batch pipelines) with its own TPC-H query templates
  and scale-factor band;
* each class owns a small catalog of :class:`PlanTemplate` s (query x
  scale factor, costed once) and draws instances from it with a
  zipf-skewed popularity -- a few hot plans dominate, exactly the
  traffic shape the advisory cache is built for;
* arrivals follow a thinned (non-homogeneous) Poisson process whose
  intensity tracks the diurnal cycle, so load peaks and troughs like a
  real day of traffic.

Everything is derived from one ``seed`` via explicitly threaded
:class:`random.Random` instances -- two calls with the same arguments
produce the identical workload, which is what lets the multi-tenant
experiment pin goldens and guarantee ``jobs=N == jobs=1``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.plan import Plan
from ..stats.calibration import default_parameters
from ..stats.estimates import CostParameters
from ..tpch.queries import build_query_plan
from .churn import DiurnalCycle


@dataclass(frozen=True)
class TenantClass:
    """One priority class of a shared cluster's tenant population.

    ``priority`` is the admission rank (0 = most important, admitted
    first under contention); ``weight`` is the class's share of the
    arrival stream; ``queries``/``sf_low``/``sf_high`` bound the shapes
    and sizes of the plans its tenants submit; ``zipf_s`` skews template
    popularity within the class (higher = hotter head).
    """

    name: str
    priority: int
    weight: float
    queries: Tuple[str, ...]
    sf_low: float
    sf_high: float
    zipf_s: float = 1.1

    def __post_init__(self) -> None:
        if self.priority < 0:
            raise ValueError("priority must be >= 0")
        if self.weight <= 0:
            raise ValueError("weight must be > 0")
        if not self.queries:
            raise ValueError("a tenant class needs at least one query")
        if not 0 < self.sf_low <= self.sf_high:
            raise ValueError("need 0 < sf_low <= sf_high")


#: the default three-class population (interactive > reporting > batch)
DEFAULT_TENANT_CLASSES: Tuple[TenantClass, ...] = (
    TenantClass(name="interactive", priority=0, weight=0.6,
                queries=("Q1", "Q6", "Q3"), sf_low=1.0, sf_high=20.0),
    TenantClass(name="reporting", priority=1, weight=0.3,
                queries=("Q3", "Q5", "Q10"), sf_low=10.0, sf_high=60.0),
    TenantClass(name="batch", priority=2, weight=0.1,
                queries=("Q5", "Q13", "Q1C"), sf_low=40.0, sf_high=120.0),
)


def default_tenant_mix(classes: int = 3) -> Tuple[TenantClass, ...]:
    """The first ``classes`` default tenant classes (highest first)."""
    if not 1 <= classes <= len(DEFAULT_TENANT_CLASSES):
        raise ValueError(
            f"classes must be within [1, {len(DEFAULT_TENANT_CLASSES)}]"
        )
    return DEFAULT_TENANT_CLASSES[:classes]


@dataclass(frozen=True)
class PlanTemplate:
    """One distinct costed plan tenants can instantiate."""

    index: int            #: position in the workload's template catalog
    label: str            #: e.g. "interactive/Q6@SF12.3"
    tenant: str
    query_name: str
    scale_factor: float
    plan: Plan


@dataclass(frozen=True)
class QueryArrival:
    """One submitted query: who, what, and when.

    ``mtbf_jitter``/``mttr_jitter`` perturb the *measured* cluster
    statistics the tenant attaches to its request (every monitoring
    window reads slightly differently), so raw stats are almost never
    bit-equal and advice-cache hits must come from log-bucketing.
    """

    index: int
    time: float
    tenant_index: int
    priority: int
    template_index: int
    mtbf_jitter: float
    mttr_jitter: float


@dataclass(frozen=True)
class TenantWorkload:
    """A full generated workload: classes, plan catalog, arrival stream."""

    classes: Tuple[TenantClass, ...]
    templates: Tuple[PlanTemplate, ...]
    arrivals: Tuple[QueryArrival, ...]
    duration: float
    seed: int

    def templates_of(self, tenant_index: int) -> List[PlanTemplate]:
        name = self.classes[tenant_index].name
        return [t for t in self.templates if t.tenant == name]


def _class_templates(
    tenant: TenantClass,
    start_index: int,
    per_class: int,
    rng: random.Random,
    params: CostParameters,
) -> List[PlanTemplate]:
    """``per_class`` (query, scale factor) templates for one class.

    Queries round-robin through the class's shapes; scale factors are
    log-uniform inside the class band (the "seconds to hours" spread of
    the mixed-workload scenario, scoped per class).
    """
    import math

    templates: List[PlanTemplate] = []
    for offset in range(per_class):
        query_name = tenant.queries[offset % len(tenant.queries)]
        scale = math.exp(rng.uniform(math.log(tenant.sf_low),
                                     math.log(tenant.sf_high)))
        scale = round(scale, 3)
        index = start_index + offset
        templates.append(PlanTemplate(
            index=index,
            label=f"{tenant.name}/{query_name}@SF{scale:g}",
            tenant=tenant.name,
            query_name=query_name,
            scale_factor=scale,
            plan=build_query_plan(query_name, scale, params),
        ))
    return templates


def _thinned_arrival_times(
    count: int, duration: float, diurnal: DiurnalCycle,
    rng: random.Random,
) -> List[float]:
    """``count`` seeded arrival instants whose density follows the
    diurnal intensity (rejection-sampled uniform draws)."""
    peak = max(diurnal.arrival_intensities)
    times: List[float] = []
    while len(times) < count:
        t = rng.uniform(0.0, duration)
        if rng.random() * peak <= diurnal.arrival_intensity(t):
            times.append(t)
    times.sort()
    return times


def generate_tenant_workload(
    classes: Sequence[TenantClass] = DEFAULT_TENANT_CLASSES,
    count: int = 2000,
    seed: int = 0,
    duration: float = 86400.0,
    templates_per_class: int = 4,
    diurnal: Optional[DiurnalCycle] = None,
    params: Optional[CostParameters] = None,
) -> TenantWorkload:
    """Draw ``count`` arrivals over ``duration`` seconds of cluster time.

    Deterministic in ``seed``: the template catalog, the arrival
    instants, the class assignment, the zipf template choice and the
    per-request stats jitter are all derived from it.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if duration <= 0:
        raise ValueError("duration must be > 0")
    if templates_per_class < 1:
        raise ValueError("templates_per_class must be >= 1")
    classes = tuple(classes)
    if not classes:
        raise ValueError("need at least one tenant class")
    if diurnal is None:
        diurnal = DiurnalCycle()
    if params is None:
        params = default_parameters()
    rng = random.Random(seed)

    templates: List[PlanTemplate] = []
    class_template_indices: List[List[int]] = []
    for tenant in classes:
        start = len(templates)
        templates.extend(_class_templates(
            tenant, start, templates_per_class, rng, params,
        ))
        class_template_indices.append(
            list(range(start, start + templates_per_class))
        )

    times = _thinned_arrival_times(count, duration, diurnal, rng)
    weights = [tenant.weight for tenant in classes]
    arrivals: List[QueryArrival] = []
    for index, time in enumerate(times):
        tenant_index = rng.choices(range(len(classes)),
                                   weights=weights)[0]
        tenant = classes[tenant_index]
        members = class_template_indices[tenant_index]
        zipf = [1.0 / (rank + 1) ** tenant.zipf_s
                for rank in range(len(members))]
        template_index = rng.choices(members, weights=zipf)[0]
        arrivals.append(QueryArrival(
            index=index,
            time=time,
            tenant_index=tenant_index,
            priority=tenant.priority,
            template_index=template_index,
            mtbf_jitter=rng.uniform(0.93, 1.07),
            mttr_jitter=rng.uniform(0.9, 1.1),
        ))
    return TenantWorkload(
        classes=classes,
        templates=tuple(templates),
        arrivals=tuple(arrivals),
        duration=duration,
        seed=seed,
    )
