"""The paper's TPC-H cluster layout (Section 5.1).

XDB lays the database out so that every join of the workload is
partition-local:

* NATION and REGION are replicated to all nodes;
* LINEITEM and ORDERS are co-partitioned by hash on the order key;
* the remaining tables are RREF-partitioned (referenced tuples follow
  their referencing partitions, with partial replication): CUSTOMER by
  ORDERS on the customer key, SUPPLIER and PART by LINEITEM on their
  keys, PARTSUPP by LINEITEM on (partkey, suppkey).

:func:`partition_database` applies that layout to a generated database;
:mod:`repro.relational.parallel` then executes query trees per node and
merges the results, which the tests use to prove the layout really makes
the workload's joins local (partitioned execution equals single-node
execution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..relational.partitioning import (
    PartitionedTable,
    hash_partition,
    replicate,
    rref_partition,
)
from ..relational.table import Table
from .datagen import TpchDatabase


@dataclass(frozen=True)
class PartitionedDatabase:
    """One TPC-H database split across cluster nodes per the layout."""

    nodes: int
    tables: Dict[str, PartitionedTable]

    def node_view(self, node: int) -> TpchDatabase:
        """The database as node ``node`` sees it (its local partitions).

        The returned :class:`TpchDatabase` reuses the container type so
        the query builders run unchanged per node; its ``scale_factor``
        is 0 (a node view is a shard, not a generated database) and its
        ``seed`` records the node index.
        """
        if not 0 <= node < self.nodes:
            raise ValueError(f"node must be in [0, {self.nodes})")
        return TpchDatabase(
            scale_factor=0.0,
            seed=node,
            tables={
                name: partitioned.parts[node]
                for name, partitioned in self.tables.items()
            },
        )

    def replication_overhead(self) -> Dict[str, float]:
        """Replication factor per table (1.0 = no extra copies)."""
        return {
            name: partitioned.replication_factor
            for name, partitioned in self.tables.items()
        }


def partition_database(db: TpchDatabase, nodes: int) -> PartitionedDatabase:
    """Apply the Section 5.1 layout to ``db`` over ``nodes`` nodes."""
    if nodes < 1:
        raise ValueError("nodes must be >= 1")

    tables: Dict[str, PartitionedTable] = {}

    def register(name: str, parts: List[Table], scheme: str,
                 keys: Tuple[str, ...] = ()) -> None:
        tables[name] = PartitionedTable(
            name=name,
            parts=tuple(parts),
            scheme=scheme,
            keys=keys,
            logical_rows=db[name].num_rows,
        )

    # replicated dimension tables
    register("region", replicate(db["region"], nodes), "replicated")
    register("nation", replicate(db["nation"], nodes), "replicated")

    # LINEITEM and ORDERS co-partitioned on the order key
    order_parts = hash_partition(db["orders"], ["o_orderkey"], nodes)
    lineitem_parts = hash_partition(db["lineitem"], ["l_orderkey"], nodes)
    register("orders", order_parts, "hash", ("o_orderkey",))
    register("lineitem", lineitem_parts, "hash", ("l_orderkey",))

    # RREF: referenced tuples follow their referencing partitions
    register(
        "customer",
        rref_partition(db["customer"], ["c_custkey"],
                       order_parts, ["o_custkey"]),
        "rref", ("c_custkey",),
    )
    register(
        "supplier",
        rref_partition(db["supplier"], ["s_suppkey"],
                       lineitem_parts, ["l_suppkey"]),
        "rref", ("s_suppkey",),
    )
    register(
        "part",
        rref_partition(db["part"], ["p_partkey"],
                       lineitem_parts, ["l_partkey"]),
        "rref", ("p_partkey",),
    )
    register(
        "partsupp",
        rref_partition(db["partsupp"], ["ps_partkey", "ps_suppkey"],
                       lineitem_parts, ["l_partkey", "l_suppkey"]),
        "rref", ("ps_partkey", "ps_suppkey"),
    )

    return PartitionedDatabase(nodes=nodes, tables=tables)
