"""The paper's TPC-H workload (Section 5.1/5.2).

Five queries of varying complexity:

* **Q1** -- scan + aggregation, no join, *no free operator*;
* **Q3** -- 3-way join (customer, orders, lineitem), 2 free operators;
* **Q5** -- 6-way join chain with aggregation on top (Figure 9),
  5 free operators numbered 1-5 exactly as in the paper;
* **Q1C** -- a nested variant of Q1: the inner aggregate's result joins
  back against LINEITEM, putting a *cheap aggregation operator in the
  middle of the plan* -- the checkpoint the cost-based scheme exploits;
* **Q2C** -- a DAG-structured variant of Q2: the inner aggregation query
  (4-way join) becomes a common table expression consumed by two outer
  queries with different PART filters.

Plan shape convention: base-table scans are folded into the operator that
consumes them, the way XDB executes sub-plans (each sub-plan is a SQL
statement over base MySQL tables plus materialized temp inputs).  An
operator's ``work_rows`` therefore includes the base rows it reads; its
own output is the only thing a materialization checkpoint can capture --
base tables are durable and never need checkpointing.

Each query is exposed in two forms:

* :meth:`TpchQuery.logical_ops` -- cardinality-annotated logical operators
  for an arbitrary scale factor, from the analytical model of
  :mod:`repro.tpch.cardinality`; :func:`build_query_plan` turns them into
  a costed :class:`repro.core.Plan`;
* :meth:`TpchQuery.physical_tree` -- a really executable operator tree for
  the mini engine, used at small scale factors to validate the analytical
  cardinalities and to drive the examples.

The default Q5 variant uses the paper's "low selectivity" setting (the
o_orderdate window spans the full 1992-1998 range), which is the variant
behind the 905 s SF = 100 baseline of Experiments 2b/3a; pass an explicit
window to :func:`q5_logical_with_dates` for the standard one-year Q5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..core.plan import Plan
from ..relational.expressions import Col, Func
from ..relational.operators import (
    AggregateSpec,
    CteBuffer,
    Filter,
    HashAggregate,
    HashJoin,
    Limit,
    PhysicalOperator,
    Project,
    Scan,
    Sort,
    UnionAll,
)
from ..relational.schema import ColumnType
from ..stats.estimates import CostParameters, LogicalOperator, build_plan
from . import cardinality as card
from .datagen import TpchDatabase
from .schema import MAX_ORDER_DATE, MIN_ORDER_DATE, date_ordinal

FLOAT = ColumnType.FLOAT
INT = ColumnType.INT
STRING = ColumnType.STRING
DATE = ColumnType.DATE

#: the paper's "low selectivity" Q5 window: all order dates qualify
Q5_DATE_LO = MIN_ORDER_DATE
Q5_DATE_HI = MAX_ORDER_DATE + 1
#: the standard TPC-H one-year Q5 window
Q5_YEAR_LO = date_ordinal(1994, 1, 1)
Q5_YEAR_HI = date_ordinal(1995, 1, 1)
Q3_CUTOFF = date_ordinal(1995, 3, 15)
Q1_CUTOFF = date_ordinal(1998, 9, 2)

#: intermediate-result row widths (bytes) used by the analytical model;
#: chosen to match the columns each intermediate actually carries
_WIDTH = {
    "scan_narrow": 16,
    "scan_wide": 48,
    "join_small": 24,
    "join_medium": 36,
    "join_wide": 56,
    "agg_row": 48,
}


@dataclass(frozen=True)
class TpchQuery:
    """One workload query: name, plan shape, and executable form."""

    name: str
    description: str
    logical_ops: Callable[[float], List[LogicalOperator]]
    physical_tree: Callable[[TpchDatabase], PhysicalOperator]

    @property
    def free_operator_count(self) -> int:
        return sum(1 for op in self.logical_ops(1.0) if op.free)


def build_query_plan(
    name: str, scale_factor: float, params: CostParameters
) -> Plan:
    """Costed logical plan for ``name`` at ``scale_factor``."""
    return build_plan(QUERIES[name].logical_ops(scale_factor), params)


# ======================================================================
# Q1 -- scan + aggregate (no join, no free operator)
# ======================================================================
def _q1_logical(sf: float) -> List[LogicalOperator]:
    lineitems = card.table_rows("lineitem", sf)
    filtered = lineitems * 0.99  # l_shipdate <= '1998-09-02' keeps ~99 %
    return [
        LogicalOperator(
            op_id=1, name="ScanFilter(L)", inputs=(),
            work_rows=lineitems, out_rows=filtered,
            out_bytes=filtered * _WIDTH["scan_wide"],
            base_inputs=1,
        ),
        LogicalOperator(
            op_id=2, name="Aggregate(flag,status)", inputs=(1,),
            work_rows=filtered, out_rows=6,
            out_bytes=6 * _WIDTH["agg_row"],
            always_materialize=True,
        ),
    ]


def _q1_physical(db: TpchDatabase) -> PhysicalOperator:
    scan = Scan(db["lineitem"])
    filtered = Filter(scan, Col("l_shipdate") <= Q1_CUTOFF)
    disc_price = Col("l_extendedprice") * (Func("one_minus", lambda d: 1 - d,
                                               Col("l_discount")))
    charge = disc_price * (Func("one_plus", lambda t: 1 + t, Col("l_tax")))
    aggregate = HashAggregate(
        filtered,
        group_by=["l_returnflag", "l_linestatus"],
        aggregates=[
            AggregateSpec("sum_qty", "sum", Col("l_quantity")),
            AggregateSpec("sum_base_price", "sum", Col("l_extendedprice")),
            AggregateSpec("sum_disc_price", "sum", disc_price),
            AggregateSpec("sum_charge", "sum", charge),
            AggregateSpec("avg_qty", "avg", Col("l_quantity")),
            AggregateSpec("avg_price", "avg", Col("l_extendedprice")),
            AggregateSpec("avg_disc", "avg", Col("l_discount")),
            AggregateSpec("count_order", "count", Col("l_quantity"),
                          out_type=INT),
        ],
        output_name="q1",
    )
    return Sort(aggregate, by=["l_returnflag", "l_linestatus"])


# ======================================================================
# Q3 -- 3-way join (2 free operators)
# ======================================================================
def _q3_logical(sf: float) -> List[LogicalOperator]:
    customers = card.table_rows("customer", sf)
    orders = card.table_rows("orders", sf)
    lineitems = card.table_rows("lineitem", sf)
    # o_orderdate < 1995-03-15: ~47.5 % of the 1992-1998 span; shipping
    # after the cutoff is correlated with the order date (lineitems lag
    # their order by <= 121 days), so the lineitem survival is small
    date_orders = orders * 0.475
    j1_out = date_orders * card.mktsegment_selectivity()
    j2_out = (
        j1_out * card.LINEITEMS_PER_ORDER * card.q3_lineitem_selectivity()
    )
    agg_out = j1_out * card.q3_order_survival()
    return [
        LogicalOperator(
            op_id=1, name="Join(C,O)", inputs=(),
            work_rows=customers + orders + j1_out,
            out_rows=j1_out, out_bytes=j1_out * _WIDTH["join_small"],
            free=True, base_inputs=2,
        ),
        LogicalOperator(
            op_id=2, name="Join(CO,L)", inputs=(1,),
            work_rows=lineitems + j1_out + j2_out,
            out_rows=j2_out, out_bytes=j2_out * _WIDTH["join_medium"],
            free=True, base_inputs=1,
        ),
        LogicalOperator(
            op_id=3, name="Aggregate(orderkey)", inputs=(2,),
            work_rows=j2_out, out_rows=agg_out,
            out_bytes=10 * _WIDTH["agg_row"],   # top-10 delivered
            always_materialize=True,
        ),
    ]


def _q3_physical(db: TpchDatabase) -> PhysicalOperator:
    customers = Project(
        Filter(Scan(db["customer"]), Col("c_mktsegment") == "BUILDING"),
        [("c_custkey", Col("c_custkey"), INT)],
        output_name="c",
    )
    orders = Project(
        Filter(Scan(db["orders"]), Col("o_orderdate") < Q3_CUTOFF),
        [("o_orderkey", Col("o_orderkey"), INT),
         ("o_custkey", Col("o_custkey"), INT),
         ("o_orderdate", Col("o_orderdate"), DATE),
         ("o_shippriority", Col("o_shippriority"), INT)],
        output_name="o",
    )
    lineitems = Project(
        Filter(Scan(db["lineitem"]), Col("l_shipdate") > Q3_CUTOFF),
        [("l_orderkey", Col("l_orderkey"), INT),
         ("l_extendedprice", Col("l_extendedprice"), FLOAT),
         ("l_discount", Col("l_discount"), FLOAT)],
        output_name="l",
    )
    join_co = HashJoin(customers, orders, ["c_custkey"], ["o_custkey"],
                       output_name="co")
    join_col = HashJoin(join_co, lineitems, ["o_orderkey"], ["l_orderkey"],
                        output_name="col")
    revenue = Col("l_extendedprice") * Func(
        "one_minus", lambda d: 1 - d, Col("l_discount")
    )
    aggregate = HashAggregate(
        join_col,
        group_by=["o_orderkey", "o_orderdate", "o_shippriority"],
        aggregates=[AggregateSpec("revenue", "sum", revenue)],
        output_name="q3",
    )
    return Limit(Sort(aggregate, by=["revenue"], descending=True), 10)


# ======================================================================
# Q5 -- 6-way join chain (Figure 9; free operators 1-5)
# ======================================================================
def _q5_logical(
    sf: float,
    date_lo: int = Q5_DATE_LO,
    date_hi: int = Q5_DATE_HI,
) -> List[LogicalOperator]:
    customers = card.table_rows("customer", sf)
    orders = card.table_rows("orders", sf)
    lineitems = card.table_rows("lineitem", sf)
    suppliers = card.table_rows("supplier", sf)
    date_sel = card.date_range_selectivity(date_hi - date_lo)

    o_filtered = orders * date_sel
    j1_out = card.nations_in_region()                 # sigma(R) |><| N
    j2_out = customers * card.nation_fraction()       # |><| C
    j3_out = o_filtered * card.nation_fraction()      # |><| sigma(O)
    j4_out = j3_out * card.LINEITEMS_PER_ORDER        # |><| L
    j5_out = j4_out * card.same_nation_join_selectivity()  # |><| S
    return [
        LogicalOperator(
            op_id=1, name="Join(sigma(R),N)", inputs=(),
            work_rows=5 + 25 + j1_out,
            out_rows=j1_out, out_bytes=j1_out * _WIDTH["join_small"],
            free=True, base_inputs=2,
        ),
        LogicalOperator(
            op_id=2, name="Join(RN,C)", inputs=(1,),
            work_rows=customers + j1_out + j2_out,
            out_rows=j2_out, out_bytes=j2_out * _WIDTH["join_small"],
            free=True, base_inputs=1,
        ),
        LogicalOperator(
            op_id=3, name="Join(RNC,sigma(O))", inputs=(2,),
            work_rows=orders + j2_out + j3_out,
            out_rows=j3_out, out_bytes=j3_out * _WIDTH["join_medium"],
            free=True, base_inputs=1,
        ),
        LogicalOperator(
            op_id=4, name="Join(RNCO,L)", inputs=(3,),
            work_rows=lineitems + j3_out + j4_out,
            out_rows=j4_out, out_bytes=j4_out * _WIDTH["join_wide"],
            free=True, base_inputs=1,
        ),
        LogicalOperator(
            op_id=5, name="Join(RNCOL,S)", inputs=(4,),
            work_rows=j4_out + suppliers + j5_out,
            out_rows=j5_out, out_bytes=j5_out * _WIDTH["join_wide"],
            free=True, base_inputs=1,
        ),
        LogicalOperator(
            op_id=6, name="Aggregate(n_name)", inputs=(5,),
            work_rows=j5_out, out_rows=5,
            out_bytes=5 * _WIDTH["agg_row"],
            always_materialize=True,
        ),
    ]


def _q5_physical(
    db: TpchDatabase,
    date_lo: int = Q5_DATE_LO,
    date_hi: int = Q5_DATE_HI,
) -> PhysicalOperator:
    region = Project(
        Filter(Scan(db["region"]), Col("r_name") == "ASIA"),
        [("r_regionkey", Col("r_regionkey"), INT)],
        output_name="r",
    )
    nation = Project(
        Scan(db["nation"]),
        [("n_nationkey", Col("n_nationkey"), INT),
         ("n_name", Col("n_name"), STRING),
         ("n_regionkey", Col("n_regionkey"), INT)],
        output_name="n",
    )
    join_rn = Project(
        HashJoin(region, nation, ["r_regionkey"], ["n_regionkey"]),
        [("n_nationkey", Col("n_nationkey"), INT),
         ("n_name", Col("n_name"), STRING)],
        output_name="rn",
    )
    customer = Project(
        Scan(db["customer"]),
        [("c_custkey", Col("c_custkey"), INT),
         ("c_nationkey", Col("c_nationkey"), INT)],
        output_name="c",
    )
    join_rnc = HashJoin(join_rn, customer, ["n_nationkey"], ["c_nationkey"],
                        output_name="rnc")
    orders = Project(
        Filter(
            Scan(db["orders"]),
            (Col("o_orderdate") >= date_lo) & (Col("o_orderdate") < date_hi),
        ),
        [("o_orderkey", Col("o_orderkey"), INT),
         ("o_custkey", Col("o_custkey"), INT)],
        output_name="o",
    )
    join_rnco = HashJoin(join_rnc, orders, ["c_custkey"], ["o_custkey"],
                         output_name="rnco")
    lineitem = Project(
        Scan(db["lineitem"]),
        [("l_orderkey", Col("l_orderkey"), INT),
         ("l_suppkey", Col("l_suppkey"), INT),
         ("l_extendedprice", Col("l_extendedprice"), FLOAT),
         ("l_discount", Col("l_discount"), FLOAT)],
        output_name="l",
    )
    join_rncol = HashJoin(join_rnco, lineitem, ["o_orderkey"], ["l_orderkey"],
                          output_name="rncol")
    supplier = Project(
        Scan(db["supplier"]),
        [("s_suppkey", Col("s_suppkey"), INT),
         ("s_nationkey", Col("s_nationkey"), INT)],
        output_name="s",
    )
    # equi-join on supplier key and on matching nations (the Q5 condition
    # c_nationkey = s_nationkey folds into the join keys)
    join_all = HashJoin(
        join_rncol, supplier,
        ["l_suppkey", "n_nationkey"], ["s_suppkey", "s_nationkey"],
        output_name="rncols",
    )
    revenue = Col("l_extendedprice") * Func(
        "one_minus", lambda d: 1 - d, Col("l_discount")
    )
    aggregate = HashAggregate(
        join_all,
        group_by=["n_name"],
        aggregates=[AggregateSpec("revenue", "sum", revenue)],
        output_name="q5",
    )
    return Sort(aggregate, by=["revenue"], descending=True)


# ======================================================================
# Q1C -- nested Q1 with an aggregation in the middle of the plan
# ======================================================================
def _q1c_logical(sf: float) -> List[LogicalOperator]:
    lineitems = card.table_rows("lineitem", sf)
    above_avg = lineitems * 0.5   # price above the per-group average
    return [
        LogicalOperator(
            op_id=1, name="AvgByStatus", inputs=(),
            work_rows=lineitems, out_rows=6,
            out_bytes=6 * _WIDTH["agg_row"],
            free=True, base_inputs=1,   # the cheap mid-plan checkpoint
        ),
        LogicalOperator(
            op_id=2, name="Join(L,avg)+Filter", inputs=(1,),
            work_rows=lineitems + 6 + above_avg,
            out_rows=above_avg,
            out_bytes=above_avg * _WIDTH["join_medium"],
            free=True, base_inputs=1,
        ),
        LogicalOperator(
            op_id=3, name="CountByStatus", inputs=(2,),
            work_rows=above_avg, out_rows=6,
            out_bytes=6 * _WIDTH["agg_row"],
            always_materialize=True,
        ),
    ]


def _q1c_physical(db: TpchDatabase) -> PhysicalOperator:
    inner = HashAggregate(
        Scan(db["lineitem"]),
        group_by=["l_returnflag", "l_linestatus"],
        aggregates=[AggregateSpec("avg_price", "avg",
                                  Col("l_extendedprice"))],
        output_name="inner_avg",
    )
    outer_scan = Project(
        Scan(db["lineitem"]),
        [("flag", Col("l_returnflag"), STRING),
         ("status", Col("l_linestatus"), STRING),
         ("price", Col("l_extendedprice"), FLOAT)],
        output_name="louter",
    )
    joined = HashJoin(
        inner, outer_scan,
        ["l_returnflag", "l_linestatus"], ["flag", "status"],
        output_name="l_with_avg",
    )
    above = Filter(joined, Col("price") > Col("avg_price"))
    return HashAggregate(
        above,
        group_by=["l_returnflag", "l_linestatus"],
        aggregates=[AggregateSpec("items_above_avg", "count", Col("price"),
                                  out_type=INT)],
        output_name="q1c",
    )


# ======================================================================
# Q2C -- DAG-structured Q2 variant: one CTE, two outer queries
# ======================================================================
def _q2c_logical(sf: float) -> List[LogicalOperator]:
    partsupp = card.table_rows("partsupp", sf)
    suppliers = card.table_rows("supplier", sf)
    parts = card.table_rows("part", sf)
    europe_fraction = card.nation_fraction()
    i3_out = partsupp * europe_fraction
    # parts with >= 1 European supplier: 1 - (1 - 1/5)^4
    cte_out = parts * (1.0 - (1.0 - europe_fraction) ** 4)
    p1_out = parts * card.part_size_selectivity() * 3        # size IN (...)
    p2_out = parts * card.part_type_selectivity() * 5        # type IN (...)
    o1a_out = p1_out * (cte_out / parts)
    o2a_out = p2_out * (cte_out / parts)
    # joining back to the European partsupp rows on (partkey, min cost)
    # keeps ~one supplier per part
    o1b_out = o1a_out * 1.05
    o2b_out = o2a_out * 1.05
    return [
        LogicalOperator(
            op_id=1, name="Join(PS,S)", inputs=(),
            work_rows=partsupp + suppliers + partsupp,
            out_rows=partsupp, out_bytes=partsupp * _WIDTH["join_small"],
            free=True, base_inputs=2,
        ),
        LogicalOperator(
            op_id=2, name="Join(PSS,N)", inputs=(1,),
            work_rows=partsupp + 25 + partsupp,
            out_rows=partsupp, out_bytes=partsupp * _WIDTH["join_medium"],
            free=True, base_inputs=1,
        ),
        LogicalOperator(
            op_id=3, name="Join(PSSN,sigma(R))", inputs=(2,),
            work_rows=partsupp + 1 + i3_out,
            out_rows=i3_out, out_bytes=i3_out * _WIDTH["join_medium"],
            free=True, base_inputs=1,
        ),
        LogicalOperator(
            op_id=4, name="MinCostByPart (CTE)", inputs=(3,),
            work_rows=i3_out, out_rows=cte_out,
            out_bytes=cte_out * 12,   # (partkey, min cost): cheap checkpoint
            free=True,
        ),
        LogicalOperator(
            op_id=5, name="Join(sigma1(P),CTE)", inputs=(4,),
            work_rows=parts + cte_out + o1a_out,
            out_rows=o1a_out, out_bytes=o1a_out * _WIDTH["join_medium"],
            free=True, base_inputs=1,
        ),
        LogicalOperator(
            op_id=6, name="Join(sigma2(P),CTE)", inputs=(4,),
            work_rows=parts + cte_out + o2a_out,
            out_rows=o2a_out, out_bytes=o2a_out * _WIDTH["join_medium"],
            free=True, base_inputs=1,
        ),
        LogicalOperator(
            op_id=7, name="Join(outer1,EURPS)", inputs=(5, 3),
            work_rows=o1a_out + i3_out + o1b_out,
            out_rows=o1b_out, out_bytes=o1b_out * _WIDTH["join_wide"],
            free=True,
        ),
        LogicalOperator(
            op_id=8, name="Join(outer2,EURPS)", inputs=(6, 3),
            work_rows=o2a_out + i3_out + o2b_out,
            out_rows=o2b_out, out_bytes=o2b_out * _WIDTH["join_wide"],
            free=True,
        ),
        LogicalOperator(
            op_id=9, name="TopK outer1", inputs=(7,),
            work_rows=o1b_out, out_rows=100,
            out_bytes=100 * _WIDTH["agg_row"],
            always_materialize=True,
        ),
        LogicalOperator(
            op_id=10, name="TopK outer2", inputs=(8,),
            work_rows=o2b_out, out_rows=100,
            out_bytes=100 * _WIDTH["agg_row"],
            always_materialize=True,
        ),
    ]


def _q2c_physical(db: TpchDatabase) -> PhysicalOperator:
    supplier = Project(
        Scan(db["supplier"]),
        [("s_suppkey", Col("s_suppkey"), INT),
         ("s_name", Col("s_name"), STRING),
         ("s_nationkey", Col("s_nationkey"), INT)],
        output_name="s",
    )
    nation = Project(
        Scan(db["nation"]),
        [("n_nationkey", Col("n_nationkey"), INT),
         ("n_regionkey", Col("n_regionkey"), INT)],
        output_name="n",
    )
    region = Project(
        Filter(Scan(db["region"]), Col("r_name") == "EUROPE"),
        [("r_regionkey", Col("r_regionkey"), INT)],
        output_name="r",
    )
    join_ps_s = HashJoin(Scan(db["partsupp"]), supplier,
                         ["ps_suppkey"], ["s_suppkey"], output_name="pss")
    join_pss_n = HashJoin(join_ps_s, nation,
                          ["s_nationkey"], ["n_nationkey"],
                          output_name="pssn")
    european_ps = Project(
        HashJoin(join_pss_n, region, ["n_regionkey"], ["r_regionkey"]),
        [("ps_partkey", Col("ps_partkey"), INT),
         ("ps_suppkey", Col("ps_suppkey"), INT),
         ("ps_supplycost", Col("ps_supplycost"), FLOAT),
         ("s_name", Col("s_name"), STRING)],
        output_name="eur_ps",
    )
    european_buffer = CteBuffer(european_ps, cte_name="eur_ps")
    cte = CteBuffer(
        HashAggregate(
            european_buffer,
            group_by=["ps_partkey"],
            aggregates=[AggregateSpec("min_cost", "min",
                                      Col("ps_supplycost"))],
            output_name="min_cost_cte",
        ),
        cte_name="min_cost_cte",
    )

    def outer(part_predicate, name: str) -> PhysicalOperator:
        parts = Project(
            Filter(Scan(db["part"]), part_predicate),
            [("p_partkey", Col("p_partkey"), INT),
             ("p_type", Col("p_type"), STRING),
             ("p_size", Col("p_size"), INT),
             ("p_retailprice", Col("p_retailprice"), FLOAT)],
            output_name=f"p_{name}",
        )
        with_min = HashJoin(parts, cte, ["p_partkey"], ["ps_partkey"],
                            output_name=f"{name}_min")
        with_supplier = HashJoin(
            with_min, european_buffer,
            ["p_partkey", "min_cost"], ["ps_partkey", "ps_supplycost"],
            output_name=f"{name}_full",
        )
        return Limit(
            Sort(with_supplier, by=["p_retailprice"], descending=True), 100
        )

    outer1 = outer(Col("p_size").is_in([15, 25, 35]), "outer1")
    outer2 = outer(
        Func("is_brass", lambda t: t.endswith("BRASS"), Col("p_type")),
        "outer2",
    )

    # deliver both outer results; a final UnionAll keeps the tree rooted,
    # mirroring the coordinator collecting the two sinks
    common = [
        ("p_partkey", Col("p_partkey"), INT),
        ("min_cost", Col("min_cost"), FLOAT),
        ("s_name", Col("s_name"), STRING),
    ]
    return UnionAll(
        Project(outer1, common, output_name="q2c_outer1"),
        Project(outer2, common, output_name="q2c_outer2"),
    )


#: the workload registry, in the paper's reporting order
# ======================================================================
# Q6 -- forecasting revenue change (scan + filter + scalar aggregate)
# ======================================================================
Q6_DATE_LO = date_ordinal(1994, 1, 1)
Q6_DATE_HI = date_ordinal(1995, 1, 1)


def _q6_logical(sf: float) -> List[LogicalOperator]:
    lineitems = card.table_rows("lineitem", sf)
    # shipdate in one year (~15 %), discount in [0.05, 0.07] of the
    # uniform [0, 0.10] range (~27 % at cent granularity), quantity < 24
    # of uniform 1..50 (~46 %)
    selectivity = (
        card.date_range_selectivity(Q6_DATE_HI - Q6_DATE_LO)
        * (3.0 / 11.0) * (23.0 / 50.0)
    )
    filtered = lineitems * selectivity
    return [
        LogicalOperator(
            op_id=1, name="ScanFilter(L)", inputs=(),
            work_rows=lineitems, out_rows=filtered,
            out_bytes=filtered * _WIDTH["scan_narrow"],
            base_inputs=1,
        ),
        LogicalOperator(
            op_id=2, name="SumRevenue", inputs=(1,),
            work_rows=filtered, out_rows=1,
            out_bytes=_WIDTH["agg_row"],
            always_materialize=True,
        ),
    ]


def _q6_physical(db: TpchDatabase) -> PhysicalOperator:
    filtered = Filter(
        Scan(db["lineitem"]),
        (Col("l_shipdate") >= Q6_DATE_LO + 1)          # ships next year
        & (Col("l_shipdate") < Q6_DATE_HI + 1)
        & (Col("l_discount") >= 0.05) & (Col("l_discount") <= 0.07)
        & (Col("l_quantity") < 24),
    )
    revenue = Col("l_extendedprice") * Col("l_discount")
    return HashAggregate(
        filtered, group_by=[],
        aggregates=[AggregateSpec("revenue", "sum", revenue)],
        output_name="q6",
    )


# ======================================================================
# Q10 -- returned-item reporting (3-way join + top-20; 3 free operators)
# ======================================================================
Q10_DATE_LO = date_ordinal(1993, 10, 1)
Q10_DATE_HI = date_ordinal(1994, 1, 1)


def _q10_logical(sf: float) -> List[LogicalOperator]:
    customers = card.table_rows("customer", sf)
    orders = card.table_rows("orders", sf)
    lineitems = card.table_rows("lineitem", sf)
    quarter_sel = card.date_range_selectivity(Q10_DATE_HI - Q10_DATE_LO)
    quarter_orders = orders * quarter_sel
    # l_returnflag = 'R' is one of the three uniform flags
    j1_out = quarter_orders * card.LINEITEMS_PER_ORDER / 3.0
    j2_out = j1_out
    j3_out = j2_out
    # customers with >= 1 returned lineitem in the quarter
    agg_out = quarter_orders * (1.0 - (2.0 / 3.0) ** 4)
    return [
        LogicalOperator(
            op_id=1, name="Join(sigma(O),sigma(L))", inputs=(),
            work_rows=orders + lineitems + j1_out,
            out_rows=j1_out, out_bytes=j1_out * _WIDTH["join_medium"],
            free=True, base_inputs=2,
        ),
        LogicalOperator(
            op_id=2, name="Join(OL,C)", inputs=(1,),
            work_rows=customers + j1_out + j2_out,
            out_rows=j2_out, out_bytes=j2_out * _WIDTH["join_wide"],
            free=True, base_inputs=1,
        ),
        LogicalOperator(
            op_id=3, name="Join(OLC,N)", inputs=(2,),
            work_rows=25 + j2_out + j3_out,
            out_rows=j3_out, out_bytes=j3_out * _WIDTH["join_wide"],
            free=True, base_inputs=1,
        ),
        LogicalOperator(
            op_id=4, name="TopRevenue(cust)", inputs=(3,),
            work_rows=j3_out, out_rows=20,
            out_bytes=20 * _WIDTH["agg_row"],
            always_materialize=True,
        ),
    ]


def _q10_physical(db: TpchDatabase, top_k: int = 20) -> PhysicalOperator:
    """Q10's tree; ``top_k=0`` skips the final truncation (used by the
    partition-parallel merge, which must see untruncated partials)."""
    orders = Project(
        Filter(
            Scan(db["orders"]),
            (Col("o_orderdate") >= Q10_DATE_LO)
            & (Col("o_orderdate") < Q10_DATE_HI),
        ),
        [("o_orderkey", Col("o_orderkey"), INT),
         ("o_custkey", Col("o_custkey"), INT)],
        output_name="o",
    )
    lineitems = Project(
        Filter(Scan(db["lineitem"]), Col("l_returnflag") == "R"),
        [("l_orderkey", Col("l_orderkey"), INT),
         ("l_extendedprice", Col("l_extendedprice"), FLOAT),
         ("l_discount", Col("l_discount"), FLOAT)],
        output_name="l",
    )
    join_ol = HashJoin(orders, lineitems, ["o_orderkey"], ["l_orderkey"],
                       output_name="ol")
    customers = Project(
        Scan(db["customer"]),
        [("c_custkey", Col("c_custkey"), INT),
         ("c_name", Col("c_name"), STRING),
         ("c_nationkey", Col("c_nationkey"), INT),
         ("c_acctbal", Col("c_acctbal"), FLOAT)],
        output_name="c",
    )
    join_olc = HashJoin(join_ol, customers, ["o_custkey"], ["c_custkey"],
                        output_name="olc")
    nation = Project(
        Scan(db["nation"]),
        [("n_nationkey", Col("n_nationkey"), INT),
         ("n_name", Col("n_name"), STRING)],
        output_name="n",
    )
    join_olcn = HashJoin(join_olc, nation,
                         ["c_nationkey"], ["n_nationkey"],
                         output_name="olcn")
    revenue = Col("l_extendedprice") * Func(
        "one_minus", lambda d: 1 - d, Col("l_discount")
    )
    aggregate = HashAggregate(
        join_olcn,
        group_by=["c_custkey", "c_name", "c_acctbal", "n_name"],
        aggregates=[AggregateSpec("revenue", "sum", revenue)],
        output_name="q10",
    )
    return Limit(Sort(aggregate, by=["revenue"], descending=True), 20)


# ======================================================================
# Q13 -- customer distribution (left outer join + double aggregation)
# ======================================================================
def _q13_logical(sf: float) -> List[LogicalOperator]:
    customers = card.table_rows("customer", sf)
    orders = card.table_rows("orders", sf)
    # orders not in status 'P' (one of three uniform statuses)
    kept_orders = orders * (2.0 / 3.0)
    # every customer survives the left join; matched customers fan out
    j1_out = kept_orders + customers * math_exp_zero_orders(sf)
    return [
        LogicalOperator(
            op_id=1, name="LeftJoin(C,sigma(O))", inputs=(),
            work_rows=customers + orders + j1_out,
            out_rows=j1_out, out_bytes=j1_out * _WIDTH["join_small"],
            free=True, base_inputs=2,
        ),
        LogicalOperator(
            op_id=2, name="CountPerCustomer", inputs=(1,),
            work_rows=j1_out, out_rows=customers,
            out_bytes=customers * 12,   # (custkey, count): tiny rows
            free=True,
        ),
        LogicalOperator(
            op_id=3, name="Distribution(c_count)", inputs=(2,),
            work_rows=customers, out_rows=40,
            out_bytes=40 * _WIDTH["agg_row"],
            always_materialize=True,
        ),
    ]


def math_exp_zero_orders(sf: float) -> float:
    """Fraction of customers with no orders at all (Poisson tail).

    Orders pick customers uniformly, ~10 per customer on average, so
    ``P(no order) = e^-10`` is negligible at scale but real at the tiny
    generated scale factors.
    """
    import math

    return math.exp(-card.orders_per_customer(sf))


def _q13_physical(db: TpchDatabase) -> PhysicalOperator:
    from ..relational.operators import TopK

    customers = Project(
        Scan(db["customer"]),
        [("c_custkey", Col("c_custkey"), INT)],
        output_name="c",
    )
    orders = Project(
        Filter(Scan(db["orders"]), Col("o_orderstatus") != "P"),
        [("o_orderkey", Col("o_orderkey"), INT),
         ("o_custkey", Col("o_custkey"), INT)],
        output_name="o",
    )
    joined = HashJoin(
        customers, orders, ["c_custkey"], ["o_custkey"],
        output_name="co", join_type="left",
    )
    per_customer = HashAggregate(
        joined,
        group_by=["c_custkey"],
        aggregates=[AggregateSpec("c_count", "count", Col("o_orderkey"),
                                  out_type=INT)],
        output_name="per_customer",
    )
    distribution = HashAggregate(
        per_customer,
        group_by=["c_count"],
        aggregates=[AggregateSpec("custdist", "count", Col("c_custkey"),
                                  out_type=INT)],
        output_name="q13",
    )
    return TopK(distribution, by=["custdist", "c_count"], k=40,
                descending=True)


QUERIES: Dict[str, TpchQuery] = {
    "Q1": TpchQuery(
        name="Q1",
        description="Pricing summary report: scan + aggregate, no join",
        logical_ops=_q1_logical,
        physical_tree=_q1_physical,
    ),
    "Q3": TpchQuery(
        name="Q3",
        description="Shipping priority: 3-way join",
        logical_ops=_q3_logical,
        physical_tree=_q3_physical,
    ),
    "Q5": TpchQuery(
        name="Q5",
        description="Local supplier volume: 6-way join chain (Figure 9)",
        logical_ops=_q5_logical,
        physical_tree=_q5_physical,
    ),
    "Q1C": TpchQuery(
        name="Q1C",
        description="Nested Q1: mid-plan aggregation joined back to L",
        logical_ops=_q1c_logical,
        physical_tree=_q1c_physical,
    ),
    "Q2C": TpchQuery(
        name="Q2C",
        description="DAG-structured Q2: one CTE feeding two outer queries",
        logical_ops=_q2c_logical,
        physical_tree=_q2c_physical,
    ),
    "Q6": TpchQuery(
        name="Q6",
        description="Forecasting revenue change: scan + scalar aggregate",
        logical_ops=_q6_logical,
        physical_tree=_q6_physical,
    ),
    "Q10": TpchQuery(
        name="Q10",
        description="Returned-item reporting: 3-way join, top-20",
        logical_ops=_q10_logical,
        physical_tree=_q10_physical,
    ),
    "Q13": TpchQuery(
        name="Q13",
        description="Customer distribution: left outer join + double agg",
        logical_ops=_q13_logical,
        physical_tree=_q13_physical,
    ),
}


def q5_logical_with_dates(
    sf: float, date_lo: int, date_hi: int
) -> List[LogicalOperator]:
    """Q5 with an explicit o_orderdate window (selectivity experiments)."""
    return _q5_logical(sf, date_lo=date_lo, date_hi=date_hi)


def q5_physical_with_dates(
    db: TpchDatabase, date_lo: int, date_hi: int
) -> PhysicalOperator:
    """Executable Q5 with an explicit o_orderdate window."""
    return _q5_physical(db, date_lo=date_lo, date_hi=date_hi)
