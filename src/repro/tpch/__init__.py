"""TPC-H workload: schema, deterministic generator, cardinality model,
and the paper's five evaluation queries."""

from . import cardinality
from .datagen import TpchDatabase, generate
from .layout import PartitionedDatabase, partition_database
from .queries import (
    QUERIES,
    TpchQuery,
    build_query_plan,
    q5_logical_with_dates,
)
from .schema import (
    BASE_ROWS,
    MAX_ORDER_DATE,
    MIN_ORDER_DATE,
    SCHEMAS,
    date_ordinal,
    rows_at_sf,
)

__all__ = [
    "BASE_ROWS",
    "MAX_ORDER_DATE",
    "MIN_ORDER_DATE",
    "QUERIES",
    "SCHEMAS",
    "PartitionedDatabase",
    "TpchDatabase",
    "TpchQuery",
    "build_query_plan",
    "cardinality",
    "date_ordinal",
    "generate",
    "partition_database",
    "q5_logical_with_dates",
    "rows_at_sf",
]
