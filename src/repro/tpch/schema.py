"""TPC-H schema (the columns this reproduction's workload touches).

Dates are stored as proleptic-Gregorian ordinals (ints) so comparisons and
arithmetic stay trivial; :func:`date_ordinal` converts from calendar
dates.  Scaling constants follow the TPC-H specification: base row counts
at scale factor 1, multiplied linearly by SF (NATION and REGION are
fixed-size).
"""

from __future__ import annotations

import datetime
from typing import Dict

from ..relational.schema import ColumnType, TableSchema

INT = ColumnType.INT
FLOAT = ColumnType.FLOAT
STRING = ColumnType.STRING
DATE = ColumnType.DATE


def date_ordinal(year: int, month: int, day: int) -> int:
    """Calendar date -> ordinal int (comparable, subtractable)."""
    return datetime.date(year, month, day).toordinal()


#: first/last dates appearing in TPC-H order data
MIN_ORDER_DATE = date_ordinal(1992, 1, 1)
MAX_ORDER_DATE = date_ordinal(1998, 8, 2)

#: rows per table at scale factor 1 (TPC-H specification, clause 4.2.5)
BASE_ROWS: Dict[str, int] = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_001_215,   # ~4 lineitems per order on average
}

#: fixed-size tables that do not scale with SF
UNSCALED = {"region", "nation"}


def rows_at_sf(table: str, scale_factor: float) -> int:
    """Row count of ``table`` at the given scale factor."""
    base = BASE_ROWS[table]
    if table in UNSCALED:
        return base
    return max(1, round(base * scale_factor))


REGION = TableSchema.build("region", [
    ("r_regionkey", INT),
    ("r_name", STRING),
])

NATION = TableSchema.build("nation", [
    ("n_nationkey", INT),
    ("n_name", STRING),
    ("n_regionkey", INT),
])

SUPPLIER = TableSchema.build("supplier", [
    ("s_suppkey", INT),
    ("s_name", STRING),
    ("s_nationkey", INT),
    ("s_acctbal", FLOAT),
])

CUSTOMER = TableSchema.build("customer", [
    ("c_custkey", INT),
    ("c_name", STRING),
    ("c_nationkey", INT),
    ("c_mktsegment", STRING),
    ("c_acctbal", FLOAT),
])

PART = TableSchema.build("part", [
    ("p_partkey", INT),
    ("p_name", STRING),
    ("p_mfgr", STRING),
    ("p_type", STRING),
    ("p_size", INT),
    ("p_retailprice", FLOAT),
])

PARTSUPP = TableSchema.build("partsupp", [
    ("ps_partkey", INT),
    ("ps_suppkey", INT),
    ("ps_availqty", INT),
    ("ps_supplycost", FLOAT),
])

ORDERS = TableSchema.build("orders", [
    ("o_orderkey", INT),
    ("o_custkey", INT),
    ("o_orderstatus", STRING),
    ("o_totalprice", FLOAT),
    ("o_orderdate", DATE),
    ("o_shippriority", INT),
])

LINEITEM = TableSchema.build("lineitem", [
    ("l_orderkey", INT),
    ("l_partkey", INT),
    ("l_suppkey", INT),
    ("l_linenumber", INT),
    ("l_quantity", FLOAT),
    ("l_extendedprice", FLOAT),
    ("l_discount", FLOAT),
    ("l_tax", FLOAT),
    ("l_returnflag", STRING),
    ("l_linestatus", STRING),
    ("l_shipdate", DATE),
])

SCHEMAS: Dict[str, TableSchema] = {
    "region": REGION,
    "nation": NATION,
    "supplier": SUPPLIER,
    "customer": CUSTOMER,
    "part": PART,
    "partsupp": PARTSUPP,
    "orders": ORDERS,
    "lineitem": LINEITEM,
}

REGION_NAMES = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

NATION_NAMES = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT",
    "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA",
    "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
    "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "RUSSIA", "SAUDI ARABIA", "VIETNAM", "UNITED KINGDOM", "UNITED STATES",
]

#: nationkey -> regionkey mapping from the TPC-H specification
NATION_REGIONS = [
    0, 1, 1, 1, 4, 0, 3, 3, 2, 2,
    4, 4, 2, 4, 0, 0, 0, 1, 2, 3,
    3, 4, 2, 3, 1,
]

MARKET_SEGMENTS = [
    "AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY",
]

PART_TYPES = [
    f"{kind} {finish} {metal}"
    for kind in ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
    for finish in ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
    for metal in ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
]

RETURN_FLAGS = ["R", "A", "N"]
LINE_STATUSES = ["O", "F"]
