"""Analytical cardinality model for the TPC-H workload.

The simulator runs the paper's SF 1-1000 experiments without generating
billions of rows: per-operator output cardinalities are computed from the
TPC-H scaling rules and uniformity assumptions, the same way a cost-based
optimizer derives them.  The model is validated against the real data
generator at small scale factors (``tests/test_cardinality.py``): measured
and predicted cardinalities must agree within sampling noise.

All helpers return *expected* (fractional) row counts; rounding is left to
the caller so that tiny scale factors do not collapse to zero.
"""

from __future__ import annotations

from .schema import (
    BASE_ROWS,
    MARKET_SEGMENTS,
    MAX_ORDER_DATE,
    MIN_ORDER_DATE,
    PART_TYPES,
)

#: days covered by o_orderdate (uniform in the generator)
ORDER_DATE_SPAN = MAX_ORDER_DATE - MIN_ORDER_DATE + 1

#: average lineitems per order (uniform 1..7)
LINEITEMS_PER_ORDER = 4.0


def table_rows(table: str, scale_factor: float) -> float:
    """Expected base-table cardinality at ``scale_factor``."""
    if table == "lineitem":
        # lineitems are generated per order (1-7 uniform), so their count
        # scales with orders rather than the spec's absolute 6,001,215
        return table_rows("orders", scale_factor) * LINEITEMS_PER_ORDER
    base = BASE_ROWS[table]
    if table in ("region", "nation"):
        return float(base)
    return base * scale_factor


def date_range_selectivity(days: float) -> float:
    """Fraction of orders with o_orderdate inside a ``days``-long window."""
    if days < 0:
        raise ValueError("days must be >= 0")
    return min(days / ORDER_DATE_SPAN, 1.0)


def q3_lineitem_selectivity(cutoff_offset_days: float = 1169.0) -> float:
    """P(l_shipdate > cutoff | o_orderdate < cutoff) for Q3.

    Ship dates lag order dates by uniform [1, 121] days, so only orders
    placed within ~121 days before the cutoff can have lineitems shipping
    after it -- the date predicates of Q3 are strongly correlated, not
    independent.  With the cutoff ``cutoff_offset_days`` after the first
    order date (1995-03-15 is day 1169), a qualifying order lies in the
    121-day window with probability ``121 / offset`` and then on average
    half its lineitems ship past the cutoff.
    """
    if cutoff_offset_days <= 0:
        raise ValueError("cutoff_offset_days must be > 0")
    window = min(121.0 / cutoff_offset_days, 1.0)
    return window * 0.5


def q3_order_survival(cutoff_offset_days: float = 1169.0) -> float:
    """P(an order before the cutoff has >= 1 lineitem shipping after it).

    Only orders inside the 121-day window qualify; of those, each of the
    ~4 lineitems independently ships past the cutoff w.p. ~1/2, so nearly
    all window orders survive (1 - 2^-4).
    """
    if cutoff_offset_days <= 0:
        raise ValueError("cutoff_offset_days must be > 0")
    window = min(121.0 / cutoff_offset_days, 1.0)
    return window * (1.0 - 0.5 ** LINEITEMS_PER_ORDER)


def ship_delay_selectivity(min_delay_days: float) -> float:
    """Fraction of lineitems with ``l_shipdate > o_orderdate + delay``.

    Ship delays are uniform on [1, 121] days in the generator.
    """
    if min_delay_days <= 1:
        return 1.0
    if min_delay_days >= 121:
        return 0.0
    return (121.0 - min_delay_days) / 120.0


def region_selectivity() -> float:
    """Fraction of regions matching one region name."""
    return 1.0 / 5.0


def nations_in_region() -> float:
    """Nations per region (the spec maps 5 nations to each region)."""
    return 25.0 / 5.0


def nation_fraction() -> float:
    """Fraction of customers/suppliers belonging to one region's nations."""
    return nations_in_region() / 25.0


def mktsegment_selectivity() -> float:
    """Fraction of customers in one market segment (uniform)."""
    return 1.0 / len(MARKET_SEGMENTS)


def part_type_selectivity() -> float:
    """Fraction of parts of one p_type (uniform over the 150 types)."""
    return 1.0 / len(PART_TYPES)


def part_size_selectivity() -> float:
    """Fraction of parts with one p_size (uniform 1..50)."""
    return 1.0 / 50.0


def same_nation_join_selectivity() -> float:
    """P(supplier nation == customer nation) for independent choices."""
    return 1.0 / 25.0


def suppliers_per_part() -> float:
    """partsupp fan-out: suppliers per part."""
    return 4.0


def orders_per_customer(scale_factor: float) -> float:
    """Average orders per customer."""
    return (
        table_rows("orders", scale_factor)
        / table_rows("customer", scale_factor)
    )
