"""Deterministic TPC-H data generator (a laptop-scale dbgen).

Generates the eight TPC-H tables at arbitrary (fractional) scale factors
with the referential structure and value distributions the paper's
workload depends on: orders reference customers, lineitems reference
orders/parts/suppliers, 1-7 lineitems per order, uniform order dates over
1992-1998, ship dates 1-121 days after the order date, uniform market
segments, region-consistent nation keys, and so on.

Everything is drawn from a seeded NumPy generator, so a given
``(scale_factor, seed)`` always produces the same database.  Realistic
absolute volumes are not the point (the simulator handles large scale
factors analytically); *correct relative cardinalities* are, because the
statistics layer validates its analytical model against this generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..relational.table import Table
from .schema import (
    LINE_STATUSES,
    MARKET_SEGMENTS,
    MAX_ORDER_DATE,
    MIN_ORDER_DATE,
    NATION_NAMES,
    NATION_REGIONS,
    PART_TYPES,
    REGION_NAMES,
    RETURN_FLAGS,
    SCHEMAS,
    rows_at_sf,
)


@dataclass(frozen=True)
class TpchDatabase:
    """The eight generated tables plus the generation parameters."""

    scale_factor: float
    seed: int
    tables: Dict[str, Table]

    def __getitem__(self, name: str) -> Table:
        return self.tables[name]

    @property
    def total_rows(self) -> int:
        return sum(table.num_rows for table in self.tables.values())


def generate(scale_factor: float, seed: int = 0) -> TpchDatabase:
    """Generate a complete TPC-H database at ``scale_factor``.

    Use small scale factors (0.001 - 0.05) for in-memory execution; the
    analytical cardinality model covers the paper's SF 1-1000 range.
    """
    if scale_factor <= 0:
        raise ValueError("scale_factor must be > 0")
    rng = np.random.default_rng(seed)
    tables: Dict[str, Table] = {}
    tables["region"] = _region()
    tables["nation"] = _nation()
    tables["supplier"] = _supplier(scale_factor, rng)
    tables["customer"] = _customer(scale_factor, rng)
    tables["part"] = _part(scale_factor, rng)
    tables["partsupp"] = _partsupp(scale_factor, rng, tables)
    tables["orders"] = _orders(scale_factor, rng, tables)
    tables["lineitem"] = _lineitem(scale_factor, rng, tables)
    return TpchDatabase(scale_factor=scale_factor, seed=seed, tables=tables)


def _region() -> Table:
    rows = [[key, name] for key, name in enumerate(REGION_NAMES)]
    return Table.from_rows(SCHEMAS["region"], rows)


def _nation() -> Table:
    rows = [
        [key, name, NATION_REGIONS[key]]
        for key, name in enumerate(NATION_NAMES)
    ]
    return Table.from_rows(SCHEMAS["nation"], rows)


def _supplier(scale_factor: float, rng: np.random.Generator) -> Table:
    count = rows_at_sf("supplier", scale_factor)
    nation_keys = rng.integers(0, 25, size=count)
    acctbals = np.round(rng.uniform(-999.99, 9999.99, size=count), 2)
    rows = [
        [key + 1, f"Supplier#{key + 1:09d}",
         int(nation_keys[key]), float(acctbals[key])]
        for key in range(count)
    ]
    return Table.from_rows(SCHEMAS["supplier"], rows)


def _customer(scale_factor: float, rng: np.random.Generator) -> Table:
    count = rows_at_sf("customer", scale_factor)
    nation_keys = rng.integers(0, 25, size=count)
    segments = rng.integers(0, len(MARKET_SEGMENTS), size=count)
    acctbals = np.round(rng.uniform(-999.99, 9999.99, size=count), 2)
    rows = [
        [key + 1, f"Customer#{key + 1:09d}", int(nation_keys[key]),
         MARKET_SEGMENTS[segments[key]], float(acctbals[key])]
        for key in range(count)
    ]
    return Table.from_rows(SCHEMAS["customer"], rows)


def _part(scale_factor: float, rng: np.random.Generator) -> Table:
    count = rows_at_sf("part", scale_factor)
    types = rng.integers(0, len(PART_TYPES), size=count)
    sizes = rng.integers(1, 51, size=count)
    prices = np.round(rng.uniform(900.0, 2000.0, size=count), 2)
    rows = [
        [key + 1, f"Part#{key + 1:09d}",
         f"Manufacturer#{key % 5 + 1}", PART_TYPES[types[key]],
         int(sizes[key]), float(prices[key])]
        for key in range(count)
    ]
    return Table.from_rows(SCHEMAS["part"], rows)


def _partsupp(
    scale_factor: float, rng: np.random.Generator, tables: Dict[str, Table]
) -> Table:
    part_count = tables["part"].num_rows
    supplier_count = tables["supplier"].num_rows
    #: 4 suppliers per part, as in the specification
    per_part = min(4, supplier_count)
    rows = []
    for part_key in range(1, part_count + 1):
        suppliers = rng.choice(
            supplier_count, size=per_part, replace=False
        )
        for supplier_index in suppliers:
            rows.append([
                part_key,
                int(supplier_index) + 1,
                int(rng.integers(1, 10_000)),
                round(float(rng.uniform(1.0, 1000.0)), 2),
            ])
    return Table.from_rows(SCHEMAS["partsupp"], rows)


def _orders(
    scale_factor: float, rng: np.random.Generator, tables: Dict[str, Table]
) -> Table:
    count = rows_at_sf("orders", scale_factor)
    customer_count = tables["customer"].num_rows
    #: only 2/3 of customers have orders in TPC-H; good enough uniformly here
    customer_keys = rng.integers(1, customer_count + 1, size=count)
    dates = rng.integers(MIN_ORDER_DATE, MAX_ORDER_DATE + 1, size=count)
    prices = np.round(rng.uniform(1_000.0, 450_000.0, size=count), 2)
    statuses = rng.integers(0, 3, size=count)
    status_values = ["F", "O", "P"]
    rows = [
        [key + 1, int(customer_keys[key]), status_values[statuses[key]],
         float(prices[key]), int(dates[key]), int(rng.integers(0, 2))]
        for key in range(count)
    ]
    return Table.from_rows(SCHEMAS["orders"], rows)


def _lineitem(
    scale_factor: float, rng: np.random.Generator, tables: Dict[str, Table]
) -> Table:
    orders = tables["orders"]
    part_count = tables["part"].num_rows
    supplier_count = tables["supplier"].num_rows
    order_keys = orders.column("o_orderkey")
    order_dates = orders.column("o_orderdate")

    rows = []
    for order_key, order_date in zip(order_keys, order_dates):
        for line_number in range(1, int(rng.integers(1, 8)) + 1):
            quantity = float(rng.integers(1, 51))
            extended = round(quantity * float(rng.uniform(900.0, 2000.0)), 2)
            ship_date = order_date + int(rng.integers(1, 122))
            rows.append([
                order_key,
                int(rng.integers(1, part_count + 1)),
                int(rng.integers(1, supplier_count + 1)),
                line_number,
                quantity,
                extended,
                round(float(rng.uniform(0.0, 0.10)), 2),
                round(float(rng.uniform(0.0, 0.08)), 2),
                RETURN_FLAGS[int(rng.integers(0, len(RETURN_FLAGS)))],
                LINE_STATUSES[int(rng.integers(0, len(LINE_STATUSES)))],
                ship_date,
            ])
    return Table.from_rows(SCHEMAS["lineitem"], rows)
