"""Workload generation and workload-level measurement."""

from .mixed import WorkloadQuery, generate_mixed_workload
from .runner import (
    QueryOutcome,
    WorkloadRun,
    compare_workload,
    format_comparison,
    run_workload,
)

__all__ = [
    "QueryOutcome",
    "WorkloadQuery",
    "WorkloadRun",
    "compare_workload",
    "format_comparison",
    "generate_mixed_workload",
    "run_workload",
]
