"""Mixed analytical workloads (the paper's motivating scenario).

Real deployments mix interactive queries that run for seconds with batch
queries that run for hours [Ren et al., "Hadoop's Adolescence"].  This
module generates such workloads over the TPC-H query set by assigning
each query instance a scale factor drawn from a heavy-tailed
distribution, so the examples can demonstrate that no static
fault-tolerance scheme fits all of them while the cost-based scheme picks
each query's sweet spot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core.plan import Plan
from ..stats.calibration import default_parameters
from ..stats.estimates import CostParameters
from ..tpch.queries import build_query_plan


@dataclass(frozen=True)
class WorkloadQuery:
    """One query instance of a mixed workload."""

    label: str            #: e.g. "Q5@SF12"
    query_name: str       #: TPC-H query id
    scale_factor: float
    plan: Plan

    @property
    def baseline_cost(self) -> float:
        """Failure-free cost of the no-mat plan (critical path proxy)."""
        return self.plan.total_runtime_cost


def generate_mixed_workload(
    count: int = 20,
    seed: int = 7,
    query_names: Sequence[str] = ("Q1", "Q3", "Q5", "Q1C", "Q2C",
                                  "Q6", "Q10", "Q13"),
    sf_range: Tuple[float, float] = (0.5, 500.0),
    params: CostParameters = None,
) -> List[WorkloadQuery]:
    """Draw ``count`` query instances with log-uniform scale factors.

    Log-uniform scale factors produce the paper's "seconds to hours"
    runtime spread; the mix of query shapes produces the varying
    materialization-cost profiles.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if params is None:
        params = default_parameters()
    rng = np.random.default_rng(seed)
    low, high = sf_range
    if not 0 < low < high:
        raise ValueError("sf_range must satisfy 0 < low < high")
    workload: List[WorkloadQuery] = []
    for index in range(count):
        query_name = query_names[int(rng.integers(0, len(query_names)))]
        scale_factor = float(np.exp(
            rng.uniform(np.log(low), np.log(high))
        ))
        plan = build_query_plan(query_name, scale_factor, params)
        workload.append(WorkloadQuery(
            label=f"{query_name}@SF{scale_factor:.3g}",
            query_name=query_name,
            scale_factor=scale_factor,
            plan=plan,
        ))
    return workload
