"""Workload-level measurement: a query sequence on one failure timeline.

The paper evaluates schemes per query; real deployments care about the
*workload* -- a mix of queries running back-to-back on a cluster whose
failures do not pause between queries.  The runner executes a workload
sequentially against one continuous failure trace per scheme (the trace
is re-based at each query boundary), yielding per-scheme makespans and
per-query breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.strategies import FaultToleranceScheme, standard_schemes
from ..engine.campaign import campaign_map
from ..engine.cluster import Cluster
from ..engine.executor import SimulatedEngine, TraceExhausted
from ..engine.traces import FailureTrace, extend_trace, generate_trace
from .mixed import WorkloadQuery


@dataclass(frozen=True)
class QueryOutcome:
    """One query's result within a workload run."""

    label: str
    runtime: float
    aborted: bool
    share_restarts: int
    restarts: int


@dataclass(frozen=True)
class WorkloadRun:
    """A full workload under one scheme."""

    scheme: str
    outcomes: Tuple[QueryOutcome, ...]
    makespan: float
    aborted_queries: int

    @property
    def finished(self) -> bool:
        return self.aborted_queries == 0


def run_workload(
    workload: Sequence[WorkloadQuery],
    scheme: FaultToleranceScheme,
    cluster: Cluster,
    mtbf: float,
    trace: Optional[FailureTrace] = None,
    seed: int = 0,
    const_pipe: float = 1.0,
) -> WorkloadRun:
    """Execute ``workload`` back-to-back under ``scheme``.

    A single failure trace covers the whole run; each query sees the
    timeline from its own start.  Aborted queries (restart limit) are
    skipped after charging the time they burned, like the paper's
    abort-after-100-restarts protocol.
    """
    if not workload:
        raise ValueError("workload must contain at least one query")
    stats = cluster.stats(mtbf, const_pipe=const_pipe)
    engine = SimulatedEngine(cluster, const_pipe=const_pipe)
    if trace is None:
        horizon = _initial_horizon(workload, mtbf)
        trace = generate_trace(cluster.nodes, mtbf, horizon, seed=seed)

    clock = 0.0
    outcomes: List[QueryOutcome] = []
    aborted = 0
    for query in workload:
        configured = scheme.configure(query.plan, stats)
        result, trace = _execute_at(engine, configured, trace, clock)
        outcomes.append(QueryOutcome(
            label=query.label,
            runtime=result.runtime,
            aborted=result.aborted,
            share_restarts=result.share_restarts,
            restarts=result.restarts,
        ))
        clock += result.runtime
        if result.aborted:
            aborted += 1
    return WorkloadRun(
        scheme=scheme.name,
        outcomes=tuple(outcomes),
        makespan=clock,
        aborted_queries=aborted,
    )


def _workload_job(item) -> WorkloadRun:
    """One scheme's workload run -- :func:`compare_workload`'s unit of
    parallelism (module-level so it pickles into worker processes)."""
    workload, scheme, cluster, mtbf, trace = item
    return run_workload(workload, scheme, cluster, mtbf, trace=trace)


def compare_workload(
    workload: Sequence[WorkloadQuery],
    cluster: Cluster,
    mtbf: float,
    schemes: Optional[Sequence[FaultToleranceScheme]] = None,
    seed: int = 0,
    jobs: int = 1,
) -> List[WorkloadRun]:
    """Run the workload once per scheme on the *same* failure timeline.

    ``jobs > 1`` fans the schemes out over worker processes
    (:func:`~repro.engine.campaign.campaign_map`); every scheme still
    sees the identical seeded timeline, so results match the serial run
    exactly.
    """
    if schemes is None:
        schemes = standard_schemes()
    horizon = _initial_horizon(workload, mtbf)
    trace = generate_trace(cluster.nodes, mtbf, horizon, seed=seed)
    items = [
        (tuple(workload), scheme, cluster, mtbf, trace)
        for scheme in schemes
    ]
    return campaign_map(_workload_job, items, jobs=jobs)


def _execute_at(engine, configured, trace, clock):
    """Run one query at workload time ``clock``; returns (result, trace).

    The (possibly extended) base trace is handed back so later queries
    reuse the longer horizon instead of re-extending.
    """
    prepared = engine.prepare(configured)
    while True:
        try:
            result = engine.execute_prepared(prepared, trace.shifted(clock))
            return result, trace
        except TraceExhausted:
            if trace.seed is None:
                raise
            trace = extend_trace(trace, trace.horizon * 4)


def _initial_horizon(workload, mtbf) -> float:
    total = sum(query.baseline_cost for query in workload)
    return max(total * 30.0, mtbf * 4.0, 10_000.0)


def format_comparison(runs: Sequence[WorkloadRun]) -> str:
    """Per-scheme workload summary as a text table."""
    lines = [f"{'scheme':<20s}{'makespan':>12s}{'aborted':>9s}"
             f"{'restarts':>10s}"]
    for run in runs:
        restarts = sum(o.share_restarts + o.restarts for o in run.outcomes)
        lines.append(
            f"{run.scheme:<20s}{run.makespan:>11.0f}s"
            f"{run.aborted_queries:>9d}{restarts:>10d}"
        )
    return "\n".join(lines)
