"""Simulated shared-nothing cluster (the paper's Section 5.1 setup).

A :class:`Cluster` bundles everything the simulated engine needs to know
about the environment: the node count, the mean time to repair, and which
storage medium holds materialized intermediates.  Failure behaviour itself
comes from a :class:`~repro.engine.traces.FailureTrace` supplied per run,
mirroring the paper's protocol of replaying identical traces across
schemes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.cost_model import ClusterStats
from .storage import FaultTolerantStorage, StorageMedium


@dataclass(frozen=True)
class Cluster:
    """Static description of the simulated cluster.

    Parameters
    ----------
    nodes:
        Number of worker nodes executing partition-parallel sub-plans.
    mttr:
        Mean time to repair: delay between a failure being detected and
        the failed sub-plan being redeployed (the paper uses 1 s, from a
        2 s monitoring interval).
    storage:
        Where materialized intermediates live.  The default
        :class:`FaultTolerantStorage` matches the paper's assumption that
        intermediates survive failures (external iSCSI storage); a
        :class:`~repro.engine.storage.LocalStorage` models the
        lost-intermediates case of Section 2.2.
    max_restarts:
        Abort threshold for the coarse-grained restart scheme; the paper
        aborted queries after 100 restarts.
    node_skew:
        Optional per-node work multipliers (one per node, >= length of
        the slowest share).  A value of 1.2 means that node processes its
        partition 20 % slower -- data skew or heterogeneous hardware.
        The cost model does not see skew (its estimates are per uniform
        partition-parallel execution), which is exactly the
        hard-to-estimate situation the paper's Section 7 mentions; the
        adaptive extension reacts to it at run time.
    """

    nodes: int
    mttr: float = 1.0
    storage: StorageMedium = field(default_factory=FaultTolerantStorage)
    max_restarts: int = 100
    node_skew: "tuple[float, ...]" = ()

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.mttr < 0:
            raise ValueError("mttr must be >= 0")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.node_skew:
            if len(self.node_skew) != self.nodes:
                raise ValueError("node_skew must have one entry per node")
            if any(factor <= 0 for factor in self.node_skew):
                raise ValueError("node_skew factors must be > 0")

    def skew_of(self, node: int) -> float:
        """Work multiplier of ``node`` (1.0 without configured skew)."""
        if not self.node_skew:
            return 1.0
        return self.node_skew[node]

    def stats(
        self,
        mtbf: float,
        const_cost: float = 1.0,
        const_pipe: float = 1.0,
        success_percentile: float = 0.95,
    ) -> ClusterStats:
        """Cost-model statistics for this cluster under a given MTBF.

        Convenience bridge between the engine-side description and the
        optimizer-side :class:`~repro.core.cost_model.ClusterStats`.
        """
        return ClusterStats(
            mtbf=mtbf,
            mttr=self.mttr,
            nodes=self.nodes,
            const_cost=const_cost,
            const_pipe=const_pipe,
            success_percentile=success_percentile,
        )
