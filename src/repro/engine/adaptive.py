"""Adaptive mid-query re-optimization (the paper's Section 7 outlook).

The static cost-based scheme decides the materialization configuration
once, before execution, from *estimates*.  When those estimates are wrong
-- skewed data, misestimated cardinalities, a stale MTBF -- the chosen
checkpoints can be far from optimal.  The paper's outlook proposes "more
dynamic decisions for cases where data is skewed or statistics are hard
to estimate"; this module implements that idea on the simulator:

* execution proceeds one collapsed group at a time, exactly as the
  engine schedules them (every completed group's output is materialized
  by construction, so each group boundary is a natural decision point);
* after each group completes, the runner compares the *observed* elapsed
  work against the optimizer's estimate and derives a multiplicative
  **correction factor** (an exponentially smoothed observed/estimated
  ratio);
* the remaining plan's estimates are rescaled by the factor, and the
  materialization configuration of all *not-yet-started* free operators
  is re-optimized under the failure cost model;
* completed work is sunk: its operators are frozen at zero remaining
  cost with their executed flags.

The adaptive runner therefore needs two views of the query: the
``estimated`` plan the optimizer believes in, and the ``true`` plan the
engine executes (in experiments the true plan is a perturbed/skewed
variant of the estimate; with perfect statistics the two coincide and
the runner reduces to the static scheme).

Limitation: decision points only exist at materialization boundaries.
If the initial (misled) decision materializes nothing, the whole query
is one recovery unit and there is nothing to adapt mid-flight -- a
production system would plant an early low-cost checkpoint to buy
itself an observation point, which is exactly the "more dynamic
decisions" engineering the paper defers to future work.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Set, Tuple

from ..core.collapse import collapse_plan
from ..core.cost_model import ClusterStats
from ..core.enumeration import find_best_ft_plan
from ..core.plan import Plan
from ..core.pruning import PruningConfig
from ..core.strategies import CostBased
from .executor import ExecutionResult, SimulatedEngine, TraceExhausted
from .timeline import EventKind, Timeline
from .traces import FailureTrace


@dataclass(frozen=True)
class Reconfiguration:
    """One adaptive decision taken at a group boundary."""

    time: float                      #: when the group completed
    completed_anchor: int            #: the group that just finished
    correction: float                #: smoothed observed/estimated ratio
    mat_config: Tuple[Tuple[int, bool], ...]  #: flags chosen for the rest


@dataclass(frozen=True)
class AdaptiveResult:
    """Outcome of an adaptive run."""

    result: ExecutionResult
    reconfigurations: Tuple[Reconfiguration, ...]
    final_correction: float

    @property
    def runtime(self) -> float:
        return self.result.runtime


class AdaptiveExecutor:
    """Runs a query with between-group re-optimization.

    Parameters
    ----------
    engine:
        The simulated engine supplying cluster, storage, and skew.
    stats:
        Cluster statistics for the optimizer.
    smoothing:
        Weight of the newest observation in the exponential smoothing of
        the correction factor (1.0 = trust only the latest group).
    pruning:
        Pruning rules for the embedded configuration searches.
    """

    def __init__(
        self,
        engine: SimulatedEngine,
        stats: ClusterStats,
        smoothing: float = 0.5,
        pruning: PruningConfig = PruningConfig.all(),
        track_mtbf: bool = False,
    ) -> None:
        if not 0 < smoothing <= 1:
            raise ValueError("smoothing must be in (0, 1]")
        self.engine = engine
        self.stats = stats
        self.smoothing = smoothing
        self.pruning = pruning
        #: also re-estimate the MTBF online from failures observed during
        #: the run (a Bayesian blend of the configured prior with the
        #: run's own evidence), so a stale cluster statistic is corrected
        #: mid-query just like stale cost estimates are
        self.track_mtbf = track_mtbf

    # ------------------------------------------------------------------
    def execute(
        self,
        true_plan: Plan,
        estimated_plan: Optional[Plan] = None,
        trace: Optional[FailureTrace] = None,
    ) -> AdaptiveResult:
        """Run ``true_plan``, deciding from ``estimated_plan``.

        ``estimated_plan`` defaults to the true plan (perfect
        statistics).  Both plans must share operator ids and edges.
        """
        if estimated_plan is None:
            estimated_plan = true_plan
        _check_same_shape(true_plan, estimated_plan)
        if trace is None:
            trace = FailureTrace.empty(self.engine.cluster.nodes)

        # initial static decision from the estimates
        config = dict(CostBased(pruning=self.pruning).configure(
            estimated_plan, self.stats
        ).plan.mat_config())

        timeline = Timeline()
        seen_failures: Set[Tuple[int, float]] = set()
        completion: Dict[int, float] = {}
        completed_ops: Set[int] = set()
        reconfigurations: List[Reconfiguration] = []
        correction = 1.0
        share_restarts = 0
        clock = 0.0

        while len(completed_ops) < len(true_plan):
            executable = true_plan.with_mat_config(_free_part(
                true_plan, config
            ))
            collapsed = collapse_plan(
                executable, const_pipe=self.stats.const_pipe
            )
            anchor = self._next_ready_group(
                collapsed, completion, completed_ops
            )
            group = collapsed[anchor]
            done, restarts = self.engine.run_group(
                plan=executable,
                collapsed=collapsed,
                anchor=anchor,
                completion=completion,
                trace=trace,
                timeline=timeline,
                seen_failures=seen_failures,
            )
            completion[anchor] = done
            completed_ops |= set(group.members)
            share_restarts += restarts
            clock = max(clock, done)

            if len(completed_ops) >= len(true_plan):
                break

            correction = self._update_correction(
                correction, estimated_plan, executable, group,
            )
            stats = self._current_stats(len(seen_failures), clock)
            config = self._reoptimize(
                estimated_plan, config, completed_ops, correction, stats
            )
            reconfigurations.append(Reconfiguration(
                time=done,
                completed_anchor=anchor,
                correction=correction,
                mat_config=tuple(sorted(
                    (op_id, flag) for op_id, flag in config.items()
                    if estimated_plan[op_id].free
                    and op_id not in completed_ops
                )),
            ))

        timeline.record(clock, EventKind.QUERY_COMPLETED)
        result = ExecutionResult(
            runtime=clock,
            aborted=False,
            restarts=0,
            share_restarts=share_restarts,
            failures_hit=len(seen_failures),
            scheme="adaptive cost-based",
            timeline=timeline,
        )
        if clock > trace.horizon:
            raise TraceExhausted(
                f"adaptive run needed {clock:.1f}s but the trace only "
                f"covers {trace.horizon:.1f}s"
            )
        return AdaptiveResult(
            result=result,
            reconfigurations=tuple(reconfigurations),
            final_correction=correction,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _next_ready_group(collapsed, completion, completed_ops) -> int:
        for anchor in collapsed.topological_order():
            if anchor in completion:
                continue
            if all(p in completion for p in collapsed.producers(anchor)):
                return anchor
        raise RuntimeError("no ready group found")  # pragma: no cover

    def _update_correction(
        self, correction: float, estimated_plan: Plan,
        executable: Plan, group,
    ) -> float:
        """Blend the group's observed/estimated work ratio in.

        Observed work is read from the *true* plan's costs (what the
        engine actually charged); estimates from the optimizer's view.
        Skew inflates observation via the slowest node.
        """
        estimated = sum(
            estimated_plan[m].runtime_cost for m in group.members
        )
        observed = sum(
            executable[m].runtime_cost for m in group.members
        )
        worst_skew = max(
            (self.engine.cluster.skew_of(node)
             for node in range(self.engine.cluster.nodes)),
            default=1.0,
        )
        observed *= worst_skew
        if estimated <= 0:
            return correction
        ratio = observed / estimated
        return (1 - self.smoothing) * correction + self.smoothing * ratio

    def _current_stats(self, failures_seen: int,
                       elapsed: float) -> ClusterStats:
        """Cluster statistics for the next decision.

        With ``track_mtbf``, once the run has seen at least two failures
        its own maximum-likelihood estimate (observed node-time over
        failures) replaces the configured prior -- within-query
        adaptation must react in minutes, and a stale weekly prior would
        otherwise take a week of evidence to overturn.  With fewer than
        two failures the prior stands (one failure is compatible with
        almost any rate).
        """
        if not self.track_mtbf or elapsed <= 0 or failures_seen < 2:
            return self.stats
        node_time = elapsed * self.engine.cluster.nodes
        return self.stats.with_mtbf(node_time / failures_seen)

    def _reoptimize(
        self,
        estimated_plan: Plan,
        config: Dict[int, bool],
        completed_ops: Set[int],
        correction: float,
        stats: Optional[ClusterStats] = None,
    ) -> Dict[int, bool]:
        """Re-search the configuration of the remaining free operators."""
        if stats is None:
            stats = self.stats
        remaining = Plan()
        for op_id, operator in estimated_plan.operators.items():
            if op_id in completed_ops:
                # sunk work: keep the executed flag, zero remaining cost
                remaining.add_operator(replace(
                    operator,
                    runtime_cost=0.0,
                    mat_cost=0.0,
                    materialize=config[op_id],
                    free=False,
                ))
            else:
                remaining.add_operator(replace(
                    operator,
                    runtime_cost=operator.runtime_cost * correction,
                    mat_cost=operator.mat_cost * correction,
                    materialize=config[op_id],
                ))
        for producer, consumer in estimated_plan.edges():
            remaining.add_edge(producer, consumer)

        search = find_best_ft_plan([remaining], stats,
                                   pruning=self.pruning)
        updated = dict(config)
        updated.update(search.plan.mat_config())
        for op_id in completed_ops:
            updated[op_id] = config[op_id]
        return updated


def _free_part(plan: Plan, config: Dict[int, bool]) -> Dict[int, bool]:
    """Restrict a full mat-config dict to the plan's free operators."""
    return {op_id: config[op_id] for op_id in plan.free_operators}


def _check_same_shape(true_plan: Plan, estimated_plan: Plan) -> None:
    if set(true_plan.operators) != set(estimated_plan.operators):
        raise ValueError("true and estimated plans have different operators")
    if set(true_plan.edges()) != set(estimated_plan.edges()):
        raise ValueError("true and estimated plans have different edges")
    for op_id in true_plan.operators:
        if true_plan[op_id].free != estimated_plan[op_id].free:
            raise ValueError(
                f"operator {op_id}: free flags differ between plans"
            )
