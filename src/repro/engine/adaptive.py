"""Adaptive mid-query re-optimization (the paper's Section 7 outlook).

The static cost-based scheme decides the materialization configuration
once, before execution, from *estimates*.  When those estimates are wrong
-- skewed data, misestimated cardinalities, a stale MTBF -- the chosen
checkpoints can be far from optimal.  The paper's outlook proposes "more
dynamic decisions for cases where data is skewed or statistics are hard
to estimate"; this module implements that idea on the simulator and
closes the estimate -> observe -> re-optimize loop:

* execution proceeds one collapsed group at a time, exactly as the
  engine schedules them (every completed group's output is materialized
  by construction, so each group boundary is a natural decision point);
* a :class:`DriftMonitor` ingests the run's observations online -- the
  observed/estimated work ratio of each finished group (an
  exponentially smoothed **correction factor**) and the timeline's
  ``NODE_FAILED`` events through a decayed
  :class:`~repro.stats.mtbf_estimation.MtbfTracker`;
* at each decision point the monitor checks a configurable
  :class:`DriftEnvelope`: has the observed MTBF point estimate left the
  band the plan was optimized for (with the chi-square confidence
  interval excluding the assumed MTBF), or has the runtime correction
  left its band?  Only then is a re-plan **triggered** -- otherwise the
  decision is **suppressed** and the flight plan stands;
* a triggered re-plan re-runs
  :func:`~repro.core.enumeration.find_best_ft_plan` from the current
  durable frontier: completed operators are sunk at zero remaining cost
  with their executed flags (:func:`frontier_plan`), remaining estimates
  are rescaled by the correction, and the not-yet-started free
  operators switch to the new configuration in flight.

With ``envelope=None`` the executor re-plans *eagerly* at every group
boundary (the original behaviour, kept for the perturbed-estimate
experiments); with an envelope it only re-plans on drift, which makes a
zero-drift run bit-identical to the static cost-based scheme -- the
property suite byte-compares the two.

:class:`AdaptiveCostBased` packages the executor as a campaign-runnable
scheme (``jobs=N`` bit-identical to ``jobs=1``: every decision is a pure
function of the cell and trace), and ``on_replan`` lets a deployment
push the refreshed cluster statistics to a serving layer (the advisory
engine's hot stats push,
:meth:`repro.serve.AdvisoryEngine.push_cluster_stats`).

Observability: every decision point opens an ``adaptive.decision`` span
and ends in exactly one of the counters ``adaptive.triggers`` ->
``adaptive.replans`` (the search actually ran) or
``adaptive.suppressed``.

Limitation: decision points only exist at materialization boundaries.
If the initial (misled) decision materializes nothing, the whole query
is one recovery unit and there is nothing to adapt mid-flight -- a
production system would plant an early low-cost checkpoint to buy
itself an observation point, which is exactly the "more dynamic
decisions" engineering the paper defers to future work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Set, Tuple

from .. import obs
from ..chaos.inject import ChaosRun
from ..core.collapse import collapse_plan
from ..core.cost_model import ClusterStats
from ..core.enumeration import find_best_ft_plan
from ..core.plan import Plan
from ..core.pruning import PruningConfig
from ..core.strategies import (
    ConfiguredPlan,
    CostBased,
    FaultToleranceScheme,
    RecoveryMode,
)
from ..stats.mtbf_estimation import MtbfTracker
from .executor import ExecutionResult, SimulatedEngine, TraceExhausted
from .timeline import EventKind, Timeline
from .traces import FailureTrace, extend_trace


@dataclass(frozen=True)
class DriftEnvelope:
    """The band observations may wander in before a re-plan triggers.

    A *tighter* envelope (smaller ratios, fewer required failures, no CI
    gate) triggers on a superset of observation histories -- the
    monotonicity the property suite pins: tightening the envelope never
    decreases the number of re-plans for the same run.

    Parameters
    ----------
    mtbf_ratio:
        Trigger when the observed MTBF point estimate leaves
        ``[assumed / mtbf_ratio, assumed * mtbf_ratio]`` (None disables
        the MTBF trigger).  Must be > 1.
    runtime_ratio:
        Trigger when the smoothed observed/estimated runtime correction
        leaves ``[1 / runtime_ratio, runtime_ratio]`` (None disables the
        runtime trigger).  Must be > 1.
    min_failures:
        Minimum (decay-weighted) failure count before the MTBF estimate
        is trusted at all; below it the prior stands (one failure is
        compatible with almost any rate).
    confidence / use_ci:
        With ``use_ci`` (the default), the MTBF trigger additionally
        requires the chi-square confidence interval at ``confidence`` to
        *exclude* the assumed MTBF -- point-estimate noise from a
        handful of on-model failures then cannot trigger a re-plan.
    """

    mtbf_ratio: Optional[float] = 2.0
    runtime_ratio: Optional[float] = 1.5
    min_failures: int = 2
    confidence: float = 0.95
    use_ci: bool = True

    def __post_init__(self) -> None:
        if self.mtbf_ratio is not None and self.mtbf_ratio <= 1.0:
            raise ValueError("mtbf_ratio must be > 1")
        if self.runtime_ratio is not None and self.runtime_ratio <= 1.0:
            raise ValueError("runtime_ratio must be > 1")
        if self.min_failures < 1:
            raise ValueError("min_failures must be >= 1")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")

    @classmethod
    def never(cls) -> "DriftEnvelope":
        """An envelope that never triggers (static behaviour)."""
        return cls(mtbf_ratio=None, runtime_ratio=None)


@dataclass(frozen=True)
class DriftTrigger:
    """Why a decision point fired: the cause a re-plan is annotated with."""

    kind: str                #: "mtbf-drift" | "runtime-drift" | "boundary"
    cause: str               #: human-readable detail
    observed_mtbf: float     #: tracker point estimate (inf = no failures)
    correction: float        #: smoothed runtime correction at the trigger


class DriftMonitor:
    """Online drift detection: the estimate -> observe half of the loop.

    Feed it each finished group's observed/estimated work ratio
    (:meth:`observe_group`) and the timeline's failure events
    (:meth:`observe_failures`); ask it at each decision point whether the
    observations still fit the statistics the flight plan was optimized
    for (:meth:`decide`).  All state is derived deterministically from
    the fed observations, so two runs over the same trace make identical
    decisions in any process.
    """

    def __init__(
        self,
        stats: ClusterStats,
        envelope: Optional[DriftEnvelope] = None,
        smoothing: float = 0.5,
        half_life: Optional[float] = None,
        track_mtbf: bool = False,
    ) -> None:
        if not 0 < smoothing <= 1:
            raise ValueError("smoothing must be in (0, 1]")
        self.stats = stats
        self.envelope = envelope
        self.smoothing = smoothing
        #: eager mode only: let the tracker's MLE override the prior
        self.track_mtbf = track_mtbf
        self.tracker = MtbfTracker(half_life=half_life)
        self.correction = 1.0

    # -- observation ---------------------------------------------------
    def observe_group(self, estimated: float, observed: float) -> float:
        """Blend one group's observed/estimated work ratio into the
        exponentially smoothed correction factor; returns the new one."""
        if estimated > 0:
            ratio = observed / estimated
            self.correction = (
                (1 - self.smoothing) * self.correction
                + self.smoothing * ratio
            )
        return self.correction

    def observe_failures(self, timeline: Timeline, upto: float,
                         nodes: int) -> int:
        """Ingest the timeline's ``NODE_FAILED`` events up to ``upto``."""
        return self.tracker.ingest(
            (event.time for event in
             timeline.of_kind(EventKind.NODE_FAILED)),
            upto=upto, nodes=nodes,
        )

    # -- decision ------------------------------------------------------
    @property
    def observed_mtbf(self) -> float:
        return self.tracker.mtbf

    def decide(self) -> Optional[DriftTrigger]:
        """The drift check at one decision point.

        ``None`` means every observation is still inside the envelope
        (the decision is suppressed).  Without an envelope the monitor
        is *eager*: every decision point triggers a "boundary" re-plan,
        the pre-drift behaviour the perturbed-estimate experiments use.
        """
        observed = self.tracker.mtbf
        if self.envelope is None:
            return DriftTrigger(
                kind="boundary",
                cause="eager re-plan at group boundary",
                observed_mtbf=observed,
                correction=self.correction,
            )
        envelope = self.envelope
        causes: List[str] = []
        kind = ""
        if envelope.mtbf_ratio is not None and self._mtbf_drifted():
            kind = "mtbf-drift"
            causes.append(
                f"observed MTBF {observed:.0f}s left "
                f"[{self.stats.mtbf / envelope.mtbf_ratio:.0f}, "
                f"{self.stats.mtbf * envelope.mtbf_ratio:.0f}]s"
            )
        if envelope.runtime_ratio is not None:
            ratio = envelope.runtime_ratio
            if not (1.0 / ratio <= self.correction <= ratio):
                kind = kind or "runtime-drift"
                causes.append(
                    f"runtime correction {self.correction:.2f} left "
                    f"[{1.0 / ratio:.2f}, {ratio:.2f}]"
                )
        if not causes:
            return None
        return DriftTrigger(
            kind=kind,
            cause="; ".join(causes),
            observed_mtbf=observed,
            correction=self.correction,
        )

    def _mtbf_drifted(self) -> bool:
        envelope = self.envelope
        assert envelope is not None and envelope.mtbf_ratio is not None
        if self.tracker.failures < envelope.min_failures:
            return False
        observed = self.tracker.mtbf
        assumed = self.stats.mtbf
        inside = (
            assumed / envelope.mtbf_ratio
            <= observed
            <= assumed * envelope.mtbf_ratio
        )
        if inside:
            return False
        if envelope.use_ci and self.tracker.node_time > 0:
            estimate = self.tracker.estimate(
                confidence=envelope.confidence
            )
            if not estimate.excludes(assumed):
                return False
        return True

    def replan_stats(self, trigger: DriftTrigger) -> ClusterStats:
        """The cluster statistics the triggered re-plan searches under.

        The observed MTBF replaces the assumed one only when the MTBF
        itself drifted (or, in eager mode, when ``track_mtbf`` is on and
        the estimate is trustworthy) -- a runtime-only drift keeps the
        failure statistics it was optimized for.
        """
        observed = self.tracker.mtbf
        if trigger.kind == "mtbf-drift" and math.isfinite(observed):
            return self.stats.with_mtbf(observed)
        if (
            self.envelope is None and self.track_mtbf
            and self.tracker.failures >= 2 and math.isfinite(observed)
        ):
            return self.stats.with_mtbf(observed)
        return self.stats


@dataclass(frozen=True)
class Reconfiguration:
    """One adaptive decision taken at a group boundary."""

    time: float                      #: when the group completed
    completed_anchor: int            #: the group that just finished
    correction: float                #: smoothed observed/estimated ratio
    mat_config: Tuple[Tuple[int, bool], ...]  #: flags chosen for the rest
    trigger: str = "boundary"        #: what fired (DriftTrigger.kind)
    cause: str = ""                  #: why it fired (DriftTrigger.cause)
    observed_mtbf: float = float("inf")  #: tracker estimate at the trigger
    stats_mtbf: float = 0.0          #: MTBF the re-plan searched under
    completed_ops: Tuple[int, ...] = ()  #: durable frontier (sunk ops)
    #: full per-operator flags *before* this re-plan -- together with
    #: ``completed_ops``/``correction``/``stats_mtbf`` this is enough to
    #: replay the frontier search (the differential suite re-runs it on
    #: every engine and asserts exact equality)
    frozen_config: Tuple[Tuple[int, bool], ...] = ()


@dataclass(frozen=True)
class AdaptiveResult:
    """Outcome of an adaptive run."""

    result: ExecutionResult
    reconfigurations: Tuple[Reconfiguration, ...]
    final_correction: float
    #: decision points where the envelope fired / stayed quiet
    triggers: int = 0
    suppressed: int = 0
    #: the monitor's final MTBF point estimate (inf = no failures seen)
    observed_mtbf: float = float("inf")

    @property
    def runtime(self) -> float:
        return self.result.runtime

    @property
    def replans(self) -> int:
        """Number of re-plan searches actually executed."""
        return len(self.reconfigurations)


class AdaptiveExecutor:
    """Runs a query with between-group re-optimization.

    Parameters
    ----------
    engine:
        The simulated engine supplying cluster, storage, skew, and any
        executor-level chaos injections (stragglers, flaky writes).
    stats:
        Cluster statistics for the optimizer.
    smoothing:
        Weight of the newest observation in the exponential smoothing of
        the correction factor (1.0 = trust only the latest group).
    pruning:
        Pruning rules for the embedded configuration searches.
    track_mtbf:
        Eager mode only: once the run has seen >= 2 failures, its own
        maximum-likelihood MTBF estimate replaces the configured prior.
    envelope:
        ``None`` re-plans eagerly at every group boundary (the original
        behaviour); a :class:`DriftEnvelope` gates re-planning on
        observed drift -- zero drift means zero re-plans and a run
        bit-identical to the static cost-based scheme.
    half_life:
        Exponential forgetting of the MTBF tracker's evidence (seconds
        of node-time), so diurnal drift is followed instead of averaged
        away; ``None`` keeps all evidence.
    on_replan:
        Hook called after every executed re-plan with
        ``(Reconfiguration, ClusterStats)`` -- the stats the re-plan
        searched under.  Wired by deployments to push refreshed
        statistics outward (e.g.
        :meth:`repro.serve.AdvisoryEngine.push_cluster_stats`).
    """

    def __init__(
        self,
        engine: SimulatedEngine,
        stats: ClusterStats,
        smoothing: float = 0.5,
        pruning: PruningConfig = PruningConfig.all(),
        track_mtbf: bool = False,
        envelope: Optional[DriftEnvelope] = None,
        half_life: Optional[float] = None,
        on_replan: Optional[
            Callable[[Reconfiguration, ClusterStats], None]
        ] = None,
    ) -> None:
        if not 0 < smoothing <= 1:
            raise ValueError("smoothing must be in (0, 1]")
        self.engine = engine
        self.stats = stats
        self.smoothing = smoothing
        self.pruning = pruning
        #: also re-estimate the MTBF online from failures observed during
        #: the run, so a stale cluster statistic is corrected mid-query
        #: just like stale cost estimates are
        self.track_mtbf = track_mtbf
        self.envelope = envelope
        self.half_life = half_life
        self.on_replan = on_replan

    # ------------------------------------------------------------------
    def execute(
        self,
        true_plan: Plan,
        estimated_plan: Optional[Plan] = None,
        trace: Optional[FailureTrace] = None,
        initial_config: Optional[Dict[int, bool]] = None,
    ) -> AdaptiveResult:
        """Run ``true_plan``, deciding from ``estimated_plan``.

        ``estimated_plan`` defaults to the true plan (perfect
        statistics).  Both plans must share operator ids and edges.
        ``initial_config`` short-circuits the initial static decision
        (callers measuring many traces compute it once); it must equal
        what the static cost-based scheme would choose.
        """
        if estimated_plan is None:
            estimated_plan = true_plan
        _check_same_shape(true_plan, estimated_plan)
        if trace is None:
            trace = FailureTrace.empty(self.engine.cluster.nodes)

        # initial static decision from the estimates
        if initial_config is None:
            initial_config = dict(CostBased(pruning=self.pruning).configure(
                estimated_plan, self.stats
            ).plan.mat_config())
        config = dict(initial_config)

        monitor = DriftMonitor(
            self.stats,
            envelope=self.envelope,
            smoothing=self.smoothing,
            half_life=self.half_life,
            track_mtbf=self.track_mtbf,
        )
        chaos_run = ChaosRun.create(self.engine.chaos, trace.seed)
        timeline = Timeline()
        seen_failures: Set[Tuple[int, float]] = set()
        completion: Dict[int, float] = {}
        completed_ops: Set[int] = set()
        reconfigurations: List[Reconfiguration] = []
        triggers = 0
        suppressed = 0
        share_restarts = 0
        clock = 0.0

        while len(completed_ops) < len(true_plan):
            executable = true_plan.with_mat_config(_free_part(
                true_plan, config
            ))
            collapsed = collapse_plan(
                executable, const_pipe=self.stats.const_pipe
            )
            anchor = self._next_ready_group(
                collapsed, completion, completed_ops
            )
            group = collapsed[anchor]
            done, restarts = self.engine.run_group(
                plan=executable,
                collapsed=collapsed,
                anchor=anchor,
                completion=completion,
                trace=trace,
                timeline=timeline,
                seen_failures=seen_failures,
                chaos_run=chaos_run,
            )
            completion[anchor] = done
            completed_ops |= set(group.members)
            share_restarts += restarts
            clock = max(clock, done)

            if len(completed_ops) >= len(true_plan):
                break

            self._update_correction(
                monitor, estimated_plan, executable, group, chaos_run,
            )
            monitor.observe_failures(
                timeline, upto=clock, nodes=self.engine.cluster.nodes
            )
            with obs.span("adaptive.decision", anchor=anchor,
                          time=done) as decision_span:
                trigger = monitor.decide()
                if trigger is None:
                    suppressed += 1
                    obs.add("adaptive.suppressed")
                    decision_span.set(outcome="suppressed")
                    continue
                triggers += 1
                obs.add("adaptive.triggers")
                decision_span.set(outcome=trigger.kind)
                stats = monitor.replan_stats(trigger)
                frozen_config = tuple(sorted(config.items()))
                config = self._reoptimize(
                    estimated_plan, config, completed_ops,
                    monitor.correction, stats,
                )
                obs.add("adaptive.replans")
            reconfiguration = Reconfiguration(
                time=done,
                completed_anchor=anchor,
                correction=monitor.correction,
                mat_config=tuple(sorted(
                    (op_id, flag) for op_id, flag in config.items()
                    if estimated_plan[op_id].free
                    and op_id not in completed_ops
                )),
                trigger=trigger.kind,
                cause=trigger.cause,
                observed_mtbf=trigger.observed_mtbf,
                stats_mtbf=stats.mtbf,
                completed_ops=tuple(sorted(completed_ops)),
                frozen_config=frozen_config,
            )
            reconfigurations.append(reconfiguration)
            if self.on_replan is not None:
                self.on_replan(reconfiguration, stats)

        timeline.record(clock, EventKind.QUERY_COMPLETED)
        result = ExecutionResult(
            runtime=clock,
            aborted=False,
            restarts=0,
            share_restarts=share_restarts,
            failures_hit=len(seen_failures),
            scheme="adaptive cost-based",
            timeline=timeline,
        )
        if clock > trace.horizon:
            raise TraceExhausted(
                f"adaptive run needed {clock:.1f}s but the trace only "
                f"covers {trace.horizon:.1f}s"
            )
        return AdaptiveResult(
            result=result,
            reconfigurations=tuple(reconfigurations),
            final_correction=monitor.correction,
            triggers=triggers,
            suppressed=suppressed,
            observed_mtbf=monitor.observed_mtbf,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _next_ready_group(collapsed, completion, completed_ops) -> int:
        for anchor in collapsed.topological_order():
            if anchor in completion:
                continue
            if all(p in completion for p in collapsed.producers(anchor)):
                return anchor
        raise RuntimeError("no ready group found")  # pragma: no cover

    def _update_correction(
        self, monitor: DriftMonitor, estimated_plan: Plan,
        executable: Plan, group, chaos_run: Optional[ChaosRun],
    ) -> float:
        """Blend the group's observed/estimated work ratio in.

        Observed work is read from the *true* plan's costs (what the
        engine actually charged); estimates from the optimizer's view.
        Skew -- configured or chaos-injected stragglers -- inflates
        observation via the slowest node.
        """
        estimated = sum(
            estimated_plan[m].runtime_cost for m in group.members
        )
        observed = sum(
            executable[m].runtime_cost for m in group.members
        )
        worst_skew = max(
            (self.engine.cluster.skew_of(node) * (
                chaos_run.straggler_factor(node)
                if chaos_run is not None else 1.0
            ) for node in range(self.engine.cluster.nodes)),
            default=1.0,
        )
        observed *= worst_skew
        return monitor.observe_group(estimated, observed)

    def _current_stats(self, failures_seen: int,
                       elapsed: float) -> ClusterStats:
        """Cluster statistics for the next decision (eager mode).

        With ``track_mtbf``, once the run has seen at least two failures
        its own maximum-likelihood estimate (observed node-time over
        failures) replaces the configured prior -- within-query
        adaptation must react in minutes, and a stale weekly prior would
        otherwise take a week of evidence to overturn.  With fewer than
        two failures the prior stands (one failure is compatible with
        almost any rate).
        """
        if not self.track_mtbf or elapsed <= 0 or failures_seen < 2:
            return self.stats
        node_time = elapsed * self.engine.cluster.nodes
        return self.stats.with_mtbf(node_time / failures_seen)

    def _reoptimize(
        self,
        estimated_plan: Plan,
        config: Dict[int, bool],
        completed_ops: Set[int],
        correction: float,
        stats: Optional[ClusterStats] = None,
    ) -> Dict[int, bool]:
        """Re-search the configuration of the remaining free operators."""
        if stats is None:
            stats = self.stats
        remaining = frontier_plan(
            estimated_plan, config, completed_ops, correction
        )
        search = find_best_ft_plan([remaining], stats,
                                   pruning=self.pruning)
        updated = dict(config)
        updated.update(search.plan.mat_config())
        for op_id in completed_ops:
            updated[op_id] = config[op_id]
        return updated


def frontier_plan(
    estimated_plan: Plan,
    config: Dict[int, bool],
    completed_ops: Set[int],
    correction: float,
) -> Plan:
    """The durable-frontier sub-plan a re-plan searches.

    Completed operators are sunk: zero remaining cost, their executed
    materialization flag kept, pinned (``free=False``) so the search
    cannot revisit them.  Remaining operators keep their flags but have
    their estimates rescaled by the runtime ``correction``.  Exposed as
    a module function so the differential suite can replay every
    recorded re-plan's search on every engine from the
    :class:`Reconfiguration` record alone.
    """
    remaining = Plan()
    for op_id, operator in estimated_plan.operators.items():
        if op_id in completed_ops:
            # sunk work: keep the executed flag, zero remaining cost
            remaining.add_operator(replace(
                operator,
                runtime_cost=0.0,
                mat_cost=0.0,
                materialize=config[op_id],
                free=False,
            ))
        else:
            remaining.add_operator(replace(
                operator,
                runtime_cost=operator.runtime_cost * correction,
                mat_cost=operator.mat_cost * correction,
                materialize=config[op_id],
            ))
    for producer, consumer in estimated_plan.edges():
        remaining.add_edge(producer, consumer)
    return remaining


class AdaptiveCostBased(FaultToleranceScheme):
    """The adaptive executor packaged as a campaign-runnable scheme.

    Unlike the static schemes it cannot pre-commit a configuration --
    it decides *while* simulating -- so the campaign's measurement unit
    recognizes it and drives :class:`AdaptiveExecutor` per trace instead
    of the prepare/execute path.  :meth:`configure` still returns the
    *initial* static decision (identical to :class:`CostBased`), which
    is what the scheme flies until the first drift trigger and what the
    campaign reports as the chosen configuration.

    Instances are frozen-by-convention, picklable value objects: the
    pool can ship them to workers and every worker reaches the same
    decisions (``jobs=N`` stays bit-identical to ``jobs=1``).
    """

    name = "adaptive cost-based"

    def __init__(
        self,
        envelope: Optional[DriftEnvelope] = DriftEnvelope(),
        smoothing: float = 0.5,
        half_life: Optional[float] = None,
        pruning: PruningConfig = PruningConfig.all(),
    ) -> None:
        if not 0 < smoothing <= 1:
            raise ValueError("smoothing must be in (0, 1]")
        if half_life is not None and half_life <= 0:
            raise ValueError("half_life must be > 0")
        self.envelope = envelope
        self.smoothing = smoothing
        self.half_life = half_life
        self.pruning = pruning

    def configure(self, plan: Plan,
                  stats: ClusterStats) -> ConfiguredPlan:
        """The initial static decision (what the scheme starts flying)."""
        search = find_best_ft_plan([plan], stats, pruning=self.pruning)
        return ConfiguredPlan(
            plan=search.plan,
            recovery=RecoveryMode.FINE_GRAINED,
            scheme=self.name,
            search=search,
        )

    def executor(self, engine: SimulatedEngine,
                 stats: ClusterStats) -> AdaptiveExecutor:
        """An :class:`AdaptiveExecutor` configured with this scheme's
        knobs (the campaign's per-unit entry point)."""
        return AdaptiveExecutor(
            engine, stats,
            smoothing=self.smoothing,
            pruning=self.pruning,
            envelope=self.envelope,
            half_life=self.half_life,
        )


def run_adaptive_with_extension(
    executor: AdaptiveExecutor,
    true_plan: Plan,
    trace: FailureTrace,
    estimated_plan: Optional[Plan] = None,
    initial_config: Optional[Dict[int, bool]] = None,
    max_extensions: int = 20,
) -> Tuple[AdaptiveResult, FailureTrace]:
    """Adaptive twin of :func:`~repro.engine.coordinator.run_with_extension`.

    Re-runs the whole adaptive execution on a horizon-extended trace when
    it outlives the current one; extension is prefix-stable and the
    executor is deterministic, so the re-run replays the consumed prefix
    identically and simply continues past the old horizon.
    """
    for _ in range(max_extensions):
        try:
            return executor.execute(
                true_plan,
                estimated_plan=estimated_plan,
                trace=trace,
                initial_config=initial_config,
            ), trace
        except TraceExhausted:
            trace = extend_trace(trace, trace.horizon * 4)
    raise TraceExhausted(
        "adaptive run did not finish within the maximum trace extension; "
        "the configuration likely cannot make progress at this MTBF"
    )


def _free_part(plan: Plan, config: Dict[int, bool]) -> Dict[int, bool]:
    """Restrict a full mat-config dict to the plan's free operators."""
    return {op_id: config[op_id] for op_id in plan.free_operators}


def _check_same_shape(true_plan: Plan, estimated_plan: Plan) -> None:
    if set(true_plan.operators) != set(estimated_plan.operators):
        raise ValueError("true and estimated plans have different operators")
    if set(true_plan.edges()) != set(estimated_plan.edges()):
        raise ValueError("true and estimated plans have different edges")
    for op_id in true_plan.operators:
        if true_plan[op_id].free != estimated_plan[op_id].free:
            raise ValueError(
                f"operator {op_id}: free flags differ between plans"
            )
