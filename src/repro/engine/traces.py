"""Failure-trace generation (experimental protocol of Section 5.1).

The paper injects failures from pre-generated *traces*: for each unique
MTBF it draws 10 traces of exponential inter-arrival times
(``lambda = 1/MTBF``) and reuses the *same* trace set across all
fault-tolerance schemes so their overheads are directly comparable.  This
module reproduces that protocol with seeded NumPy RNGs.

A :class:`FailureTrace` holds one strictly increasing failure-time sequence
per node.  Times are in seconds from query start.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .. import obs
from ..chaos.inject import BURST_STREAM, DRIFT_STREAM
from ..chaos.policy import CorrelatedFailures, MtbfDrift


@dataclass(frozen=True)
class FailureTrace:
    """Per-node failure times for one simulated run.

    Attributes
    ----------
    node_failures:
        One strictly increasing tuple of failure timestamps per node.
    mtbf:
        The per-node MTBF the trace was drawn with (informational).
    seed:
        RNG seed used (informational; enables reproduction of a run).
    horizon:
        Time up to which the trace is valid.  The executor raises
        :class:`TraceExhausted` when a simulated run outlives its trace,
        because "no failure recorded after the horizon" would otherwise be
        silently mistaken for "no failure happened".  Traces are
        prefix-stable: regenerating with the same seed and a larger
        horizon extends each node's sequence without changing it.
    correlated / chaos_seed:
        The burst overlay the trace was generated with (``None`` for
        plain traces) and the chaos seed namespacing it; kept so
        :func:`extend_trace` can regenerate the overlay together with
        the base streams.
    injected:
        Number of failure times the burst overlay added within the
        horizon (0 for plain traces); surfaced by the executor as the
        ``chaos.injected.burst_failures`` counter.
    drift:
        The :class:`~repro.chaos.MtbfDrift` spec the base streams were
        thinned with (``None`` for constant-rate traces); kept, like
        ``correlated``, so :func:`extend_trace` regenerates the same
        process.
    """

    node_failures: Tuple[Tuple[float, ...], ...]
    mtbf: float
    seed: Optional[int] = None
    horizon: float = float("inf")
    correlated: Optional[CorrelatedFailures] = None
    chaos_seed: int = 0
    injected: int = 0
    drift: Optional[MtbfDrift] = None

    @property
    def nodes(self) -> int:
        return len(self.node_failures)

    def failures_of(self, node: int) -> Tuple[float, ...]:
        """All failure times of ``node``."""
        return self.node_failures[node]

    def next_failure(self, node: int, after: float) -> Optional[float]:
        """First failure of ``node`` strictly after time ``after``."""
        failures = self.node_failures[node]
        index = bisect.bisect_right(failures, after)
        if index < len(failures):
            return failures[index]
        return None

    def first_failure(self, start: float, end: float) -> Optional[Tuple[float, int]]:
        """Earliest ``(time, node)`` failure in the window ``(start, end]``.

        Used by the coarse-grained restart scheme: any failure anywhere in
        the cluster during a query attempt restarts the query.
        """
        best: Optional[Tuple[float, int]] = None
        for node in range(self.nodes):
            failure = self.next_failure(node, start)
            if failure is not None and failure <= end:
                if best is None or failure < best[0]:
                    best = (failure, node)
        return best

    def count_in(self, start: float, end: float) -> int:
        """Number of failures (over all nodes) in ``(start, end]``."""
        total = 0
        for failures in self.node_failures:
            total += (
                bisect.bisect_right(failures, end)
                - bisect.bisect_right(failures, start)
            )
        return total

    def shifted(self, offset: float) -> "FailureTrace":
        """The trace as seen from time ``offset`` onwards.

        Failures before ``offset`` are dropped and the remaining times
        are re-based to zero; used to run several queries back-to-back
        against one continuous failure timeline (the workload runner).
        The shifted trace loses its seed (it is no longer extendable).
        """
        if offset < 0:
            raise ValueError("offset must be >= 0")
        return FailureTrace(
            node_failures=tuple(
                tuple(f - offset for f in failures if f > offset)
                for failures in self.node_failures
            ),
            mtbf=self.mtbf,
            seed=None,
            horizon=self.horizon - offset,
        )

    @classmethod
    def empty(cls, nodes: int) -> "FailureTrace":
        """A trace with no failures -- the baseline run."""
        return cls(
            node_failures=tuple(() for _ in range(nodes)),
            mtbf=float("inf"),
        )


def _arrival_times(
    draw: Callable[[int], np.ndarray],
    mean_gap: float,
    horizon: float,
) -> Tuple[float, ...]:
    """Cumulative arrival times up to ``horizon`` from an RNG draw.

    Vectorized but *bit-identical* to the scalar loop it replaced
    (``current += float(draw_one())``): batched Generator draws produce
    the same variate stream as repeated single draws, and the running sum
    is formed by seeding ``np.cumsum`` with the previous chunk's offset,
    which performs the exact same left-to-right float64 additions.
    """
    times: List[float] = []
    offset = 0.0
    # expected count plus slack; later chunks only cover the tail
    expected = horizon / mean_gap if np.isfinite(mean_gap) else 0.0
    chunk = int(min(expected + 4.0 * np.sqrt(expected) + 16.0, 1e6))
    while True:
        gaps = draw(chunk)
        cumulative = np.cumsum(np.concatenate(([offset], gaps)))[1:]
        # number of arrivals at or before the horizon (arrivals are
        # strictly increasing, matching the scalar `> horizon` cutoff)
        covered = int(np.searchsorted(cumulative, horizon, side="right"))
        times.extend(float(value) for value in cumulative[:covered])
        if covered < len(cumulative):
            return tuple(times)
        offset = float(cumulative[-1])
        chunk = max(16, chunk // 4)


def _base_node_failures(
    nodes: int,
    mtbf: float,
    horizon: float,
    seed: int,
    shape: Optional[float] = None,
) -> List[Tuple[float, ...]]:
    """Per-node base failure streams (exponential, or Weibull if
    ``shape`` is given) -- the exact streams of :func:`generate_trace` /
    :func:`generate_weibull_trace`, factored out so the correlated
    overlay layers on bit-identical base sequences."""
    node_failures: List[Tuple[float, ...]] = []
    if shape is None:
        for node in range(nodes):
            # one RNG stream per node, keyed by (seed, node): extending
            # the horizon then lengthens each node's sequence without
            # perturbing the prefix or the other nodes' streams.
            rng = np.random.default_rng([seed, node])
            node_failures.append(_arrival_times(
                lambda size: rng.exponential(mtbf, size=size),
                mtbf, horizon,
            ))
        return node_failures
    # scale chosen so the mean inter-arrival equals mtbf:
    # E[X] = scale * Gamma(1 + 1/shape)
    scale = mtbf / math.gamma(1.0 + 1.0 / shape)
    for node in range(nodes):
        rng = np.random.default_rng([seed, node, 7])
        node_failures.append(_arrival_times(
            lambda size: scale * rng.weibull(shape, size=size),
            mtbf, horizon,
        ))
    return node_failures


def generate_trace(
    nodes: int,
    mtbf: float,
    horizon: float,
    seed: int,
) -> FailureTrace:
    """Draw one failure trace with exponential inter-arrival times.

    Parameters
    ----------
    nodes:
        Cluster size; each node gets an independent failure process.
    mtbf:
        Per-node mean time between failures (seconds).
    horizon:
        Generate failures up to this time.  Pick comfortably above the
        expected query runtime under failures; the executor raises if a
        run outlives its trace (see :class:`TraceExhausted`).
    seed:
        RNG seed; the same seed always yields the same trace.
    """
    if nodes < 1:
        raise ValueError("nodes must be >= 1")
    if mtbf <= 0:
        raise ValueError("mtbf must be > 0")
    if horizon <= 0:
        raise ValueError("horizon must be > 0")
    return FailureTrace(
        node_failures=tuple(
            _base_node_failures(nodes, mtbf, horizon, seed)
        ),
        mtbf=mtbf,
        seed=seed,
        horizon=horizon,
    )


def generate_weibull_trace(
    nodes: int,
    mtbf: float,
    horizon: float,
    seed: int,
    shape: float = 0.7,
) -> FailureTrace:
    """Failure trace with Weibull inter-arrival times.

    Field studies (Schroeder & Gibson, FAST'07) find HPC node failures
    better fitted by a Weibull with shape < 1 (decreasing hazard --
    failures cluster) than by the exponential the paper assumes.  The
    trace keeps the same *mean* inter-arrival (``mtbf``) so the cost
    model sees identical statistics; the ablation measures how much the
    exponential assumption costs when reality is bursty.

    ``shape = 1`` reduces to the exponential.
    """
    if nodes < 1:
        raise ValueError("nodes must be >= 1")
    if mtbf <= 0:
        raise ValueError("mtbf must be > 0")
    if horizon <= 0:
        raise ValueError("horizon must be > 0")
    if shape <= 0:
        raise ValueError("shape must be > 0")
    return FailureTrace(
        node_failures=tuple(
            _base_node_failures(nodes, mtbf, horizon, seed, shape=shape)
        ),
        mtbf=mtbf,
        seed=seed,
        horizon=horizon,
    )


def generate_correlated_trace(
    nodes: int,
    mtbf: float,
    horizon: float,
    seed: int,
    spec: CorrelatedFailures,
    chaos_seed: int = 0,
) -> FailureTrace:
    """Base failure streams plus rack-scoped, time-clustered bursts.

    The base per-node streams are *bit-identical* to
    :func:`generate_trace` (or :func:`generate_weibull_trace` when
    ``spec.base_shape`` is set): a spec with ``intensity = 0`` therefore
    reproduces the un-injected trace exactly.  On top of the base, burst
    opportunities arrive from one seeded stream with mean gap
    ``spec.burst_mtbf``; opportunity ``i`` draws its thinning
    acceptance, rack start, and per-node jitters from a fresh stream
    keyed ``(chaos_seed, seed, i)``, so the overlay is

    * **prefix-stable** -- extending the horizon never changes failures
      already inside it (same discipline as the base streams), and
    * **metamorphic** -- raising ``intensity`` or ``rack_size`` with the
      same seeds only ever *adds* failure times, never moves or removes
      one (the monotonicity the property suite pins).
    """
    if nodes < 1:
        raise ValueError("nodes must be >= 1")
    if mtbf <= 0:
        raise ValueError("mtbf must be > 0")
    if horizon <= 0:
        raise ValueError("horizon must be > 0")
    base = _base_node_failures(nodes, mtbf, horizon, seed,
                               shape=spec.base_shape)
    merged, injected = _apply_burst_overlay(
        base, nodes, horizon, seed, spec, chaos_seed
    )
    return FailureTrace(
        node_failures=merged,
        mtbf=mtbf,
        seed=seed,
        horizon=horizon,
        correlated=spec,
        chaos_seed=chaos_seed,
        injected=injected,
    )


def _apply_burst_overlay(
    base: List[Tuple[float, ...]],
    nodes: int,
    horizon: float,
    seed: int,
    spec: CorrelatedFailures,
    chaos_seed: int,
) -> Tuple[Tuple[Tuple[float, ...], ...], int]:
    """Layer ``spec``'s rack bursts on the base streams.

    Factored out of :func:`generate_correlated_trace` so the drifting
    generator composes the same overlay on thinned base streams.
    """
    extra: Dict[int, List[float]] = {}
    injected = 0
    if spec.active:
        rng = np.random.default_rng([chaos_seed, seed, BURST_STREAM])
        opportunities = _arrival_times(
            lambda size: rng.exponential(spec.burst_mtbf, size=size),
            spec.burst_mtbf, horizon,
        )
        width = min(spec.rack_size, nodes)
        for index, burst_time in enumerate(opportunities):
            burst_rng = np.random.default_rng(
                [chaos_seed, seed, BURST_STREAM, index]
            )
            # fixed in-stream draw order (accept, rack, jitters) keeps a
            # burst's shape identical across intensity settings
            if float(burst_rng.random()) >= spec.intensity:
                continue
            rack_start = int(burst_rng.integers(0, nodes))
            if spec.jitter > 0:
                jitters = burst_rng.exponential(spec.jitter, size=width)
            else:
                jitters = np.zeros(width)
            for offset in range(width):
                node = (rack_start + offset) % nodes
                when = burst_time + float(jitters[offset])
                if when <= horizon:
                    extra.setdefault(node, []).append(when)
                    injected += 1
    node_failures: List[Tuple[float, ...]] = []
    for node in range(nodes):
        added = extra.get(node)
        if added:
            node_failures.append(
                tuple(sorted(set(base[node]).union(added)))
            )
        else:
            node_failures.append(base[node])
    return tuple(node_failures), injected


def generate_drifting_trace(
    nodes: int,
    mtbf: float,
    horizon: float,
    seed: int,
    drift: MtbfDrift,
    chaos_seed: int = 0,
    correlated: Optional[CorrelatedFailures] = None,
) -> FailureTrace:
    """Failure trace whose instantaneous rate follows an
    :class:`~repro.chaos.MtbfDrift` spec (stale scale and/or diurnal
    sinusoid), optionally with a rack-burst overlay on top.

    Generation thins a homogeneous Poisson envelope: each node draws a
    base stream at the *peak* rate ``drift.max_factor / mtbf`` (from the
    same ``[seed, node]`` RNG keys as :func:`generate_trace`, with the
    shrunken mean gap), then accepts arrival ``t`` iff its thinning
    uniform satisfies ``u * max_factor < drift.rate_factor(t)``.
    Uniforms come from one sequential stream per node keyed
    ``[chaos_seed, seed, node, DRIFT_STREAM]``, so the construction is

    * **prefix-stable** -- extending the horizon extends both the
      arrival and the uniform streams without perturbing their
      prefixes, and
    * **identity at zero drift** -- with ``scale = 1, amplitude = 0``
      the mean gap is ``mtbf`` and every ``u < 1`` accepts, reproducing
      :func:`generate_trace` bit-for-bit.

    Bursts compose exactly as in :func:`generate_correlated_trace`
    (``correlated.base_shape`` is rejected: thinning needs the
    exponential envelope).
    """
    if nodes < 1:
        raise ValueError("nodes must be >= 1")
    if mtbf <= 0:
        raise ValueError("mtbf must be > 0")
    if horizon <= 0:
        raise ValueError("horizon must be > 0")
    if correlated is not None and correlated.base_shape is not None:
        raise ValueError(
            "MTBF drift thins an exponential envelope and cannot "
            "compose with a Weibull base_shape"
        )
    max_factor = drift.max_factor
    base_gap = mtbf / max_factor
    base: List[Tuple[float, ...]] = []
    for node in range(nodes):
        rng = np.random.default_rng([seed, node])
        arrivals = _arrival_times(
            lambda size: rng.exponential(base_gap, size=size),
            base_gap, horizon,
        )
        accept_rng = np.random.default_rng(
            [chaos_seed, seed, node, DRIFT_STREAM]
        )
        uniforms = accept_rng.random(len(arrivals))
        base.append(tuple(
            t for t, u in zip(arrivals, uniforms)
            if float(u) * max_factor < drift.rate_factor(t)
        ))
    injected = 0
    if correlated is not None:
        merged, injected = _apply_burst_overlay(
            base, nodes, horizon, seed, correlated, chaos_seed
        )
    else:
        merged = tuple(base)
    return FailureTrace(
        node_failures=merged,
        mtbf=mtbf,
        seed=seed,
        horizon=horizon,
        correlated=correlated,
        chaos_seed=chaos_seed,
        injected=injected,
        drift=drift,
    )


def extend_trace(trace: FailureTrace, horizon: float) -> FailureTrace:
    """Regenerate ``trace`` with a larger horizon (same seed, same prefix).

    Correlated traces regenerate their burst overlay along with the base
    streams; both are prefix-stable, so the extension never changes
    failures the caller already replayed.
    """
    if trace.seed is None:
        raise ValueError("cannot extend a trace without a seed")
    if horizon <= trace.horizon:
        return trace
    if trace.drift is not None:
        return generate_drifting_trace(
            trace.nodes, trace.mtbf, horizon, seed=trace.seed,
            drift=trace.drift, chaos_seed=trace.chaos_seed,
            correlated=trace.correlated,
        )
    if trace.correlated is not None:
        return generate_correlated_trace(
            trace.nodes, trace.mtbf, horizon, seed=trace.seed,
            spec=trace.correlated, chaos_seed=trace.chaos_seed,
        )
    return generate_trace(trace.nodes, trace.mtbf, horizon, seed=trace.seed)


def generate_trace_set(
    nodes: int,
    mtbf: float,
    horizon: float,
    count: int = 10,
    base_seed: int = 0,
    correlated: Optional[CorrelatedFailures] = None,
    chaos_seed: int = 0,
    drift: Optional[MtbfDrift] = None,
) -> List[FailureTrace]:
    """The paper's protocol: ``count`` traces per unique MTBF (default 10).

    Seeds are ``base_seed + i`` so trace sets are reproducible and
    disjoint across experiments that pick different ``base_seed`` values.
    ``correlated`` layers a burst overlay on every trace (the chaos
    layer's correlated-failure injection); ``drift`` switches the base
    streams to the thinned time-varying process.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if drift is not None and drift.active:
        return [
            generate_drifting_trace(
                nodes, mtbf, horizon, seed=base_seed + index,
                drift=drift, chaos_seed=chaos_seed, correlated=correlated,
            )
            for index in range(count)
        ]
    if correlated is not None:
        return [
            generate_correlated_trace(
                nodes, mtbf, horizon, seed=base_seed + index,
                spec=correlated, chaos_seed=chaos_seed,
            )
            for index in range(count)
        ]
    return [
        generate_trace(nodes, mtbf, horizon, seed=base_seed + index)
        for index in range(count)
    ]


#: cache key: the full trace protocol, including any chaos overlay
_TraceSetKey = Tuple[int, float, float, int, int,
                     Optional[CorrelatedFailures], int,
                     Optional[MtbfDrift]]

#: process-global trace-set cache (see :func:`cached_trace_set`)
_TRACE_SET_CACHE: Dict[_TraceSetKey, List[FailureTrace]] = {}
_TRACE_SET_CAPACITY = 256
#: cache effectiveness counters (process-local; see trace_cache_stats)
_TRACE_CACHE_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def trace_cache_stats() -> Dict[str, int]:
    """Hit/miss/eviction counts of the process-global trace-set cache.

    Returns a copy; counters are per-process (pool workers each warm and
    count their own cache) and reset with :func:`reset_trace_cache`.
    """
    return dict(_TRACE_CACHE_STATS)


def reset_trace_cache() -> None:
    """Drop all cached trace sets and zero the counters (test hook)."""
    _TRACE_SET_CACHE.clear()
    for key in _TRACE_CACHE_STATS:
        _TRACE_CACHE_STATS[key] = 0


def cached_trace_set(
    nodes: int,
    mtbf: float,
    horizon: float,
    count: int = 10,
    base_seed: int = 0,
    correlated: Optional[CorrelatedFailures] = None,
    chaos_seed: int = 0,
    drift: Optional[MtbfDrift] = None,
) -> List[FailureTrace]:
    """Process-global cached variant of :func:`generate_trace_set`.

    Keyed by ``(nodes, mtbf, horizon, count, base_seed)`` plus the chaos
    overlay ``(correlated, chaos_seed)`` so every experiment cell that
    asks for the same protocol shares one generated set instead of
    regenerating it per call site -- and injected and clean campaigns
    can never collide on a cache entry.  The returned list is
    the *shared* cache entry: callers may replace an entry only with an
    extension of the same trace (same seed, larger horizon) -- extensions
    are prefix-stable, so every sharer still observes identical failure
    times while re-extension work is amortized across callers.

    The cache is capacity-capped (it resets once full rather than growing
    without bound) and per-process, so campaign workers each warm their
    own copy and never share mutable state across processes.  Hits and
    misses are counted (:func:`trace_cache_stats`) and mirrored into the
    observability layer as ``cache.trace_set.hit`` / ``.miss``.
    """
    key: _TraceSetKey = (nodes, mtbf, horizon, count, base_seed,
                         correlated, chaos_seed, drift)
    traces = _TRACE_SET_CACHE.get(key)
    if traces is None:
        if len(_TRACE_SET_CACHE) >= _TRACE_SET_CAPACITY:
            _TRACE_SET_CACHE.clear()
            _TRACE_CACHE_STATS["evictions"] += 1
        traces = generate_trace_set(
            nodes, mtbf, horizon, count=count, base_seed=base_seed,
            correlated=correlated, chaos_seed=chaos_seed, drift=drift,
        )
        _TRACE_SET_CACHE[key] = traces
        _TRACE_CACHE_STATS["misses"] += 1
        obs.add("cache.trace_set.miss")
    else:
        _TRACE_CACHE_STATS["hits"] += 1
        obs.add("cache.trace_set.hit")
    return traces


def empirical_mtbf(trace: FailureTrace) -> Optional[float]:
    """Observed per-node MTBF of a trace (None when it has no failures).

    Estimated from the total failure count over the covered horizon; used
    by tests to validate the generator against its nominal rate.
    """
    total_failures = sum(len(f) for f in trace.node_failures)
    if total_failures == 0:
        return None
    horizon = max(
        (failures[-1] for failures in trace.node_failures if failures),
        default=0.0,
    )
    if horizon <= 0.0:
        return None
    return horizon * trace.nodes / total_failures
