"""Query coordinator / experiment harness over the simulated engine.

The paper's coordinator monitors sub-plan execution, restarts failed
sub-plans, and aborts hopeless queries.  On top of the single-run
semantics implemented by :class:`~repro.engine.executor.SimulatedEngine`,
this module provides the *measurement protocol* of Section 5: run each
scheme over the same set of failure traces, average the runtimes, and
report the overhead relative to the pure baseline runtime (the no-mat
plan with no failures and no extra materializations).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (
    Any, Dict, List, MutableSequence, Optional, Sequence, Tuple, Union,
)

from ..chaos.policy import FaultPolicy
from ..core.cost_model import ClusterStats
from ..core.plan import Plan
from ..core.strategies import (
    ConfiguredPlan,
    FaultToleranceScheme,
    NoMatLineage,
)
from .cluster import Cluster
from .executor import (
    ExecutionResult,
    PreparedExecution,
    SimulatedEngine,
    TraceExhausted,
)
from .traces import FailureTrace, extend_trace


@dataclass(frozen=True)
class SchemeMeasurement:
    """Aggregated runtimes of one scheme over a trace set."""

    scheme: str
    baseline: float                   #: pure runtime, no failures, no mats
    runtimes: "tuple[float, ...]"     #: per-trace achieved runtimes
    aborted_runs: int                 #: runs that hit the restart limit
    materialized_ids: "tuple[int, ...]"  #: intermediates the scheme chose

    @property
    def mean_runtime(self) -> float:
        """Mean runtime over *finished* runs (inf when all aborted)."""
        if not self.runtimes:
            return float("inf")
        return sum(self.runtimes) / len(self.runtimes)

    @property
    def overhead(self) -> float:
        """Overhead fraction: ``mean_runtime / baseline - 1``.

        The paper reports this as a percentage (``overhead * 100``);
        aborted-only measurements report ``inf`` (rendered "Aborted").
        """
        if not self.runtimes:
            return float("inf")
        return self.mean_runtime / self.baseline - 1.0

    @property
    def overhead_percent(self) -> float:
        overhead = self.overhead
        return overhead * 100.0 if math.isfinite(overhead) else float("inf")

    @property
    def all_aborted(self) -> bool:
        return not self.runtimes and self.aborted_runs > 0


# ----------------------------------------------------------------------
# baseline memo: (plan fingerprint, cluster, CONST_pipe) -> runtime
# ----------------------------------------------------------------------
_BASELINE_MEMO: Dict[Any, float] = {}
_BASELINE_CAPACITY = 1024


def pure_baseline_runtime(
    plan: Plan, engine: SimulatedEngine, stats: ClusterStats
) -> float:
    """The paper's baseline: no failures, no extra materializations.

    Implemented as a failure-free run of the no-mat configuration (bound
    always-materialized operators keep their cost -- the engine pays them
    under every scheme).

    Memoized per process, keyed by the plan's structural fingerprint plus
    the engine's cluster and ``CONST_pipe`` -- everything the failure-free
    no-mat runtime depends on (``stats`` does not enter it: the no-mat
    configuration ignores the statistics and no failures are replayed).
    Call sites that measure several schemes for the same (plan, cluster)
    therefore pay for exactly one baseline run.  Capacity-capped like the
    preflight memo: once full it resets rather than growing unboundedly.
    """
    # deferred import: repro.core.enumeration must not import the engine
    from ..core.enumeration import _plan_fingerprint

    # the chaos policy enters the key defensively: a straggler-injecting
    # engine does not produce the pure baseline (campaigns always measure
    # baselines on a clean engine, see _measure_unit)
    key = (
        _plan_fingerprint(plan), engine.cluster, engine.const_pipe,
        getattr(engine, "chaos", None),
    )
    cached = _BASELINE_MEMO.get(key)
    if cached is not None:
        return cached
    configured = NoMatLineage().configure(plan, stats)
    runtime = engine.execute(configured).runtime
    if len(_BASELINE_MEMO) >= _BASELINE_CAPACITY:
        _BASELINE_MEMO.clear()
    _BASELINE_MEMO[key] = runtime
    return runtime


def measure_scheme(
    scheme: FaultToleranceScheme,
    plan: Plan,
    engine: SimulatedEngine,
    stats: ClusterStats,
    traces: Sequence[FailureTrace],
    baseline: Optional[float] = None,
) -> SchemeMeasurement:
    """Run ``scheme`` on ``plan`` once per trace and aggregate runtimes.

    Traces whose horizon proves too short are transparently extended
    (the extension preserves the original prefix, so results are
    identical to having generated a longer trace up front).
    """
    if baseline is None:
        baseline = pure_baseline_runtime(plan, engine, stats)
    configured = scheme.configure(plan, stats)
    prepared = engine.prepare(configured)
    runtimes: List[float] = []
    aborted = 0
    writeback = isinstance(traces, MutableSequence)
    for index, trace in enumerate(traces):
        result, extended = run_with_extension(engine, prepared, trace)
        if writeback and extended is not trace:
            # hand the extended trace back so later schemes (and other
            # sharers of a cached set) don't redo the extension work
            traces[index] = extended
        if result.aborted:
            aborted += 1
        else:
            runtimes.append(result.runtime)
    materialized = tuple(
        op_id for op_id, op in configured.plan.operators.items()
        if op.materialize and plan[op_id].free
    )
    return SchemeMeasurement(
        scheme=scheme.name,
        baseline=baseline,
        runtimes=tuple(runtimes),
        aborted_runs=aborted,
        materialized_ids=materialized,
    )


def run_with_extension(
    engine: SimulatedEngine,
    target: Union[ConfiguredPlan, PreparedExecution],
    trace: FailureTrace,
    max_extensions: int = 20,
) -> Tuple[ExecutionResult, FailureTrace]:
    """Run one trace, extending its horizon when needed; return both.

    Extension regenerates from the same seed, so the failure prefix the
    run already consumed is unchanged -- the result is identical to
    having generated a longer trace up front.  The (possibly extended)
    trace is returned so callers can write it back into a shared trace
    set instead of re-extending on every scheme.

    ``target`` may be a :class:`ConfiguredPlan` (prepared here once) or
    an already-prepared :class:`PreparedExecution`.
    """
    prepared = (
        target if isinstance(target, PreparedExecution)
        else engine.prepare(target)
    )
    for _ in range(max_extensions):
        try:
            return engine.execute_prepared(prepared, trace), trace
        except TraceExhausted:
            trace = extend_trace(trace, trace.horizon * 4)
    raise TraceExhausted(
        "query did not finish within the maximum trace extension; "
        "the configuration likely cannot make progress at this MTBF"
    )


def execute_with_extension(
    engine: SimulatedEngine,
    configured: Union[ConfiguredPlan, PreparedExecution],
    trace: FailureTrace,
    max_extensions: int = 20,
) -> ExecutionResult:
    """:func:`run_with_extension` without the trace (compat wrapper)."""
    result, _ = run_with_extension(engine, configured, trace,
                                   max_extensions=max_extensions)
    return result


#: backwards-compatible private alias
_execute_extending = execute_with_extension


@dataclass(frozen=True)
class ComparisonRow:
    """One (scheme, query) cell of the paper's overhead figures."""

    query: str
    scheme: str
    overhead_percent: float
    aborted: bool
    materialized_ids: "tuple[int, ...]"

    def formatted_overhead(self) -> str:
        if self.aborted:
            return "Aborted"
        return f"{self.overhead_percent:.0f}%"


def compare_schemes(
    schemes: Sequence[FaultToleranceScheme],
    plan: Plan,
    query_name: str,
    cluster: Cluster,
    mtbf: float,
    traces: Optional[Sequence[FailureTrace]] = None,
    trace_count: int = 10,
    base_seed: int = 0,
    const_pipe: float = 1.0,
    preflight_lint: bool = True,
    jobs: int = 1,
    baseline: Optional[float] = None,
    chaos: Optional[FaultPolicy] = None,
) -> List[ComparisonRow]:
    """The full Section 5.2/5.3 measurement for one query and MTBF.

    Generates a shared trace set (unless one is supplied), measures every
    scheme against it, and returns overhead rows in scheme order.  The
    measurement is one single-cell campaign
    (:func:`repro.engine.campaign.run_campaign`): ``jobs > 1`` fans the
    schemes out over worker processes with results guaranteed identical
    to the serial run.

    ``baseline`` short-circuits the pure-baseline measurement when the
    caller already computed it (it is also memoized per process, see
    :func:`pure_baseline_runtime`).

    ``preflight_lint`` statically validates the plan (structure, costs,
    cost-model invariants -- see :mod:`repro.analysis.plan_lint`) before
    any simulation and raises
    :class:`~repro.analysis.diagnostics.LintError` on error-severity
    findings; pass ``False`` to skip the check, e.g. when measuring a
    deliberately-broken plan.

    ``chaos`` applies a :class:`~repro.chaos.FaultPolicy` to the
    measurement (injected traces and executor-level faults); baselines
    stay failure- and chaos-free.  A null policy reproduces the
    un-injected measurement bit-for-bit.
    """
    # deferred import: campaign builds on this module
    from .campaign import CampaignCell, run_campaign

    cell = CampaignCell(
        label=query_name,
        plan=plan,
        mtbf=mtbf,
        schemes=tuple(schemes),
        trace_count=trace_count,
        base_seed=base_seed,
        const_pipe=const_pipe,
        traces=tuple(traces) if traces is not None else None,
        baseline=baseline,
    )
    results = run_campaign(
        [cell], cluster, jobs=jobs, preflight_lint=preflight_lint,
        chaos=chaos,
    )
    return [
        ComparisonRow(
            query=query_name,
            scheme=result.scheme,
            overhead_percent=result.overhead_percent,
            aborted=result.all_aborted,
            materialized_ids=result.materialized_ids,
        )
        for result in results
    ]


def _default_horizon(baseline: float, mtbf: float, cluster: Cluster) -> float:
    """A horizon comfortably beyond any plausible runtime under failures.

    The restart scheme can take up to ``max_restarts`` attempts of the
    full makespan; fine-grained schemes are far below that.  Traces are
    extended on demand anyway, so this only sets the starting size.
    """
    return max(baseline * 20.0, mtbf * cluster.nodes * 2.0, 1000.0)
