"""Storage media for materialized intermediates (Section 2.2).

The paper's cost model assumes intermediates are *not* lost by mid-query
failures -- true when they are written to a separate fault-tolerant medium
(Hadoop's HDFS, the paper's external iSCSI array).  When intermediates are
kept in node-local memory instead, a node failure destroys that node's
partition of every intermediate it holds, and the model becomes optimistic.

We expose both as strategy objects consumed by the simulated executor:

* :class:`FaultTolerantStorage` -- materialized outputs always survive;
  recovering a failed share re-reads its inputs for free.
* :class:`LocalStorage` -- a node failure invalidates that node's partition
  of all locally stored intermediates; before retrying its current share
  the node must first *recompute* its partition of every ancestor group
  (lineage-style), which the executor charges as an extra recovery cost.

This is the paper's "future avenue of work"; we include it so the accuracy
experiment can quantify exactly how optimistic the cost model becomes
(see ``benchmarks/bench_ablation.py``).
"""

from __future__ import annotations

from dataclasses import dataclass


class StorageMedium:
    """Interface: how expensive is recovering a failed group share?"""

    #: human-readable name used in reports
    name: str = "abstract"

    def survives_node_failure(self) -> bool:
        """Do materialized intermediates survive a node failure?"""
        raise NotImplementedError

    def recovery_extra_cost(self, ancestor_cost: float) -> float:
        """Extra per-attempt cost to restore a failed node's inputs.

        ``ancestor_cost`` is the summed per-node duration of all ancestor
        groups of the failed share in the collapsed plan.
        """
        raise NotImplementedError

    def refetch_cost_after_failed_write(self, ancestor_cost: float) -> float:
        """Cost to restore a share's inputs before re-attempting a
        *failed materialization write* (chaos-layer injection).

        The node itself survived -- only its checkpoint write did not --
        so the question is where its inputs live: ancestors materialized
        on a fault-tolerant medium are re-read for free, while
        node-local inputs must be recomputed from lineage, exactly as in
        post-failure recovery.  Media with asymmetric read/recovery
        costs can override this.
        """
        return self.recovery_extra_cost(ancestor_cost)


@dataclass(frozen=True)
class FaultTolerantStorage(StorageMedium):
    """External replicated storage: intermediates always survive.

    ``write_factor`` scales materialization cost relative to the
    estimates (1.0 = estimates are exact); it exists for calibration
    experiments and defaults to exact.
    """

    write_factor: float = 1.0
    name: str = "fault-tolerant"

    def survives_node_failure(self) -> bool:
        return True

    def recovery_extra_cost(self, ancestor_cost: float) -> float:
        return 0.0


@dataclass(frozen=True)
class LocalStorage(StorageMedium):
    """Node-local storage: a failure loses the node's intermediates.

    ``recompute_factor`` scales the lineage-recomputation cost; 1.0 means
    re-running an ancestor costs exactly its original duration.
    """

    recompute_factor: float = 1.0
    name: str = "local"

    def survives_node_failure(self) -> bool:
        return False

    def recovery_extra_cost(self, ancestor_cost: float) -> float:
        return ancestor_cost * self.recompute_factor
