"""Declarative simulation campaigns: parallel, cached, bit-identical.

The Section 5 measurement protocol is a *grid*: every experiment walks
(query x scheme x MTBF x trace set) cells and simulates each cell over
the same shared failure traces.  Before this module each experiment kept
its own serial loop, re-collapsed the plan inside every ``execute()``
call and regenerated failure traces per call site.  A campaign makes the
grid explicit and executes it fast:

* **Declarative cells.**  A :class:`CampaignCell` names one
  (plan, MTBF, CONST_pipe, trace protocol) measurement plus the scheme
  line-up (or pre-configured plans) to measure against the shared trace
  set.  :func:`run_campaign` turns a list of cells into a flat list of
  :class:`CellResult` rows, ordered by (cell, scheme) -- the merge order
  is deterministic and independent of how work was scheduled.
* **Process-pool fan-out.**  ``jobs=N`` stripes the (cell, scheme) units
  over ``N`` worker processes; ``jobs=1`` is a plain serial loop over
  the identical unit function.  Results are guaranteed **bit-identical**
  across job counts: every unit derives its trace set from the same
  ``(nodes, mtbf, horizon, count, base_seed)`` key, horizon extensions
  are prefix-stable, and per-process caches only memoize deterministic
  pure functions.
* **Resilience.**  A unit that raises is reported as an error row (its
  :class:`CellResult` carries the exception in ``error``) instead of
  poisoning the whole campaign; completed rows are never lost.  A worker
  *process* that dies (OOM killer, or an injected
  :class:`~repro.chaos.WorkerCrashes` policy) triggers bounded retries
  of the unfinished chunks with exponential backoff, then graceful
  degradation to in-process serial execution -- no lost cells, no hang,
  and because units are pure the merged results still equal ``jobs=1``.
* **Fault injection.**  ``run_campaign(..., chaos=policy)`` applies a
  :class:`~repro.chaos.FaultPolicy` to every unit: correlated bursts
  enter the shared trace sets, executor-level injections ride on the
  engine, and worker crashes exercise the pool resilience above.
  Baselines stay chaos-free; a null policy is bit-identical to no
  policy.
* **Hot-path caches.**  Each unit reuses one
  :class:`~repro.engine.executor.PreparedExecution` across all of its
  traces (collapse/topology/lineage costs computed once, not per run),
  shares trace sets through :func:`~repro.engine.traces.cached_trace_set`
  and the memoized :func:`~repro.engine.coordinator.pure_baseline_runtime`.

``campaign_map`` exposes the bare deterministic fan-out for experiment
loops that are not trace-driven simulations (e.g. Table 3's perturbation
rankings, the workload runner's per-scheme runs).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import (
    Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar,
)

from .. import obs
from ..chaos.inject import crash_worker_process, worker_crash_decision
from ..chaos.policy import FaultPolicy
from ..core.plan import Plan
from ..core.strategies import (
    ConfiguredPlan,
    FaultToleranceScheme,
    standard_schemes,
)
from .adaptive import AdaptiveCostBased, run_adaptive_with_extension
from .cluster import Cluster
from .coordinator import (
    _default_horizon,
    pure_baseline_runtime,
    run_with_extension,
)
from .executor import SimulatedEngine
from .traces import FailureTrace, cached_trace_set

_T = TypeVar("_T")
_R = TypeVar("_R")

#: the paper's protocol: 10 traces per unique MTBF
DEFAULT_TRACE_COUNT = 10


@dataclass(frozen=True)
class CampaignCell:
    """One (plan, MTBF, trace protocol) measurement of a sweep grid.

    Parameters
    ----------
    label:
        Identifier echoed into every result row (e.g. the query name).
    plan:
        The costed plan to measure.
    mtbf:
        Per-node mean time between failures for the cell's trace set.
    schemes:
        Fault-tolerance schemes to measure against the shared traces;
        empty means the paper's four standard schemes.
    configured:
        Alternative to ``schemes``: measure these already-configured
        plans instead (used by Figure 12's per-configuration sweep).
    trace_count / base_seed:
        The trace protocol -- ``count`` seeded traces ``base_seed + i``.
    const_pipe:
        ``CONST_pipe`` for both the cost model and the simulator.
    horizon:
        Trace horizon; ``None`` derives the default from the baseline
        (traces are extended on demand either way, so this only sets the
        starting size -- measured runtimes are horizon-independent).
    traces:
        Explicit trace set overriding generation entirely.
    baseline:
        Precomputed pure-baseline runtime; ``None`` measures (or recalls
        the memo of) the failure-free no-mat run.
    """

    label: str
    plan: Plan
    mtbf: float
    schemes: Tuple[FaultToleranceScheme, ...] = ()
    configured: Tuple[ConfiguredPlan, ...] = ()
    trace_count: int = DEFAULT_TRACE_COUNT
    base_seed: int = 0
    const_pipe: float = 1.0
    horizon: Optional[float] = None
    traces: Optional[Tuple[FailureTrace, ...]] = None
    baseline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.mtbf <= 0:
            raise ValueError("mtbf must be > 0")
        if self.trace_count < 1:
            raise ValueError("trace_count must be >= 1")
        if self.schemes and self.configured:
            raise ValueError("a cell takes schemes or configured "
                             "plans, not both")

    def targets(self) -> Tuple[Any, ...]:
        """The measurement targets, in reporting order."""
        if self.configured:
            return self.configured
        if self.schemes:
            return self.schemes
        # campaign preflight already linted the plan once up front, so
        # the default cost-based search skips the per-worker re-lint
        return tuple(standard_schemes(preflight_lint=False))


@dataclass(frozen=True)
class CellResult:
    """One (cell, scheme) row of a campaign, in the shape of the paper's
    overhead figures plus the raw per-trace runtimes.

    A unit whose measurement *raised* still yields a row: ``error``
    carries ``"ExcType: message"``, the runtimes are empty and the
    baseline is ``inf`` -- the campaign returns partial results instead
    of losing completed rows to one poisoned cell.
    """

    cell_index: int
    label: str
    scheme: str
    mtbf: float
    const_pipe: float
    baseline: float                       #: pure runtime, no failures
    runtimes: Tuple[float, ...]           #: per-trace finished runtimes
    aborted_runs: int                     #: runs that hit the limit
    materialized_ids: Tuple[int, ...]     #: free ops the target chose
    error: Optional[str] = None           #: unit exception, if it raised
    replans: int = 0                      #: adaptive re-plans (0 static)

    @property
    def mean_runtime(self) -> float:
        """Mean runtime over *finished* runs (inf when all aborted)."""
        if not self.runtimes:
            return float("inf")
        return sum(self.runtimes) / len(self.runtimes)

    @property
    def overhead(self) -> float:
        """Overhead fraction: ``mean_runtime / baseline - 1``."""
        if not self.runtimes:
            return float("inf")
        return self.mean_runtime / self.baseline - 1.0

    @property
    def overhead_percent(self) -> float:
        overhead = self.overhead
        return overhead * 100.0 if math.isfinite(overhead) else float("inf")

    @property
    def all_aborted(self) -> bool:
        return not self.runtimes and self.aborted_runs > 0


def _measure_unit(
    cell: CampaignCell,
    cell_index: int,
    target_index: int,
    cluster: Cluster,
    chaos: Optional[FaultPolicy] = None,
) -> CellResult:
    """Measure one (cell, target) unit -- the campaign's parallel grain.

    Pure given its arguments: every cache it touches (trace sets,
    baselines, prepared plans) memoizes a deterministic function, so a
    unit computes the same row in any process at any time.

    ``chaos`` perturbs the measurement only: correlated bursts enter the
    generated trace set, executor-level injections ride on the engine.
    The baseline (and the scheme configuration, which sees nothing but
    ``stats``) stays chaos-free, so overheads are relative to the same
    denominator as the clean campaign.
    """
    recorder = obs.get_recorder()
    with obs.span("campaign.unit", cell=cell_index, label=cell.label,
                  target=target_index) as unit_span:
        stats = cluster.stats(cell.mtbf, const_pipe=cell.const_pipe)
        # nobody reads the event logs of campaign runs -- mute them
        engine = SimulatedEngine(cluster, const_pipe=cell.const_pipe,
                                 record_events=False, chaos=chaos)
        baseline = cell.baseline
        if baseline is None:
            clean_engine = engine
            if chaos is not None:
                clean_engine = SimulatedEngine(
                    cluster, const_pipe=cell.const_pipe,
                    record_events=False,
                )
            with obs.span("campaign.baseline", cell=cell_index):
                baseline = pure_baseline_runtime(
                    cell.plan, clean_engine, stats
                )
        if cell.traces is not None:
            traces: List[FailureTrace] = list(cell.traces)
        else:
            horizon = cell.horizon
            if horizon is None:
                horizon = _default_horizon(baseline, cell.mtbf, cluster)
            correlated = None
            chaos_seed = 0
            drift = None
            if chaos is not None and chaos.trace_active():
                correlated = chaos.correlated
                chaos_seed = chaos.seed
                drift = chaos.mtbf_drift
            traces = cached_trace_set(
                cluster.nodes, cell.mtbf, horizon,
                count=cell.trace_count, base_seed=cell.base_seed,
                correlated=correlated, chaos_seed=chaos_seed,
                drift=drift,
            )
        target = cell.targets()[target_index]
        if isinstance(target, AdaptiveCostBased):
            # the adaptive scheme decides *while* simulating, so it
            # cannot go through prepare/execute -- drive the adaptive
            # executor per trace instead (same traces, same baseline)
            return _measure_adaptive_unit(
                cell, cell_index, target_index, target, engine, stats,
                traces, baseline, recorder, unit_span,
            )
        if isinstance(target, ConfiguredPlan):
            configured = target
        else:
            with obs.span("campaign.configure", cell=cell_index,
                          target=target_index):
                configured = target.configure(cell.plan, stats)
        unit_span.set(scheme=configured.scheme)
        prepared = engine.prepare(configured)
        runtimes: List[float] = []
        aborted = 0
        failures = 0
        query_restarts = 0
        share_restarts = 0
        for index, trace in enumerate(traces):
            with obs.span("campaign.trace", cell=cell_index,
                          target=target_index, trace=index):
                result, extended = run_with_extension(
                    engine, prepared, trace
                )
            if extended is not trace:
                # write the extension back so the next target on this
                # trace set (and other sharers of the cache entry)
                # reuse it
                traces[index] = extended
            if result.aborted:
                aborted += 1
            else:
                runtimes.append(result.runtime)
            failures += result.failures_hit
            query_restarts += result.restarts
            share_restarts += result.share_restarts
        if recorder is not None:
            # derived from the (bit-identical) results, so these totals
            # are independent of the job count and the merge order
            recorder.add("campaign.units")
            recorder.add("campaign.trace_runs", len(traces))
            recorder.add("sim.failures_injected", failures)
            recorder.add("sim.restarts.query", query_restarts)
            recorder.add("sim.restarts.share", share_restarts)
            recorder.add("sim.aborts", aborted)
        materialized = tuple(
            op_id for op_id, op in configured.plan.operators.items()
            if op.materialize and cell.plan[op_id].free
        )
        return CellResult(
            cell_index=cell_index,
            label=cell.label,
            scheme=configured.scheme,
            mtbf=cell.mtbf,
            const_pipe=cell.const_pipe,
            baseline=baseline,
            runtimes=tuple(runtimes),
            aborted_runs=aborted,
            materialized_ids=materialized,
        )


def _measure_adaptive_unit(
    cell: CampaignCell,
    cell_index: int,
    target_index: int,
    target: "AdaptiveCostBased",
    engine: SimulatedEngine,
    stats: Any,
    traces: List[FailureTrace],
    baseline: float,
    recorder: Optional[obs.Recorder],
    unit_span: Any,
) -> CellResult:
    """The adaptive twin of the static measurement loop.

    The initial static decision is searched once per unit and shared
    across traces (every trace starts from the same estimates); each
    trace then runs the full drift-monitored loop.  All decisions are
    pure functions of (cell, trace), so the row is bit-identical across
    job counts like every other unit.
    """
    with obs.span("campaign.configure", cell=cell_index,
                  target=target_index):
        configured = target.configure(cell.plan, stats)
    unit_span.set(scheme=configured.scheme)
    initial_config = dict(configured.plan.mat_config())
    executor = target.executor(engine, stats)
    runtimes: List[float] = []
    failures = 0
    share_restarts = 0
    replans = 0
    for index, trace in enumerate(traces):
        with obs.span("campaign.trace", cell=cell_index,
                      target=target_index, trace=index):
            outcome, extended = run_adaptive_with_extension(
                executor, cell.plan, trace,
                initial_config=initial_config,
            )
        if extended is not trace:
            traces[index] = extended
        runtimes.append(outcome.runtime)
        failures += outcome.result.failures_hit
        share_restarts += outcome.result.share_restarts
        replans += outcome.replans
    if recorder is not None:
        recorder.add("campaign.units")
        recorder.add("campaign.trace_runs", len(traces))
        recorder.add("sim.failures_injected", failures)
        recorder.add("sim.restarts.share", share_restarts)
    materialized = tuple(
        op_id for op_id, op in configured.plan.operators.items()
        if op.materialize and cell.plan[op_id].free
    )
    return CellResult(
        cell_index=cell_index,
        label=cell.label,
        scheme=configured.scheme,
        mtbf=cell.mtbf,
        const_pipe=cell.const_pipe,
        baseline=baseline,
        runtimes=tuple(runtimes),
        aborted_runs=0,
        materialized_ids=materialized,
        replans=replans,
    )


def _measure_unit_safe(
    cell: CampaignCell,
    cell_index: int,
    target_index: int,
    cluster: Cluster,
    chaos: Optional[FaultPolicy] = None,
) -> CellResult:
    """:func:`_measure_unit`, demoting exceptions to error rows.

    Both the serial and the pooled path go through this wrapper, so a
    poisoned cell produces the *same* error row at every job count
    instead of killing the campaign and losing the completed rows.
    ``baseline = inf`` keeps the row's derived overheads infinite while
    staying comparable across processes (``NaN`` would break the
    ``jobs=N == jobs=1`` equality the campaign guarantees).
    """
    try:
        return _measure_unit(cell, cell_index, target_index, cluster,
                             chaos=chaos)
    except Exception as exc:  # noqa: BLE001 -- reported, not swallowed
        recorder = obs.get_recorder()
        if recorder is not None:
            recorder.add("campaign.unit_errors")
        targets = cell.targets()
        scheme = "?"
        if 0 <= target_index < len(targets):
            target = targets[target_index]
            scheme = getattr(target, "scheme", None) or getattr(
                target, "name", type(target).__name__
            )
        return CellResult(
            cell_index=cell_index,
            label=cell.label,
            scheme=scheme,
            mtbf=cell.mtbf,
            const_pipe=cell.const_pipe,
            baseline=float("inf"),
            runtimes=(),
            aborted_runs=0,
            materialized_ids=(),
            error=f"{type(exc).__name__}: {exc}",
        )


# ----------------------------------------------------------------------
# process-pool plumbing (worker state installed once per worker)
# ----------------------------------------------------------------------
_WORKER_STATE: Dict[str, Any] = {}


def _campaign_init(cells: Sequence[CampaignCell], cluster: Cluster,
                   observe: bool = False,
                   chaos: Optional[FaultPolicy] = None,
                   round_no: int = 0) -> None:
    _WORKER_STATE["cells"] = cells
    _WORKER_STATE["cluster"] = cluster
    _WORKER_STATE["chaos"] = chaos
    _WORKER_STATE["round_no"] = round_no
    #: crash injection only ever fires inside pool workers -- the serial
    #: path and the serial fallback never set this flag
    _WORKER_STATE["in_worker"] = True
    if observe:
        # parent had a recorder on: record in this worker too; snapshots
        # ride back with each chunk result and merge in unit order
        obs.enable()


def _maybe_crash(unit_index: int) -> None:
    """Hard-exit the worker process when the policy says so.

    The kill itself is the chaos layer's
    :func:`~repro.chaos.inject.crash_worker_process` primitive (the only
    sanctioned hard-exit in the tree; see lint rule S003).  The decision
    is keyed by the retry round, so a crashed unit draws fresh dice on
    every retry.
    """
    chaos: Optional[FaultPolicy] = _WORKER_STATE.get("chaos")
    if (
        chaos is None or not chaos.pool_active()
        or not _WORKER_STATE.get("in_worker")
    ):
        return
    assert chaos.worker_crashes is not None
    if worker_crash_decision(
        chaos.seed, chaos.worker_crashes.rate,
        _WORKER_STATE.get("round_no", 0), unit_index,
    ):
        crash_worker_process(17)


def _campaign_chunk(
    chunk: Sequence[Tuple[int, int, int]],
) -> Tuple[List[CellResult], Optional[obs.RecorderSnapshot]]:
    results = []
    for unit_index, cell_index, target_index in chunk:
        _maybe_crash(unit_index)
        results.append(_measure_unit_safe(
            _WORKER_STATE["cells"][cell_index], cell_index, target_index,
            _WORKER_STATE["cluster"], chaos=_WORKER_STATE.get("chaos"),
        ))
    recorder = obs.get_recorder()
    snapshot = recorder.snapshot() if recorder is not None else None
    if recorder is not None:
        # fresh recorder per chunk so recycled workers don't re-ship
        # spans/counters a previous chunk already delivered
        obs.enable()
    return results, snapshot


def _preflight_cells(
    cells: Sequence[CampaignCell], cluster: Cluster
) -> None:
    """Statically validate every distinct (plan, stats) pair exactly once.

    Running the lint up front -- instead of per worker inside the
    cost-based search -- keeps the workers purely computational and
    reports a broken plan before any process is forked.
    """
    # deferred imports: repro.analysis imports repro.core
    from ..analysis.plan_lint import preflight_check
    from ..core.enumeration import _plan_fingerprint

    seen = set()
    for cell in cells:
        stats = cluster.stats(cell.mtbf, const_pipe=cell.const_pipe)
        key = (_plan_fingerprint(cell.plan), stats)
        if key in seen:
            continue
        preflight_check(cell.plan, stats, plan_name=cell.label)
        seen.add(key)


def run_campaign(
    cells: Sequence[CampaignCell],
    cluster: Cluster,
    jobs: int = 1,
    preflight_lint: bool = True,
    chaos: Optional[FaultPolicy] = None,
    max_retries: int = 3,
    retry_backoff: float = 0.05,
) -> List[CellResult]:
    """Execute a sweep grid; results ordered by (cell, target).

    ``jobs=1`` (the default) runs the units serially in the calling
    process; ``jobs=N`` fans them out over ``N`` worker processes.  Both
    paths run the same unit function over the same unit list and merge
    in unit order, so the output is exactly equal either way.

    ``preflight_lint`` statically validates each distinct plan once up
    front (raising :class:`~repro.analysis.diagnostics.LintError` on
    error findings) rather than per worker.

    ``chaos`` applies a :class:`~repro.chaos.FaultPolicy` to every unit
    (and, via :class:`~repro.chaos.WorkerCrashes`, to the pool itself).
    Results stay bit-identical across job counts under any policy.

    Dead worker processes never lose rows: unfinished chunks are retried
    up to ``max_retries`` times on a fresh pool, sleeping
    ``retry_backoff * 2**(round - 1)`` seconds before each retry, and
    whatever still isn't done after the last round runs serially
    in-process (which cannot crash).  A unit that *raises* is reported
    as an error row (:attr:`CellResult.error`) rather than retried --
    exceptions are deterministic, crashes are not.
    """
    cells = list(cells)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    if retry_backoff < 0:
        raise ValueError("retry_backoff must be >= 0")
    if preflight_lint:
        _preflight_cells(cells, cluster)
    units: List[Tuple[int, int, int]] = []
    for cell_index, cell in enumerate(cells):
        for target_index in range(len(cell.targets())):
            units.append((len(units), cell_index, target_index))
    with obs.span("campaign", cells=len(cells), units=len(units),
                  jobs=jobs):
        workers = min(jobs, len(units))
        if workers <= 1:
            return [
                _measure_unit_safe(cells[cell_index], cell_index,
                                   target_index, cluster, chaos=chaos)
                for _, cell_index, target_index in units
            ]
        # Parallel grain: one chunk per *cell* when there are enough
        # cells to keep every worker busy -- a cell's targets share its
        # trace set, and process-local caches only pay off when they run
        # in the same worker.  With fewer cells than workers, fall back
        # to one chunk per unit so a single big cell still fans out.
        if len(cells) >= workers:
            chunks: List[List[Tuple[int, int, int]]] = [[] for _ in cells]
            for unit in units:
                chunks[unit[1]].append(unit)
        else:
            chunks = [[unit] for unit in units]
        return _run_chunks_resilient(
            cells, cluster, chunks, workers, chaos,
            max_retries, retry_backoff,
        )


def _run_chunks_resilient(
    cells: Sequence[CampaignCell],
    cluster: Cluster,
    chunks: Sequence[Sequence[Tuple[int, int, int]]],
    workers: int,
    chaos: Optional[FaultPolicy],
    max_retries: int,
    retry_backoff: float,
) -> List[CellResult]:
    """Pooled chunk execution surviving worker deaths.

    Each round submits the still-unfinished chunks to a fresh
    :class:`~concurrent.futures.ProcessPoolExecutor`; a chunk whose
    future fails (a worker died mid-chunk, breaking the pool) stays
    pending for the next round.  After the retry budget, pending chunks
    degrade gracefully to in-process execution.  Units are pure, so a
    chunk computes identical rows no matter which round -- or which
    process -- finally runs it, and the unit-order merge equals the
    ``jobs=1`` list.
    """
    from concurrent.futures import ProcessPoolExecutor

    recorder = obs.get_recorder()
    ChunkOutcome = Tuple[List[CellResult], Optional[obs.RecorderSnapshot]]
    outcomes: List[Optional[ChunkOutcome]] = [None] * len(chunks)
    pending = list(range(len(chunks)))
    for round_no in range(max_retries + 1):
        if not pending:
            break
        if round_no > 0:
            if recorder is not None:
                recorder.add("campaign.retries", len(pending))
            time.sleep(retry_backoff * (2.0 ** (round_no - 1)))
        executor = ProcessPoolExecutor(
            max_workers=min(workers, len(pending)),
            initializer=_campaign_init,
            initargs=(cells, cluster, recorder is not None, chaos,
                      round_no),
        )
        still_pending: List[int] = []
        try:
            futures = [
                (index, executor.submit(_campaign_chunk, chunks[index]))
                for index in pending
            ]
            for index, future in futures:
                try:
                    outcomes[index] = future.result()
                except Exception:
                    # the worker died under this chunk (or took the
                    # whole pool down): retry it on a fresh pool
                    still_pending.append(index)
        finally:
            executor.shutdown(wait=True)
        pending = still_pending
    if pending:
        # graceful degradation: finish in-process.  The serial path
        # never injects crashes, so this terminates even at crash
        # rate 1.0; counters recorded here land directly in the parent
        # recorder, exactly like the jobs=1 path.
        if recorder is not None:
            recorder.add("campaign.serial_fallbacks", len(pending))
        for index in pending:
            rows = [
                _measure_unit_safe(cells[cell_index], cell_index,
                                   target_index, cluster, chaos=chaos)
                for _, cell_index, target_index in chunks[index]
            ]
            outcomes[index] = (rows, None)
    merged: List[CellResult] = []
    for index, outcome in enumerate(outcomes):
        if outcome is None:  # pragma: no cover - defensive
            raise RuntimeError(f"campaign chunk {index} was never run")
        chunk_results, snapshot = outcome
        if recorder is not None and snapshot is not None:
            # unit-order merge: counter totals equal the jobs=1 run
            # for every counter derived from the (bit-identical)
            # results; only cache.* effectiveness is process-local
            recorder.merge(snapshot, track=f"campaign-worker-{index}")
        merged.extend(chunk_results)
    return merged


def _observed_map_call(
    payload: Tuple[Callable[[_T], _R], _T],
) -> Tuple[_R, Optional[obs.RecorderSnapshot]]:
    """Worker-side wrapper: run one item under a fresh recorder."""
    fn, item = payload
    with obs.recording() as recorder:
        result = fn(item)
        return result, recorder.snapshot()


def campaign_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    jobs: int = 1,
) -> List[_R]:
    """Deterministic ordered fan-out: ``list(map(fn, items))``, optionally
    over a process pool.

    The generic primitive behind :func:`run_campaign`, exposed for
    experiment loops that are not trace-set simulations (perturbation
    rankings, per-scheme workload runs).  ``fn`` must be picklable (a
    module-level function) when ``jobs > 1``; results always merge in
    item order, so job count never changes the output.  When a recorder
    is installed, worker recordings are shipped back per item and merged
    in item order.
    """
    items = list(items)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    workers = min(jobs, len(items))
    if workers <= 1:
        return [fn(item) for item in items]
    import multiprocessing

    recorder = obs.get_recorder()
    pool = multiprocessing.Pool(processes=workers)
    try:
        if recorder is None:
            return pool.map(fn, items)
        with obs.span("campaign.map", items=len(items), jobs=jobs):
            outcomes = pool.map(
                _observed_map_call, [(fn, item) for item in items]
            )
            results: List[_R] = []
            for index, (result, snapshot) in enumerate(outcomes):
                if snapshot is not None:
                    recorder.merge(snapshot, track=f"map-worker-{index}")
                results.append(result)
            return results
    finally:
        pool.close()
        pool.join()
