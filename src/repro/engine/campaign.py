"""Declarative simulation campaigns: parallel, cached, bit-identical.

The Section 5 measurement protocol is a *grid*: every experiment walks
(query x scheme x MTBF x trace set) cells and simulates each cell over
the same shared failure traces.  Before this module each experiment kept
its own serial loop, re-collapsed the plan inside every ``execute()``
call and regenerated failure traces per call site.  A campaign makes the
grid explicit and executes it fast:

* **Declarative cells.**  A :class:`CampaignCell` names one
  (plan, MTBF, CONST_pipe, trace protocol) measurement plus the scheme
  line-up (or pre-configured plans) to measure against the shared trace
  set.  :func:`run_campaign` turns a list of cells into a flat list of
  :class:`CellResult` rows, ordered by (cell, scheme) -- the merge order
  is deterministic and independent of how work was scheduled.
* **Process-pool fan-out.**  ``jobs=N`` stripes the (cell, scheme) units
  over ``N`` worker processes; ``jobs=1`` is a plain serial loop over
  the identical unit function.  Results are guaranteed **bit-identical**
  across job counts: every unit derives its trace set from the same
  ``(nodes, mtbf, horizon, count, base_seed)`` key, horizon extensions
  are prefix-stable, and per-process caches only memoize deterministic
  pure functions.
* **Hot-path caches.**  Each unit reuses one
  :class:`~repro.engine.executor.PreparedExecution` across all of its
  traces (collapse/topology/lineage costs computed once, not per run),
  shares trace sets through :func:`~repro.engine.traces.cached_trace_set`
  and the memoized :func:`~repro.engine.coordinator.pure_baseline_runtime`.

``campaign_map`` exposes the bare deterministic fan-out for experiment
loops that are not trace-driven simulations (e.g. Table 3's perturbation
rankings, the workload runner's per-scheme runs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (
    Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar,
)

from .. import obs
from ..core.plan import Plan
from ..core.strategies import (
    ConfiguredPlan,
    FaultToleranceScheme,
    standard_schemes,
)
from .cluster import Cluster
from .coordinator import (
    _default_horizon,
    pure_baseline_runtime,
    run_with_extension,
)
from .executor import SimulatedEngine
from .traces import FailureTrace, cached_trace_set

_T = TypeVar("_T")
_R = TypeVar("_R")

#: the paper's protocol: 10 traces per unique MTBF
DEFAULT_TRACE_COUNT = 10


@dataclass(frozen=True)
class CampaignCell:
    """One (plan, MTBF, trace protocol) measurement of a sweep grid.

    Parameters
    ----------
    label:
        Identifier echoed into every result row (e.g. the query name).
    plan:
        The costed plan to measure.
    mtbf:
        Per-node mean time between failures for the cell's trace set.
    schemes:
        Fault-tolerance schemes to measure against the shared traces;
        empty means the paper's four standard schemes.
    configured:
        Alternative to ``schemes``: measure these already-configured
        plans instead (used by Figure 12's per-configuration sweep).
    trace_count / base_seed:
        The trace protocol -- ``count`` seeded traces ``base_seed + i``.
    const_pipe:
        ``CONST_pipe`` for both the cost model and the simulator.
    horizon:
        Trace horizon; ``None`` derives the default from the baseline
        (traces are extended on demand either way, so this only sets the
        starting size -- measured runtimes are horizon-independent).
    traces:
        Explicit trace set overriding generation entirely.
    baseline:
        Precomputed pure-baseline runtime; ``None`` measures (or recalls
        the memo of) the failure-free no-mat run.
    """

    label: str
    plan: Plan
    mtbf: float
    schemes: Tuple[FaultToleranceScheme, ...] = ()
    configured: Tuple[ConfiguredPlan, ...] = ()
    trace_count: int = DEFAULT_TRACE_COUNT
    base_seed: int = 0
    const_pipe: float = 1.0
    horizon: Optional[float] = None
    traces: Optional[Tuple[FailureTrace, ...]] = None
    baseline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.mtbf <= 0:
            raise ValueError("mtbf must be > 0")
        if self.trace_count < 1:
            raise ValueError("trace_count must be >= 1")
        if self.schemes and self.configured:
            raise ValueError("a cell takes schemes or configured "
                             "plans, not both")

    def targets(self) -> Tuple[Any, ...]:
        """The measurement targets, in reporting order."""
        if self.configured:
            return self.configured
        if self.schemes:
            return self.schemes
        # campaign preflight already linted the plan once up front, so
        # the default cost-based search skips the per-worker re-lint
        return tuple(standard_schemes(preflight_lint=False))


@dataclass(frozen=True)
class CellResult:
    """One (cell, scheme) row of a campaign, in the shape of the paper's
    overhead figures plus the raw per-trace runtimes."""

    cell_index: int
    label: str
    scheme: str
    mtbf: float
    const_pipe: float
    baseline: float                       #: pure runtime, no failures
    runtimes: Tuple[float, ...]           #: per-trace finished runtimes
    aborted_runs: int                     #: runs that hit the limit
    materialized_ids: Tuple[int, ...]     #: free ops the target chose

    @property
    def mean_runtime(self) -> float:
        """Mean runtime over *finished* runs (inf when all aborted)."""
        if not self.runtimes:
            return float("inf")
        return sum(self.runtimes) / len(self.runtimes)

    @property
    def overhead(self) -> float:
        """Overhead fraction: ``mean_runtime / baseline - 1``."""
        if not self.runtimes:
            return float("inf")
        return self.mean_runtime / self.baseline - 1.0

    @property
    def overhead_percent(self) -> float:
        overhead = self.overhead
        return overhead * 100.0 if math.isfinite(overhead) else float("inf")

    @property
    def all_aborted(self) -> bool:
        return not self.runtimes and self.aborted_runs > 0


def _measure_unit(
    cell: CampaignCell,
    cell_index: int,
    target_index: int,
    cluster: Cluster,
) -> CellResult:
    """Measure one (cell, target) unit -- the campaign's parallel grain.

    Pure given its arguments: every cache it touches (trace sets,
    baselines, prepared plans) memoizes a deterministic function, so a
    unit computes the same row in any process at any time.
    """
    recorder = obs.get_recorder()
    with obs.span("campaign.unit", cell=cell_index, label=cell.label,
                  target=target_index) as unit_span:
        stats = cluster.stats(cell.mtbf, const_pipe=cell.const_pipe)
        # nobody reads the event logs of campaign runs -- mute them
        engine = SimulatedEngine(cluster, const_pipe=cell.const_pipe,
                                 record_events=False)
        baseline = cell.baseline
        if baseline is None:
            with obs.span("campaign.baseline", cell=cell_index):
                baseline = pure_baseline_runtime(cell.plan, engine, stats)
        if cell.traces is not None:
            traces: List[FailureTrace] = list(cell.traces)
        else:
            horizon = cell.horizon
            if horizon is None:
                horizon = _default_horizon(baseline, cell.mtbf, cluster)
            traces = cached_trace_set(
                cluster.nodes, cell.mtbf, horizon,
                count=cell.trace_count, base_seed=cell.base_seed,
            )
        target = cell.targets()[target_index]
        if isinstance(target, ConfiguredPlan):
            configured = target
        else:
            with obs.span("campaign.configure", cell=cell_index,
                          target=target_index):
                configured = target.configure(cell.plan, stats)
        unit_span.set(scheme=configured.scheme)
        prepared = engine.prepare(configured)
        runtimes: List[float] = []
        aborted = 0
        failures = 0
        query_restarts = 0
        share_restarts = 0
        for index, trace in enumerate(traces):
            with obs.span("campaign.trace", cell=cell_index,
                          target=target_index, trace=index):
                result, extended = run_with_extension(
                    engine, prepared, trace
                )
            if extended is not trace:
                # write the extension back so the next target on this
                # trace set (and other sharers of the cache entry)
                # reuse it
                traces[index] = extended
            if result.aborted:
                aborted += 1
            else:
                runtimes.append(result.runtime)
            failures += result.failures_hit
            query_restarts += result.restarts
            share_restarts += result.share_restarts
        if recorder is not None:
            # derived from the (bit-identical) results, so these totals
            # are independent of the job count and the merge order
            recorder.add("campaign.units")
            recorder.add("campaign.trace_runs", len(traces))
            recorder.add("sim.failures_injected", failures)
            recorder.add("sim.restarts.query", query_restarts)
            recorder.add("sim.restarts.share", share_restarts)
            recorder.add("sim.aborts", aborted)
        materialized = tuple(
            op_id for op_id, op in configured.plan.operators.items()
            if op.materialize and cell.plan[op_id].free
        )
        return CellResult(
            cell_index=cell_index,
            label=cell.label,
            scheme=configured.scheme,
            mtbf=cell.mtbf,
            const_pipe=cell.const_pipe,
            baseline=baseline,
            runtimes=tuple(runtimes),
            aborted_runs=aborted,
            materialized_ids=materialized,
        )


# ----------------------------------------------------------------------
# process-pool plumbing (worker state installed once per worker)
# ----------------------------------------------------------------------
_WORKER_STATE: Dict[str, Any] = {}


def _campaign_init(cells: Sequence[CampaignCell], cluster: Cluster,
                   observe: bool = False) -> None:
    _WORKER_STATE["cells"] = cells
    _WORKER_STATE["cluster"] = cluster
    if observe:
        # parent had a recorder on: record in this worker too; snapshots
        # ride back with each chunk result and merge in unit order
        obs.enable()


def _campaign_chunk(
    chunk: Sequence[Tuple[int, int]],
) -> Tuple[List[CellResult], Optional[obs.RecorderSnapshot]]:
    results = [
        _measure_unit(
            _WORKER_STATE["cells"][cell_index], cell_index, target_index,
            _WORKER_STATE["cluster"],
        )
        for cell_index, target_index in chunk
    ]
    recorder = obs.get_recorder()
    snapshot = recorder.snapshot() if recorder is not None else None
    if recorder is not None:
        # fresh recorder per chunk so recycled workers don't re-ship
        # spans/counters a previous chunk already delivered
        obs.enable()
    return results, snapshot


def _preflight_cells(
    cells: Sequence[CampaignCell], cluster: Cluster
) -> None:
    """Statically validate every distinct (plan, stats) pair exactly once.

    Running the lint up front -- instead of per worker inside the
    cost-based search -- keeps the workers purely computational and
    reports a broken plan before any process is forked.
    """
    # deferred imports: repro.analysis imports repro.core
    from ..analysis.plan_lint import preflight_check
    from ..core.enumeration import _plan_fingerprint

    seen = set()
    for cell in cells:
        stats = cluster.stats(cell.mtbf, const_pipe=cell.const_pipe)
        key = (_plan_fingerprint(cell.plan), stats)
        if key in seen:
            continue
        preflight_check(cell.plan, stats, plan_name=cell.label)
        seen.add(key)


def run_campaign(
    cells: Sequence[CampaignCell],
    cluster: Cluster,
    jobs: int = 1,
    preflight_lint: bool = True,
) -> List[CellResult]:
    """Execute a sweep grid; results ordered by (cell, target).

    ``jobs=1`` (the default) runs the units serially in the calling
    process; ``jobs=N`` fans them out over ``N`` worker processes.  Both
    paths run the same unit function over the same unit list and merge
    in unit order, so the output is exactly equal either way.

    ``preflight_lint`` statically validates each distinct plan once up
    front (raising :class:`~repro.analysis.diagnostics.LintError` on
    error findings) rather than per worker.
    """
    cells = list(cells)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if preflight_lint:
        _preflight_cells(cells, cluster)
    units = [
        (cell_index, target_index)
        for cell_index, cell in enumerate(cells)
        for target_index in range(len(cell.targets()))
    ]
    with obs.span("campaign", cells=len(cells), units=len(units),
                  jobs=jobs):
        workers = min(jobs, len(units))
        if workers <= 1:
            return [
                _measure_unit(cells[cell_index], cell_index, target_index,
                              cluster)
                for cell_index, target_index in units
            ]
        # Parallel grain: one chunk per *cell* when there are enough
        # cells to keep every worker busy -- a cell's targets share its
        # trace set, and process-local caches only pay off when they run
        # in the same worker.  With fewer cells than workers, fall back
        # to one chunk per unit so a single big cell still fans out.
        if len(cells) >= workers:
            chunks: List[List[Tuple[int, int]]] = [[] for _ in cells]
            for unit in units:
                chunks[unit[0]].append(unit)
        else:
            chunks = [[unit] for unit in units]
        import multiprocessing

        recorder = obs.get_recorder()
        pool = multiprocessing.Pool(
            processes=workers,
            initializer=_campaign_init,
            initargs=(cells, cluster, recorder is not None),
        )
        try:
            # pool.map preserves chunk order regardless of scheduling,
            # and chunks follow unit order, so the merge equals the
            # serial list
            outcomes = pool.map(_campaign_chunk, chunks)
        finally:
            pool.close()
            pool.join()
        merged: List[CellResult] = []
        for index, (chunk_results, snapshot) in enumerate(outcomes):
            if recorder is not None and snapshot is not None:
                # unit-order merge: counter totals equal the jobs=1 run
                # for every counter derived from the (bit-identical)
                # results; only cache.* effectiveness is process-local
                recorder.merge(snapshot, track=f"campaign-worker-{index}")
            merged.extend(chunk_results)
        return merged


def _observed_map_call(
    payload: Tuple[Callable[[_T], _R], _T],
) -> Tuple[_R, Optional[obs.RecorderSnapshot]]:
    """Worker-side wrapper: run one item under a fresh recorder."""
    fn, item = payload
    with obs.recording() as recorder:
        result = fn(item)
        return result, recorder.snapshot()


def campaign_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    jobs: int = 1,
) -> List[_R]:
    """Deterministic ordered fan-out: ``list(map(fn, items))``, optionally
    over a process pool.

    The generic primitive behind :func:`run_campaign`, exposed for
    experiment loops that are not trace-set simulations (perturbation
    rankings, per-scheme workload runs).  ``fn`` must be picklable (a
    module-level function) when ``jobs > 1``; results always merge in
    item order, so job count never changes the output.  When a recorder
    is installed, worker recordings are shipped back per item and merged
    in item order.
    """
    items = list(items)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    workers = min(jobs, len(items))
    if workers <= 1:
        return [fn(item) for item in items]
    import multiprocessing

    recorder = obs.get_recorder()
    pool = multiprocessing.Pool(processes=workers)
    try:
        if recorder is None:
            return pool.map(fn, items)
        with obs.span("campaign.map", items=len(items), jobs=jobs):
            outcomes = pool.map(
                _observed_map_call, [(fn, item) for item in items]
            )
            results: List[_R] = []
            for index, (result, snapshot) in enumerate(outcomes):
                if snapshot is not None:
                    recorder.merge(snapshot, track=f"map-worker-{index}")
                results.append(result)
            return results
    finally:
        pool.close()
        pool.join()
