"""A quantized-time reference executor for cross-validation.

:class:`~repro.engine.executor.SimulatedEngine` computes share
completions *analytically* (closed-form walks over the failure list).
This module re-implements the same execution semantics in a deliberately
different style -- a small-step clock simulation that advances global
time in fixed quanta, accrues per-share progress, and wipes it when a
failure lands -- so the two implementations check each other: any
disagreement beyond the quantization error is a bug in one of them.
``tests/test_reference_executor.py`` runs the cross-validation on random
plans, clusters and traces.

Supported semantics (matching the analytic engine):

* groups become ready segment-by-segment (external gates, base work at
  time 0);
* a node failure destroys the node's in-flight share attempt; the node
  resumes ``MTTR`` later from the share's start;
* per-node skew factors scale share durations;
* fine-grained recovery only (the coarse scheme's analytic treatment is
  a two-liner over the makespan and needs no second opinion).

The reference is O(runtime / step) and exists for verification, not
speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.collapse import collapse_plan
from ..core.strategies import ConfiguredPlan, RecoveryMode
from .cluster import Cluster
from .traces import FailureTrace


@dataclass
class _Share:
    """Per-(group, node) execution state for the stepper."""

    group: int
    node: int
    #: (gate, duration) per segment, already skew-scaled
    segments: List[Tuple[float, float]]
    segment_index: int = 0
    progress: float = 0.0          #: work done inside the current segment
    blocked_until: float = 0.0     #: repairing until this time
    done_at: Optional[float] = None

    @property
    def finished(self) -> bool:
        return self.done_at is not None


class ReferenceEngine:
    """Quantized-clock executor; see the module docstring.

    ``step`` is the time quantum: progress accrues in whole steps and a
    failure inside a step destroys the whole attempt, so completion
    times agree with the analytic engine to within a few steps per
    failure/segment event.
    """

    def __init__(self, cluster: Cluster, step: float = 0.01,
                 const_pipe: float = 1.0) -> None:
        if step <= 0:
            raise ValueError("step must be > 0")
        if cluster.max_restarts < 1:
            raise ValueError("reference engine needs max_restarts >= 1")
        self.cluster = cluster
        self.step = step
        self.const_pipe = const_pipe

    def execute(
        self,
        configured: ConfiguredPlan,
        trace: Optional[FailureTrace] = None,
        max_time: float = 1e7,
    ) -> float:
        """Run ``configured`` under ``trace`` and return the runtime."""
        if configured.recovery is not RecoveryMode.FINE_GRAINED:
            raise ValueError("the reference covers fine-grained recovery")
        if configured.op_checkpoints:
            raise ValueError("the reference does not model op snapshots")
        if trace is None:
            trace = FailureTrace.empty(self.cluster.nodes)

        plan = configured.plan
        collapsed = collapse_plan(plan, const_pipe=self.const_pipe)
        topo = plan.topological_order()

        shares = self._build_shares(plan, topo, collapsed)
        group_done: Dict[int, float] = {}
        failure_iters = [list(trace.failures_of(n))
                         for n in range(self.cluster.nodes)]
        next_failure_index = [0] * self.cluster.nodes

        clock = 0.0
        while len(group_done) < len(collapsed.groups):
            if clock > max_time:
                raise RuntimeError("reference run exceeded max_time")
            next_clock = clock + self.step

            # failures first: anything in (clock, next_clock] kills the
            # node's in-flight attempts and blocks it for MTTR
            for node in range(self.cluster.nodes):
                index = next_failure_index[node]
                failures = failure_iters[node]
                while index < len(failures) and \
                        failures[index] <= next_clock:
                    failure_time = failures[index]
                    index += 1
                    for share in shares:
                        if share.node != node or share.finished:
                            continue
                        if self._working(share, collapsed, group_done,
                                         failure_time):
                            share.segment_index = 0
                            share.progress = 0.0
                        share.blocked_until = max(
                            share.blocked_until,
                            failure_time + self.cluster.mttr,
                        )
                next_failure_index[node] = index

            # then one quantum of progress per unfinished share
            for share in shares:
                if share.finished or next_clock <= share.blocked_until:
                    continue
                gate, duration = share.segments[share.segment_index]
                if not self._gate_open(share, collapsed, group_done,
                                       clock):
                    continue
                share.progress += self.step
                if share.progress >= duration - 1e-12:
                    share.segment_index += 1
                    share.progress = 0.0
                    if share.segment_index >= len(share.segments):
                        share.done_at = next_clock

            clock = next_clock
            self._complete_groups(shares, collapsed, group_done)

        return max(group_done[sink] for sink in collapsed.sinks)

    # ------------------------------------------------------------------
    def _build_shares(self, plan, topo, collapsed) -> List[_Share]:
        shares: List[_Share] = []
        for anchor in collapsed.topological_order():
            group = collapsed[anchor]
            member_set = set(group.members)
            # external gate sources per member (producer anchors)
            gates: Dict[int, List[int]] = {}
            for op_id in topo:
                if op_id not in member_set:
                    continue
                sources = []
                for producer in plan.producers(op_id):
                    if producer in member_set:
                        sources.extend(gates.get(producer, []))
                    else:
                        sources.append(producer)
                gates[op_id] = sources
            pipe = self.const_pipe if len(group.dominant_path) > 1 else 1.0
            for node in range(self.cluster.nodes):
                skew = self.cluster.skew_of(node)
                segments = []
                for position, op_id in enumerate(group.dominant_path):
                    duration = plan[op_id].runtime_cost * pipe * skew
                    if position == len(group.dominant_path) - 1:
                        duration += group.mat_cost * skew
                    segments.append((op_id, duration))
                shares.append(_Share(
                    group=anchor,
                    node=node,
                    segments=[
                        (0.0, duration) for _, duration in segments
                    ],
                ))
                # store gate producer anchors per segment index
                shares[-1].gate_sources = [  # type: ignore[attr-defined]
                    gates[op_id] for op_id, _ in segments
                ]
        return shares

    def _gate_open(self, share, collapsed, group_done, clock) -> bool:
        sources = share.gate_sources[share.segment_index]
        return all(
            group_done.get(producer, float("inf")) <= clock
            for producer in sources
        )

    def _working(self, share, collapsed, group_done, when) -> bool:
        """Did the share have an attempt in flight at time ``when``?

        An attempt is in flight once any segment has made progress or
        its first segment's gates were open before the failure.
        """
        if share.segment_index > 0 or share.progress > 0:
            return True
        sources = share.gate_sources[0]
        return all(
            group_done.get(producer, float("inf")) <= when
            for producer in sources
        ) and when >= share.blocked_until

    def _complete_groups(self, shares, collapsed, group_done) -> None:
        for anchor in collapsed.groups:
            if anchor in group_done:
                continue
            node_shares = [s for s in shares if s.group == anchor]
            if all(s.finished for s in node_shares):
                group_done[anchor] = max(s.done_at for s in node_shares)
