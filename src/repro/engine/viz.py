"""Terminal visualization: Gantt timelines and line charts.

Everything in this repository reports through a terminal, so the
visualization layer renders with characters: per-node Gantt lanes from a
simulation :class:`~repro.engine.timeline.Timeline` (useful work vs.
attempts destroyed by failures), and simple multi-series line charts for
curves like Figure 1's success probabilities.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .executor import ExecutionResult
from .timeline import node_intervals


def render_gantt(
    result: ExecutionResult,
    nodes: int,
    width: int = 64,
) -> str:
    """ASCII per-node execution lanes.

    ``#`` marks useful work, ``x`` marks attempts a failure destroyed.
    Wasted work stays visible when later useful work overlaps the same
    columns.
    """
    if width < 16:
        raise ValueError("width must be >= 16")
    intervals = node_intervals(result.timeline)
    horizon = max(result.runtime, 1e-9)
    lines: List[str] = []
    for node in range(nodes):
        lane = [" "] * width
        for interval in intervals:
            if interval.node != node:
                continue
            start = int(interval.start / horizon * (width - 1))
            end = max(start + 1,
                      int(interval.end / horizon * (width - 1)))
            mark = "x" if interval.wasted else "#"
            for position in range(start, min(end, width)):
                if lane[position] != "x":
                    lane[position] = mark
        lines.append(f"node {node:>2d} |{''.join(lane)}|")
    lines.append(f"        0{'':{width - 10}s}{horizon:8.0f}s")
    return "\n".join(lines)


def render_line_chart(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    height: int = 12,
    width: int = 60,
    y_label: str = "",
) -> str:
    """Multi-series character line chart.

    Each series gets a distinct glyph; points are nearest-cell plotted
    over the shared axes.  Good enough to eyeball the shapes the
    benchmarks assert numerically.
    """
    if height < 4 or width < 16:
        raise ValueError("chart must be at least 4x16")
    if not series:
        raise ValueError("need at least one series")
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(f"series {name!r} length != x length")

    glyphs = "*o+x@%&~"
    all_values = [v for values in series.values() for v in values]
    y_min, y_max = min(all_values), max(all_values)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(x_values), max(x_values)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        glyph = glyphs[index % len(glyphs)]
        for x, y in zip(x_values, values):
            column = round((x - x_min) / (x_max - x_min) * (width - 1))
            row = round((y_max - y) / (y_max - y_min) * (height - 1))
            grid[row][column] = glyph

    lines: List[str] = []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_max:8.1f} |"
        elif row_index == height - 1:
            label = f"{y_min:8.1f} |"
        else:
            label = f"{'':8s} |"
        lines.append(label + "".join(row))
    lines.append(f"{'':8s} +{'-' * width}")
    lines.append(f"{'':10s}{x_min:<12.1f}{'':{max(width - 24, 0)}s}"
                 f"{x_max:>12.1f}")
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(f"{'':10s}{legend}")
    if y_label:
        lines.insert(0, f"{y_label}")
    return "\n".join(lines)


def render_overhead_bars(
    overheads: Dict[str, float],
    width: int = 40,
    aborted: Optional[Sequence[str]] = None,
) -> str:
    """Horizontal bar chart of per-scheme overhead percentages."""
    aborted = set(aborted or ())
    finite = [v for v in overheads.values() if v >= 0] or [1.0]
    peak = max(max(finite), 1.0)
    lines = []
    for scheme, overhead in overheads.items():
        if scheme in aborted:
            lines.append(f"{scheme:<20s} ABORTED")
            continue
        filled = round(max(overhead, 0.0) / peak * width)
        lines.append(f"{scheme:<20s} {'#' * filled:<{width}s} "
                     f"{overhead:6.1f}%")
    return "\n".join(lines)
