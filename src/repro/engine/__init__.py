"""Simulated parallel data engine with failure injection.

This package replaces the paper's XDB/MySQL testbed: it executes
fault-tolerant plans ``[P, M_P]`` over a simulated shared-nothing cluster,
replaying seeded failure traces, and measures achieved runtimes and
overheads under each fault-tolerance scheme.
"""

from .adaptive import (
    AdaptiveCostBased,
    AdaptiveExecutor,
    AdaptiveResult,
    DriftEnvelope,
    DriftMonitor,
    DriftTrigger,
    Reconfiguration,
    frontier_plan,
    run_adaptive_with_extension,
)
from .campaign import CampaignCell, CellResult, campaign_map, run_campaign
from .cluster import Cluster
from .coordinator import (
    ComparisonRow,
    execute_with_extension,
    run_with_extension,
    SchemeMeasurement,
    compare_schemes,
    measure_scheme,
    pure_baseline_runtime,
)
from .executor import (
    ExecutionResult,
    PreparedExecution,
    SimulatedEngine,
    TraceExhausted,
)
from .reference import ReferenceEngine
from .storage import FaultTolerantStorage, LocalStorage, StorageMedium
from .timeline import (
    Event,
    EventKind,
    MutedTimeline,
    NodeInterval,
    Timeline,
    node_intervals,
)
from .viz import render_gantt, render_line_chart, render_overhead_bars
from .traces import (
    FailureTrace,
    cached_trace_set,
    generate_weibull_trace,
    empirical_mtbf,
    extend_trace,
    generate_trace,
    generate_trace_set,
)

__all__ = [
    "AdaptiveCostBased",
    "AdaptiveExecutor",
    "AdaptiveResult",
    "DriftEnvelope",
    "DriftMonitor",
    "DriftTrigger",
    "frontier_plan",
    "run_adaptive_with_extension",
    "CampaignCell",
    "CellResult",
    "Cluster",
    "Reconfiguration",
    "ComparisonRow",
    "Event",
    "EventKind",
    "ExecutionResult",
    "FailureTrace",
    "FaultTolerantStorage",
    "LocalStorage",
    "MutedTimeline",
    "NodeInterval",
    "ReferenceEngine",
    "SchemeMeasurement",
    "SimulatedEngine",
    "StorageMedium",
    "Timeline",
    "PreparedExecution",
    "TraceExhausted",
    "cached_trace_set",
    "campaign_map",
    "compare_schemes",
    "execute_with_extension",
    "run_with_extension",
    "run_campaign",
    "empirical_mtbf",
    "extend_trace",
    "generate_trace",
    "generate_trace_set",
    "generate_weibull_trace",
    "render_gantt",
    "render_line_chart",
    "render_overhead_bars",
    "measure_scheme",
    "node_intervals",
    "pure_baseline_runtime",
]
