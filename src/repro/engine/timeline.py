"""Structured execution-event log for simulated runs.

The simulated engine (:mod:`repro.engine.executor`) emits one event per
state change -- group started / node share restarted after a failure /
group completed / query restarted / query finished.  The log serves two
purposes: the ``failure_replay`` example renders it as a per-node timeline,
and the integration tests assert recovery semantics against it (e.g. a
fine-grained scheme never emits ``QUERY_RESTARTED``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional


class EventKind(enum.Enum):
    GROUP_STARTED = "group-started"
    NODE_FAILED = "node-failed"
    SHARE_RESTARTED = "share-restarted"     #: node re-runs its share of a group
    GROUP_COMPLETED = "group-completed"
    QUERY_RESTARTED = "query-restarted"     #: coarse-grained full restart
    QUERY_COMPLETED = "query-completed"
    QUERY_ABORTED = "query-aborted"


@dataclass(frozen=True)
class Event:
    """One timeline entry.

    ``group`` is the collapsed operator's anchor id (None for query-level
    events); ``node`` is the node index (None for cluster-level events).
    """

    time: float
    kind: EventKind
    group: Optional[int] = None
    node: Optional[int] = None
    detail: str = ""

    def __str__(self) -> str:
        parts = [f"t={self.time:10.2f}", self.kind.value]
        if self.group is not None:
            parts.append(f"group={self.group}")
        if self.node is not None:
            parts.append(f"node={self.node}")
        if self.detail:
            parts.append(self.detail)
        return "  ".join(parts)


@dataclass
class Timeline:
    """Ordered collection of simulation events."""

    events: List[Event] = field(default_factory=list)

    def record(
        self,
        time: float,
        kind: EventKind,
        group: Optional[int] = None,
        node: Optional[int] = None,
        detail: str = "",
    ) -> None:
        self.events.append(
            Event(time=time, kind=kind, group=group, node=node, detail=detail)
        )

    def sorted(self) -> List[Event]:
        """Events by time (stable for ties)."""
        return sorted(self.events, key=lambda event: event.time)

    def of_kind(self, kind: EventKind) -> List[Event]:
        return [event for event in self.events if event.kind == kind]

    def count(self, kind: EventKind) -> int:
        return sum(1 for event in self.events if event.kind == kind)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.sorted())

    def __len__(self) -> int:
        return len(self.events)

    def pretty(self, limit: Optional[int] = None) -> str:
        """Readable multi-line rendering (used by ``failure_replay``)."""
        events = self.sorted()
        if limit is not None:
            events = events[:limit]
        return "\n".join(str(event) for event in events)


class MutedTimeline(Timeline):
    """A timeline that discards every event.

    Event construction is a visible fraction of simulation time, and
    measurement-only consumers (the campaign engine aggregates runtimes,
    never events) pay it for nothing -- a muted timeline keeps the run's
    control flow and results identical while skipping the log.
    """

    def record(
        self,
        time: float,
        kind: EventKind,
        group: Optional[int] = None,
        node: Optional[int] = None,
        detail: str = "",
    ) -> None:
        pass


@dataclass(frozen=True)
class NodeInterval:
    """A contiguous span of work a node spent on a group share.

    ``wasted`` marks attempts that were destroyed by a failure; the last
    interval of a share has ``wasted=False``.
    """

    node: int
    group: int
    start: float
    end: float
    wasted: bool


def node_intervals(timeline: Timeline) -> List[NodeInterval]:
    """Reconstruct per-node work intervals from a timeline.

    Pairs each ``GROUP_STARTED``/``SHARE_RESTARTED`` with the following
    ``NODE_FAILED`` (wasted attempt) or ``GROUP_COMPLETED`` (final
    attempt) of the same node and group.
    """
    open_attempts = {}  # (node, group) -> start time
    intervals: List[NodeInterval] = []
    for event in timeline.sorted():
        key = (event.node, event.group)
        if event.kind in (EventKind.GROUP_STARTED, EventKind.SHARE_RESTARTED):
            if event.node is not None:
                open_attempts[key] = event.time
        elif event.kind == EventKind.NODE_FAILED:
            for (node, group), start in list(open_attempts.items()):
                if node == event.node:
                    intervals.append(NodeInterval(
                        node=node, group=group, start=start,
                        end=event.time, wasted=True,
                    ))
                    del open_attempts[(node, group)]
        elif event.kind == EventKind.GROUP_COMPLETED and event.node is not None:
            start = open_attempts.pop(key, None)
            if start is not None:
                intervals.append(NodeInterval(
                    node=event.node, group=event.group, start=start,
                    end=event.time, wasted=False,
                ))
    return intervals
