"""Simulated parallel execution of fault-tolerant plans.

This is the reproduction's substitute for the paper's XDB testbed (10-node
MySQL cluster): a deterministic simulator that executes a configured plan
``[P, M_P]`` over a cluster, replaying an injected failure trace, and
reports the achieved wall-clock runtime.

Execution model
---------------
The plan is first collapsed (a collapsed operator is the recovery unit,
exactly as the real engine splits sub-plans at materialization
boundaries).  Each collapsed group runs partition-parallel as one
*sub-plan share* per node.  A share executes the group's dominant path as
a sequence of segments, one per dominant-path operator:

* a segment cannot start before its *gate*: the completion of every
  producer group outside the current group that feeds the segment's
  operator or any of its in-group ancestors (materialization boundaries
  are blocking, Section 2.1).  Operators with only base-table inputs are
  gated at time 0, so scans overlap with upstream sub-plans exactly as in
  a real engine;
* segment durations are ``tr(o)`` (scaled by ``CONST_pipe`` for
  multi-operator pipelines, Equation 1); the anchor's materialization
  cost ``tm`` is appended to the final segment.  Off-dominant-path group
  members contribute their gates but not their durations -- the same
  inter-operator-parallelism approximation the paper's cost model makes;
* a node failure destroys the share's entire in-flight attempt (the
  sub-plan process dies; nothing of it was materialized).  The node
  resumes ``MTTR`` later from the first segment -- materialized inputs
  survive on fault-tolerant storage, so already-passed gates stay
  satisfied.  With node-local intermediate storage the retry additionally
  pays the lineage-recomputation cost of the group's ancestors
  (Section 2.2);
* the group completes when all node shares complete; the query completes
  when all sink groups complete.

Recovery granularity follows the configured scheme: ``FINE_GRAINED``
restarts only failed shares, while ``RESTART_QUERY`` restarts the complete
query on the first failure during an attempt, aborting after
``Cluster.max_restarts`` attempts (the paper's protocol: abort after 100
restarts).

The simulator intentionally honours the same independence assumptions the
cost model makes (no resource contention between concurrently running
groups); what it adds over the model is *actual* failure arrival times,
per-node max effects, full-DAG makespans, and real (not percentile)
attempt counts -- exactly the gap the accuracy experiment (Figure 12)
measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..chaos.inject import ChaosRun
from ..chaos.policy import FaultPolicy
from ..core.collapse import CollapsedOperator, CollapsedPlan, collapse_plan
from ..core.strategies import ConfiguredPlan, RecoveryMode
from .cluster import Cluster
from .timeline import EventKind, MutedTimeline, Timeline
from .traces import FailureTrace


class TraceExhausted(RuntimeError):
    """A simulated run outlived its failure trace's horizon.

    Regenerate the trace with a larger horizon
    (:func:`repro.engine.traces.extend_trace`) and re-run.
    """


class QueryAborted(RuntimeError):
    """Raised internally when the restart limit is exceeded."""


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of one simulated run."""

    runtime: float             #: wall-clock completion time (seconds)
    aborted: bool              #: True when max_restarts was exceeded
    restarts: int              #: coarse-grained full-query restarts
    share_restarts: int        #: fine-grained share restarts
    failures_hit: int          #: failures that destroyed work
    scheme: str                #: name of the fault-tolerance scheme
    timeline: Timeline         #: full event log

    @property
    def finished(self) -> bool:
        return not self.aborted


@dataclass(frozen=True)
class _Segment:
    """One dominant-path step of a group share."""

    op_id: int
    gate: float        #: earliest start (external producers' completion)
    duration: float


class PreparedExecution:
    """Reusable execution state for one :class:`ConfiguredPlan`.

    ``SimulatedEngine.execute`` collapses the plan and rederives its
    topological orders and lineage costs on *every* call, which dominates
    the simulation cost when the same configured plan runs against many
    failure traces (the Section 5 protocol: 10+ traces per scheme).
    ``prepare()`` hoists everything trace-independent out of the loop;
    ``execute_prepared`` then replays any number of traces against it
    with results bit-identical to fresh ``execute()`` calls (the cached
    pieces are deterministic functions of the configured plan alone).
    """

    __slots__ = (
        "configured", "collapsed", "topo_order", "collapsed_order",
        "ancestor_cost", "checkpoints", "_coarse_makespan",
    )

    def __init__(self, engine: "SimulatedEngine",
                 configured: ConfiguredPlan) -> None:
        self.configured = configured
        self.collapsed = collapse_plan(
            configured.plan, const_pipe=engine.const_pipe
        )
        self.topo_order = configured.plan.topological_order()
        self.collapsed_order = self.collapsed.topological_order()
        self.ancestor_cost = engine._ancestor_costs(self.collapsed)
        self.checkpoints = dict(configured.op_checkpoints or {})
        #: failure-free makespan, lazily cached for RESTART_QUERY runs
        self._coarse_makespan: Optional[float] = None


class SimulatedEngine:
    """Executes configured plans against failure traces.

    Parameters
    ----------
    cluster:
        Cluster description (nodes, MTTR, storage medium, abort limit).
    const_pipe:
        ``CONST_pipe`` used when collapsing plans; keep it identical to
        the optimizer's value so estimated and simulated runtimes refer
        to the same collapsed plan.
    record_events:
        ``False`` attaches a muted timeline to every result: runtimes,
        restarts and abort decisions are unchanged, but no events are
        logged.  Measurement loops that never read the event log (the
        simulation campaign) run measurably faster this way.
    chaos:
        Optional :class:`~repro.chaos.FaultPolicy`.  Its executor-level
        injections (straggler nodes, checkpoint-write failures) perturb
        every simulated run; decisions are keyed by the policy seed and
        the replayed trace's seed, so results are independent of which
        process runs the simulation.  ``None`` (and any policy whose
        executor-level rates are zero) leaves every run bit-identical to
        the chaos-free engine.
    """

    def __init__(self, cluster: Cluster, const_pipe: float = 1.0,
                 record_events: bool = True,
                 chaos: Optional[FaultPolicy] = None) -> None:
        self.cluster = cluster
        self.const_pipe = const_pipe
        self.record_events = record_events
        self.chaos = chaos

    def _new_timeline(self) -> Timeline:
        return Timeline() if self.record_events else MutedTimeline()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def execute(
        self,
        configured: ConfiguredPlan,
        trace: Optional[FailureTrace] = None,
    ) -> ExecutionResult:
        """Run ``configured`` under ``trace`` (no failures when ``None``).

        Collapses the plan from scratch on every call; when the same
        configured plan runs against many traces, ``prepare()`` once and
        call :meth:`execute_prepared` instead -- same results, without
        the per-call setup cost.
        """
        return self.execute_prepared(self.prepare(configured), trace)

    def prepare(self, configured: ConfiguredPlan) -> PreparedExecution:
        """Precompute the trace-independent execution state once."""
        return PreparedExecution(self, configured)

    def execute_prepared(
        self,
        prepared: PreparedExecution,
        trace: Optional[FailureTrace] = None,
    ) -> ExecutionResult:
        """Run a prepared plan under ``trace`` (no failures when ``None``).

        Bit-identical to ``execute(prepared.configured, trace)``.
        """
        if trace is None:
            trace = FailureTrace.empty(self.cluster.nodes)
        if trace.nodes != self.cluster.nodes:
            raise ValueError(
                f"trace covers {trace.nodes} nodes, cluster has "
                f"{self.cluster.nodes}"
            )
        chaos_run = ChaosRun.create(self.chaos, trace.seed)
        recorder = obs.get_recorder()
        if recorder is not None and trace.injected > 0:
            recorder.add("chaos.injected.burst_failures", trace.injected)
        if prepared.configured.recovery is RecoveryMode.RESTART_QUERY:
            result = self._run_coarse(prepared, trace, chaos_run=chaos_run)
        else:
            result = self._run_fine(prepared, trace, chaos_run=chaos_run)
        if result.runtime > trace.horizon:
            raise TraceExhausted(
                f"run needed {result.runtime:.1f}s but the trace only "
                f"covers {trace.horizon:.1f}s"
            )
        return result

    def baseline_runtime(self, configured: ConfiguredPlan) -> float:
        """Failure-free runtime of the *configured* plan (including its
        materialization costs).  For the paper's baseline -- the pure
        runtime without extra materializations -- execute the no-mat
        configuration instead (``pure_baseline_runtime``)."""
        return self.execute(configured).runtime

    # ------------------------------------------------------------------
    # fine-grained recovery
    # ------------------------------------------------------------------
    def _run_fine(
        self,
        prepared: PreparedExecution,
        trace: FailureTrace,
        chaos_run: Optional[ChaosRun] = None,
    ) -> ExecutionResult:
        plan = prepared.configured.plan
        collapsed = prepared.collapsed
        topo_order = prepared.topo_order
        checkpoints = prepared.checkpoints
        ancestor_cost = prepared.ancestor_cost
        timeline = self._new_timeline()
        seen_failures: Set[Tuple[int, float]] = set()
        completion: Dict[int, float] = {}
        share_restarts = 0

        for anchor in prepared.collapsed_order:
            done, restarts = self.run_group(
                plan=plan,
                collapsed=collapsed,
                anchor=anchor,
                completion=completion,
                trace=trace,
                timeline=timeline,
                seen_failures=seen_failures,
                checkpoints=checkpoints,
                topo_order=topo_order,
                ancestor_cost=ancestor_cost,
                chaos_run=chaos_run,
            )
            completion[anchor] = done
            share_restarts += restarts

        runtime = max(completion[sink] for sink in collapsed.sinks)
        timeline.record(runtime, EventKind.QUERY_COMPLETED)
        return ExecutionResult(
            runtime=runtime,
            aborted=False,
            restarts=0,
            share_restarts=share_restarts,
            failures_hit=len(seen_failures),
            scheme=prepared.configured.scheme,
            timeline=timeline,
        )

    def _segments(
        self,
        plan,
        topo_order: Sequence[int],
        group: CollapsedOperator,
        completion: Dict[int, float],
    ) -> List[_Segment]:
        """Build the share's segment sequence for one collapsed group.

        Each group member's *external gate* is the latest completion of a
        producer group feeding it; gates propagate to in-group consumers
        so that a dominant-path segment also waits for the external
        inputs of its off-path ancestors.
        """
        member_set = set(group.members)
        egate: Dict[int, float] = {}
        for op_id in topo_order:
            if op_id not in member_set:
                continue
            gate = 0.0
            for producer in plan.producers(op_id):
                if producer in member_set:
                    gate = max(gate, egate[producer])
                else:
                    # external producers are materialized anchors
                    gate = max(gate, completion[producer])
            egate[op_id] = gate

        pipe = self.const_pipe if len(group.dominant_path) > 1 else 1.0
        segments = [
            _Segment(
                op_id=op_id,
                gate=egate[op_id],
                duration=plan[op_id].runtime_cost * pipe,
            )
            for op_id in group.dominant_path
        ]
        if group.mat_cost > 0:
            last = segments[-1]
            segments[-1] = _Segment(
                op_id=last.op_id,
                gate=last.gate,
                duration=last.duration + group.mat_cost,
            )
        return segments

    def run_group(
        self,
        plan,
        collapsed: CollapsedPlan,
        anchor: int,
        completion: Dict[int, float],
        trace: FailureTrace,
        timeline: Timeline,
        seen_failures: Set[Tuple[int, float]],
        checkpoints: Optional[Dict[int, "CheckpointSpec"]] = None,
        topo_order: Optional[Sequence[int]] = None,
        ancestor_cost: Optional[Dict[int, float]] = None,
        chaos_run: Optional[ChaosRun] = None,
    ) -> Tuple[float, int]:
        """Execute one collapsed group's shares on every node.

        Producer completions must already be present in ``completion``.
        Returns ``(group completion time, share restarts)``.  Exposed so
        the adaptive executor (:mod:`repro.engine.adaptive`) can
        re-optimize between groups.
        """
        checkpoints = checkpoints or {}
        if topo_order is None:
            topo_order = plan.topological_order()
        if ancestor_cost is None:
            ancestor_cost = self._ancestor_costs(collapsed)
        group = collapsed[anchor]
        segments = self._segments(plan, topo_order, group, completion)
        timeline.record(
            segments[0].gate, EventKind.GROUP_STARTED, group=anchor
        )
        recovery_extra = self.cluster.storage.recovery_extra_cost(
            ancestor_cost[anchor]
        )
        spec = checkpoints.get(anchor)
        recorder = obs.get_recorder()
        # checkpoint-write injection targets group materializations; the
        # mid-operator snapshot path keeps its own durability semantics
        flaky = (
            chaos_run is not None and chaos_run.has_flaky_writes
            and spec is None and group.mat_cost > 0
        )
        refetch_extra = 0.0
        if flaky:
            refetch_extra = self.cluster.storage.refetch_cost_after_failed_write(
                ancestor_cost[anchor]
            )
        share_restarts = 0
        write_fallbacks = 0
        straggling_shares = 0
        node_done: List[float] = []
        for node in range(self.cluster.nodes):
            scaled = self._scale_for_node(segments, node, chaos_run)
            if chaos_run is not None and chaos_run.straggler_factor(node) > 1.0:
                straggling_shares += 1
            if spec is not None:
                done, restarts = self._share_completion_chunked(
                    node=node,
                    segments=scaled,
                    spec=spec,
                    trace=trace,
                    timeline=timeline,
                    group=anchor,
                    seen_failures=seen_failures,
                )
            else:
                done, restarts, fallbacks = self._share_completion(
                    node=node,
                    segments=scaled,
                    recovery_extra=recovery_extra,
                    trace=trace,
                    timeline=timeline,
                    group=anchor,
                    seen_failures=seen_failures,
                    chaos_run=chaos_run if flaky else None,
                    refetch_extra=refetch_extra,
                )
                write_fallbacks += fallbacks
            timeline.record(
                done, EventKind.GROUP_COMPLETED, group=anchor, node=node
            )
            node_done.append(done)
            share_restarts += restarts
        group_done = max(node_done)
        timeline.record(group_done, EventKind.GROUP_COMPLETED, group=anchor)
        if recorder is not None and spec is None and group.mat_cost > 0:
            # each node's share persists its partition of the group output
            recorder.add("sim.checkpoint.writes", self.cluster.nodes)
        if recorder is not None and write_fallbacks > 0:
            recorder.add("chaos.injected.write_failures", write_fallbacks)
            recorder.add("sim.fallbacks", write_fallbacks)
        if recorder is not None and straggling_shares > 0:
            recorder.add("chaos.injected.straggler_shares", straggling_shares)
        return group_done, share_restarts

    def _scale_for_node(
        self, segments: Sequence[_Segment], node: int,
        chaos_run: Optional[ChaosRun] = None,
    ) -> List[_Segment]:
        """Apply the node's skew (and straggler) factor to its durations."""
        factor = self.cluster.skew_of(node)
        if chaos_run is not None:
            factor *= chaos_run.straggler_factor(node)
        if math.isclose(factor, 1.0, rel_tol=1e-12, abs_tol=0.0):
            return list(segments)
        return [
            _Segment(op_id=segment.op_id, gate=segment.gate,
                     duration=segment.duration * factor)
            for segment in segments
        ]

    def _share_completion_chunked(
        self,
        node: int,
        segments: Sequence[_Segment],
        spec,
        trace: FailureTrace,
        timeline: Timeline,
        group: int,
        seen_failures: Set[Tuple[int, float]],
    ) -> Tuple[float, int]:
        """Share completion with mid-operator checkpointing.

        Each segment's work is cut into chunks per the
        :class:`~repro.core.checkpointing.CheckpointSpec`; every chunk
        but the share's last also writes a state snapshot.  Completed
        chunks are durable on fault-tolerant storage, so a failure only
        re-runs the current chunk (after ``MTTR``).
        """
        recorder = obs.get_recorder()
        current = 0.0
        restarts = 0
        started = False
        flat: List[Tuple[float, float]] = []   # (gate, chunk work)
        for segment in segments:
            for chunk in spec.chunks_for(segment.duration):
                flat.append((segment.gate, chunk))
        for index, (gate, work) in enumerate(flat):
            is_last = index == len(flat) - 1
            duration = work + (0.0 if is_last else spec.snapshot_cost)
            start = max(current, gate)
            if not started:
                timeline.record(start, EventKind.GROUP_STARTED,
                                group=group, node=node)
                started = True
            while True:
                failure = trace.next_failure(node, start)
                finish = start + duration
                if failure is None or failure >= finish:
                    current = finish
                    break
                key = (node, failure)
                if key not in seen_failures:
                    seen_failures.add(key)
                    timeline.record(failure, EventKind.NODE_FAILED,
                                    node=node)
                restarts += 1
                start = max(failure + self.cluster.mttr, gate)
                timeline.record(start, EventKind.SHARE_RESTARTED,
                                group=group, node=node)
        if recorder is not None:
            # every non-final chunk persisted a snapshot; every restart
            # resumed by reading the latest one back
            recorder.add("sim.checkpoint.writes", max(len(flat) - 1, 0))
            recorder.add("sim.checkpoint.reads", restarts)
        return current, restarts

    def _share_completion(
        self,
        node: int,
        segments: Sequence[_Segment],
        recovery_extra: float,
        trace: FailureTrace,
        timeline: Timeline,
        group: int,
        seen_failures: Set[Tuple[int, float]],
        chaos_run: Optional[ChaosRun] = None,
        refetch_extra: float = 0.0,
    ) -> Tuple[float, int, int]:
        """Completion time of one node's share, replaying its failures.

        Each attempt replays the segment sequence; any failure between
        the attempt's first working moment and its finish kills the
        attempt, and the node resumes ``MTTR`` later from segment zero
        (plus the storage medium's recovery surcharge).

        When ``chaos_run`` is given (only for materializing groups under
        an active :class:`~repro.chaos.FlakyWrites` policy), a surviving
        attempt may still fail its materialization write: the node --
        which did *not* fail -- immediately falls back to re-executing
        the share from its last durable ancestors (``refetch_extra``
        restores its inputs; no ``MTTR`` is paid) and retries the write.
        Returns ``(finish, restarts, write fallbacks)``.
        """
        resume = 0.0
        restarts = 0
        write_attempts = 0
        fallbacks = 0
        extra = 0.0
        first_attempt = True
        while True:
            work_start = max(resume, segments[0].gate)
            if first_attempt:
                timeline.record(
                    work_start, EventKind.GROUP_STARTED,
                    group=group, node=node,
                )
                first_attempt = False
            current = work_start + extra
            for segment in segments:
                current = max(current, segment.gate) + segment.duration
            finish = current
            failure = trace.next_failure(node, work_start)
            if failure is None or failure >= finish:
                if chaos_run is not None and chaos_run.write_fails(
                    group, node, write_attempts
                ):
                    write_attempts += 1
                    fallbacks += 1
                    resume = finish
                    extra = refetch_extra
                    timeline.record(
                        finish, EventKind.SHARE_RESTARTED,
                        group=group, node=node,
                    )
                    continue
                return finish, restarts, fallbacks
            key = (node, failure)
            if key not in seen_failures:
                seen_failures.add(key)
                timeline.record(failure, EventKind.NODE_FAILED, node=node)
            resume = failure + self.cluster.mttr
            extra = recovery_extra
            restarts += 1
            timeline.record(
                resume, EventKind.SHARE_RESTARTED, group=group, node=node
            )

    def _ancestor_costs(self, collapsed: CollapsedPlan) -> Dict[int, float]:
        """Summed ``t(c)`` of each group's transitive producers.

        Charged as lineage-recomputation cost under node-local storage.
        A group reachable via several paths is counted once (its output
        only needs recomputing once).
        """
        ancestors: Dict[int, Set[int]] = {}
        for anchor in collapsed.topological_order():
            merged: Set[int] = set()
            for producer in collapsed.producers(anchor):
                merged.add(producer)
                merged |= ancestors[producer]
            ancestors[anchor] = merged
        # sorted(): float addition is order-sensitive and set order is
        # not stable across processes -- the sum must not depend on it
        return {
            anchor: sum(collapsed[a].total_cost
                        for a in sorted(group_ancestors))
            for anchor, group_ancestors in ancestors.items()
        }

    # ------------------------------------------------------------------
    # coarse-grained recovery (restart the whole query)
    # ------------------------------------------------------------------
    def _run_coarse(
        self,
        prepared: PreparedExecution,
        trace: FailureTrace,
        chaos_run: Optional[ChaosRun] = None,
    ) -> ExecutionResult:
        scheme = prepared.configured.scheme
        timeline = self._new_timeline()
        if chaos_run is not None and chaos_run.has_stragglers:
            # stragglers are drawn per (trace, node), so the attempt
            # makespan is trace-dependent and the cache does not apply;
            # write-failure injection is scoped to fine-grained recovery
            # (see docs/robustness.md), hence stragglers_only()
            empty = FailureTrace.empty(self.cluster.nodes)
            makespan = self._run_fine(
                prepared, empty, chaos_run=chaos_run.stragglers_only()
            ).runtime
        else:
            makespan = prepared._coarse_makespan
            if makespan is None:
                # the failure-free attempt makespan is trace-independent;
                # compute it once per prepared plan instead of per run
                empty = FailureTrace.empty(self.cluster.nodes)
                makespan = self._run_fine(prepared, empty).runtime
                prepared._coarse_makespan = makespan
        attempt_start = 0.0
        restarts = 0
        while True:
            finish = attempt_start + makespan
            hit = trace.first_failure(attempt_start, finish)
            if hit is None:
                timeline.record(finish, EventKind.QUERY_COMPLETED)
                return ExecutionResult(
                    runtime=finish,
                    aborted=False,
                    restarts=restarts,
                    share_restarts=0,
                    failures_hit=restarts,
                    scheme=scheme,
                    timeline=timeline,
                )
            failure_time, node = hit
            timeline.record(failure_time, EventKind.NODE_FAILED, node=node)
            restarts += 1
            if restarts > self.cluster.max_restarts:
                timeline.record(failure_time, EventKind.QUERY_ABORTED)
                return ExecutionResult(
                    runtime=failure_time,
                    aborted=True,
                    restarts=restarts,
                    share_restarts=0,
                    failures_hit=restarts,
                    scheme=scheme,
                    timeline=timeline,
                )
            attempt_start = failure_time + self.cluster.mttr
            timeline.record(attempt_start, EventKind.QUERY_RESTARTED)
