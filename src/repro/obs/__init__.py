"""``repro.obs`` -- zero-dependency observability: spans, counters, traces.

The search engines (:mod:`repro.core.enumeration`), the simulation
campaign (:mod:`repro.engine.campaign`) and the experiment harness are
instrumented against this module.  By default **no recorder is
installed** and every helper is a cheap no-op -- one module-global load
and a ``None`` check -- so the instrumented hot paths run at full speed
(measured delta within run-to-run noise; see ``docs/observability.md``).

Typical use::

    from repro import obs

    with obs.recording() as recorder:
        find_best_ft_plan([plan], stats)
        print(obs.summary()["counters"])          # programmatic
        print(obs.export_text(recorder))          # human tree
        obs.write_chrome_trace("out.json")        # open in Perfetto

or from the CLI: ``python -m repro simulate --trace out.json --metrics``.

Process pools: workers each install their own recorder (the pool
plumbing in :mod:`repro.core.enumeration` / :mod:`repro.engine.campaign`
handles this) and ship a :class:`~repro.obs.recorder.RecorderSnapshot`
back; the parent merges them in unit order, so counter totals are
independent of the job count for every counter that is not explicitly
process-local cache state (the ``cache.*`` namespace).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from .export import to_chrome_trace, to_json, to_text
from .recorder import Recorder, RecorderSnapshot, SpanRecord

__all__ = [
    "Recorder", "RecorderSnapshot", "SpanRecord",
    "enabled", "get_recorder", "enable", "disable", "recording",
    "span", "add", "gauge", "summary",
    "export_text", "export_json", "export_chrome_trace",
    "write_chrome_trace",
]

#: the installed recorder; ``None`` keeps every helper a no-op
_RECORDER: Optional[Recorder] = None


class _NullSpan:
    """Reusable no-op context manager handed out while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass

    def set(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


def enabled() -> bool:
    """Is a recorder installed?"""
    return _RECORDER is not None


def get_recorder() -> Optional[Recorder]:
    """The installed recorder, or ``None``.

    Hot loops should fetch this once, keep local tallies, and fold them
    in at the end of the region instead of calling :func:`add` per
    iteration.
    """
    return _RECORDER


def enable(recorder: Optional[Recorder] = None) -> Recorder:
    """Install (and return) a recorder; replaces any existing one."""
    global _RECORDER
    _RECORDER = recorder if recorder is not None else Recorder()
    return _RECORDER


def disable() -> Optional[Recorder]:
    """Uninstall the recorder and return it (``None`` if none was on)."""
    global _RECORDER
    recorder, _RECORDER = _RECORDER, None
    return recorder


@contextmanager
def recording(recorder: Optional[Recorder] = None) -> Iterator[Recorder]:
    """Scoped enable/disable; restores whatever was installed before."""
    global _RECORDER
    previous = _RECORDER
    installed = enable(recorder)
    try:
        yield installed
    finally:
        _RECORDER = previous


def span(name: str, **attrs: Any) -> Any:
    """Open a nested span (no-op context manager while disabled)."""
    recorder = _RECORDER
    if recorder is None:
        return _NULL_SPAN
    return recorder.span(name, **attrs)


def add(name: str, value: int = 1) -> None:
    """Increment a counter (no-op while disabled)."""
    recorder = _RECORDER
    if recorder is not None:
        recorder.add(name, value)


def gauge(name: str, value: float) -> None:
    """Set a gauge (no-op while disabled)."""
    recorder = _RECORDER
    if recorder is not None:
        recorder.gauge(name, value)


def summary() -> Dict[str, Any]:
    """Counters / gauges / per-span-name timing aggregates.

    Empty dict-of-empties when disabled, so callers can always index it.
    """
    recorder = _RECORDER
    if recorder is None:
        return {"counters": {}, "gauges": {}, "spans": {}}
    return recorder.summary()


# ----------------------------------------------------------------------
# export conveniences (accept an explicit recorder or use the installed)
# ----------------------------------------------------------------------
def _resolve(recorder: Optional[Recorder]) -> Recorder:
    target = recorder if recorder is not None else _RECORDER
    if target is None:
        raise RuntimeError(
            "no recorder: pass one explicitly or call obs.enable() first"
        )
    return target


def export_text(recorder: Optional[Recorder] = None) -> str:
    return to_text(_resolve(recorder))


def export_json(recorder: Optional[Recorder] = None) -> str:
    return to_json(_resolve(recorder))


def export_chrome_trace(recorder: Optional[Recorder] = None) -> str:
    return to_chrome_trace(_resolve(recorder))


def write_chrome_trace(path: str,
                       recorder: Optional[Recorder] = None) -> None:
    """Write a Perfetto-loadable Chrome trace file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_chrome_trace(_resolve(recorder)))
