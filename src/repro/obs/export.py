"""Exporters: human text tree, JSON, and Chrome ``trace_event`` format.

The Chrome format (``{"traceEvents": [...]}`` with complete ``"X"``
events) loads directly in Perfetto (https://ui.perfetto.dev) and in
``chrome://tracing``; see ``docs/observability.md`` for the how-to.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .recorder import Recorder


def to_json(recorder: Recorder, indent: Optional[int] = 2) -> str:
    """Full dump: spans (flat, parent-linked), counters, gauges."""
    payload = {
        "format": "repro-obs/1",
        "spans": [
            {
                "id": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "start_s": span.start,
                "end_s": span.end,
                "track": span.track,
                "attrs": span.attrs,
            }
            for span in recorder.spans
        ],
        "counters": dict(sorted(recorder.counters.items())),
        "gauges": dict(sorted(recorder.gauges.items())),
    }
    return json.dumps(payload, indent=indent, sort_keys=False)


def to_text(recorder: Recorder, max_depth: Optional[int] = None) -> str:
    """Human-readable tree of spans plus the counter/gauge tables."""
    lines: List[str] = []

    def walk(parent: Optional[int], depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        for span in recorder.children_of(parent):
            attrs = ""
            if span.attrs:
                attrs = "  " + " ".join(
                    f"{key}={value}" for key, value in span.attrs.items()
                )
            lines.append(
                f"{'  ' * depth}{span.name:<28s} "
                f"{span.duration * 1e3:10.3f} ms{attrs}"
            )
            walk(span.span_id, depth + 1)

    walk(None, 0)
    if recorder.counters:
        lines.append("")
        lines.append("counters:")
        width = max(len(name) for name in recorder.counters)
        for name, value in sorted(recorder.counters.items()):
            lines.append(f"  {name:<{width}s}  {value}")
    if recorder.gauges:
        lines.append("")
        lines.append("gauges:")
        width = max(len(name) for name in recorder.gauges)
        for name, value in sorted(recorder.gauges.items()):
            lines.append(f"  {name:<{width}s}  {value:g}")
    return "\n".join(lines)


def _track_ids(recorder: Recorder) -> Dict[str, int]:
    tracks: Dict[str, int] = {}
    for span in recorder.spans:
        if span.track not in tracks:
            tracks[span.track] = len(tracks)
    return tracks or {"main": 0}


def to_chrome_trace(recorder: Recorder) -> str:
    """Chrome ``trace_event`` JSON (Perfetto-loadable).

    Every span becomes a complete (``"ph": "X"``) event; timestamps are
    microseconds since the recorder epoch.  Tracks map to thread ids
    (with ``thread_name`` metadata), counters are emitted as one final
    ``"C"`` event per counter so their end-of-run totals show up as
    counter tracks, and gauges ride along in the metadata event's args.
    """
    tracks = _track_ids(recorder)
    end_ts = max(
        (span.end if span.end is not None else span.start
         for span in recorder.spans),
        default=0.0,
    )
    events: List[Dict[str, Any]] = []
    for track, tid in tracks.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": track},
        })
    for span in recorder.spans:
        end = span.end if span.end is not None else span.start
        events.append({
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "ph": "X",
            "pid": 1,
            "tid": tracks.get(span.track, 0),
            "ts": span.start * 1e6,
            "dur": max(end - span.start, 0.0) * 1e6,
            "args": _jsonable(span.attrs),
        })
    for name, value in sorted(recorder.counters.items()):
        events.append({
            "name": name, "cat": "counters", "ph": "C", "pid": 1,
            "ts": end_ts * 1e6, "args": {"value": value},
        })
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "format": "repro-obs/1",
            "gauges": dict(sorted(recorder.gauges.items())),
        },
    }
    return json.dumps(payload)


def _jsonable(attrs: Dict[str, Any]) -> Dict[str, Any]:
    safe: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            safe[key] = value
        else:
            safe[key] = repr(value)
    return safe
