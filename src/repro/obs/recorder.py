"""The :class:`Recorder`: nested spans, counters and gauges.

A recorder is a plain in-process event sink.  Instrumented code never
talks to it directly -- it goes through the module-level helpers in
:mod:`repro.obs` (``span`` / ``add`` / ``gauge``), which collapse to
no-ops when no recorder is installed, so the disabled mode costs one
global load and a ``None`` check per call site.

Design points:

* **Spans** form a tree.  ``span()`` is a context manager; entering
  assigns the next monotonic id and links the span to the innermost open
  span, exiting stamps the end time.  Times are ``perf_counter`` seconds
  relative to the recorder's creation, so snapshots from different
  processes can be laid side by side without clock translation.
* **Counters** are monotonically increasing sums, **gauges** are
  last-write-wins values.  Both are plain string-keyed dicts; dotted
  names (``search.configs_enumerated``) group related metrics.
* **Snapshots** (:class:`RecorderSnapshot`) are picklable value objects.
  Process-pool workers record into their own recorder and ship a
  snapshot back; :meth:`Recorder.merge` folds it into the parent --
  counters and gauges by key, spans re-parented under the currently open
  span with ids remapped past the parent's counter.  Merging in unit
  order makes counter totals independent of how work was scheduled
  (``jobs=4`` merges to the same totals as ``jobs=1`` for every counter
  that does not measure process-local cache state; see
  ``docs/observability.md``).
* **Thread safety.**  All mutation (span open/close, counters, gauges,
  merge, snapshot) is guarded by one internal lock, so concurrent
  request threads -- the advisory service (:mod:`repro.serve`) runs many
  at once against the single installed recorder -- never corrupt state
  and never lose counter increments.  Span *nesting* is still a single
  recorder-wide stack: spans opened by different threads interleave on
  it, so concurrent span trees are best-effort (durations stay correct,
  parentage may cross threads).  The engines' hot loops are unaffected:
  they keep local tallies and fold them in once per region.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


@dataclass
class SpanRecord:
    """One completed (or still open) span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float                     #: seconds since the recorder epoch
    end: Optional[float] = None      #: None while the span is open
    attrs: Dict[str, Any] = field(default_factory=dict)
    track: str = "main"              #: one timeline row per track

    @property
    def duration(self) -> float:
        """Wall duration (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start


@dataclass(frozen=True)
class RecorderSnapshot:
    """Picklable copy of a recorder's state (for cross-process merge)."""

    spans: Tuple[SpanRecord, ...]
    counters: Tuple[Tuple[str, int], ...]
    gauges: Tuple[Tuple[str, float], ...]


class _SpanHandle:
    """Context manager returned by :meth:`Recorder.span`."""

    __slots__ = ("_recorder", "_record")

    def __init__(self, recorder: "Recorder", record: SpanRecord) -> None:
        self._recorder = recorder
        self._record = record

    @property
    def record(self) -> SpanRecord:
        return self._record

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span after entry."""
        self._record.attrs.update(attrs)

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._recorder._close_span(self._record)


#: counter namespaces measuring process-local state (cache hit/miss
#: tallies, pool retry plumbing): their totals legitimately depend on
#: how work was scheduled, so determinism comparisons must skip them.
PROCESS_LOCAL_COUNTER_PREFIXES: Tuple[str, ...] = (
    "cache.",
    # collapse mechanics: how an engine *maintains* group state (full
    # rebuilds, incremental flips, functional probes) is an
    # implementation detail that differs by engine and shard layout
    "search.collapse.",
    # advisory-service traffic accounting: hits/sheds/coalescing depend
    # on request arrival order and cache temperature, never on results
    "serve.",
)
PROCESS_LOCAL_COUNTERS: Tuple[str, ...] = (
    "campaign.retries", "campaign.serial_fallbacks",
    # sharded-search orchestration: shard count tracks the requested
    # topology, and Rule-3 / prefilter effectiveness depends on bound
    # propagation timing between workers (the *result* stays
    # bit-identical; only how much work each shard skipped varies)
    "search.shards", "search.retries", "search.serial_fallbacks",
    "search.bound_updates", "search.bound_skips",
    "search.batch_prefiltered",
    "search.paths_estimated", "search.rule3.plan_cutoffs",
    # adaptive shard sizing reacts to observed shard *durations*
    "search.shard_resize",
)


class Recorder:
    """In-process span/counter/gauge sink.

    Mutation is lock-guarded (see the module docstring): the search and
    simulation engines are single-threaded per process, but the advisory
    service serves concurrent request threads against one recorder, and
    its counters must not lose increments under contention.
    """

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self.spans: List[SpanRecord] = []
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self._stack: List[SpanRecord] = []
        self._next_id = 0
        self._lock = threading.Lock()

    def __getstate__(self) -> Dict[str, Any]:
        """Drop the (unpicklable) lock; cross-process transport stays
        snapshot-based, this only keeps ad-hoc pickling from crashing."""
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Seconds since the recorder was created."""
        return time.perf_counter() - self._epoch

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """Open a nested span; use as a context manager."""
        with self._lock:
            parent = self._stack[-1].span_id if self._stack else None
            record = SpanRecord(
                span_id=self._next_id,
                parent_id=parent,
                name=name,
                start=self.now(),
                attrs=dict(attrs),
            )
            self._next_id += 1
            self.spans.append(record)
            self._stack.append(record)
        return _SpanHandle(self, record)

    def _close_span(self, record: SpanRecord) -> None:
        with self._lock:
            record.end = self.now()
            # exits normally unwind innermost-first; tolerate skipped
            # levels (and, under threads, spans another thread opened)
            if record in self._stack:
                while self._stack:
                    top = self._stack.pop()
                    if top is record:
                        break
                    if top.end is None:
                        top.end = record.end

    def add(self, name: str, value: int = 1) -> None:
        """Increment a counter."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge (last write wins)."""
        with self._lock:
            self.gauges[name] = value

    # ------------------------------------------------------------------
    # snapshots and merging
    # ------------------------------------------------------------------
    def snapshot(self) -> RecorderSnapshot:
        """A picklable copy of the current state (open spans included)."""
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> RecorderSnapshot:
        spans = tuple(
            SpanRecord(
                span_id=s.span_id, parent_id=s.parent_id, name=s.name,
                start=s.start, end=s.end, attrs=dict(s.attrs),
                track=s.track,
            )
            for s in self.spans
        )
        return RecorderSnapshot(
            spans=spans,
            counters=tuple(sorted(self.counters.items())),
            gauges=tuple(sorted(self.gauges.items())),
        )

    def merge(self, snapshot: RecorderSnapshot,
              track: Optional[str] = None) -> None:
        """Fold a child recording (e.g. from a pool worker) into this one.

        Counters sum, gauges overwrite, spans are appended with their ids
        remapped past this recorder's id counter.  Root spans of the
        snapshot are re-parented under the currently open span, so a
        worker's recording nests under the fan-out span that spawned it.
        ``track`` relabels the merged spans' timeline row (e.g.
        ``"worker-3"``); child span times stay relative to the *child's*
        epoch -- cross-process clock skew is not corrected, which is fine
        for the worker-lifetime profiles this is used for.
        """
        with self._lock:
            for name, value in snapshot.counters:
                self.counters[name] = self.counters.get(name, 0) + value
            for name, value in snapshot.gauges:
                self.gauges[name] = value
            if not snapshot.spans:
                return
            offset = self._next_id
            anchor = self._stack[-1].span_id if self._stack else None
            for span in snapshot.spans:
                parent = (
                    span.parent_id + offset
                    if span.parent_id is not None else anchor
                )
                self.spans.append(SpanRecord(
                    span_id=span.span_id + offset,
                    parent_id=parent,
                    name=span.name,
                    start=span.start,
                    end=span.end if span.end is not None else span.start,
                    attrs=dict(span.attrs),
                    track=track if track is not None else span.track,
                ))
            self._next_id = offset + 1 + max(
                span.span_id for span in snapshot.spans
            )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def deterministic_counters(self) -> Dict[str, int]:
        """Counters whose totals must be identical across job counts.

        The replay sanitizer (:mod:`repro.analysis.sanitizer`) compares
        this view between a ``jobs=1`` and a ``jobs=N`` run; the
        process-local namespaces (:data:`PROCESS_LOCAL_COUNTER_PREFIXES`
        / :data:`PROCESS_LOCAL_COUNTERS`) are excluded because their
        totals measure scheduling, not results.
        """
        with self._lock:
            items = sorted(self.counters.items())
        return {
            name: value
            for name, value in items
            if name not in PROCESS_LOCAL_COUNTERS
            and not name.startswith(PROCESS_LOCAL_COUNTER_PREFIXES)
        }

    def children_of(self, span_id: Optional[int]) -> Iterator[SpanRecord]:
        for span in self.spans:
            if span.parent_id == span_id:
                yield span

    def summary(self) -> Dict[str, Any]:
        """Aggregate view: counters, gauges and per-span-name timings."""
        with self._lock:
            spans = list(self.spans)
        by_name: Dict[str, Dict[str, float]] = {}
        for span in spans:
            entry = by_name.setdefault(
                span.name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
            )
            entry["count"] += 1
            entry["total_s"] += span.duration
            entry["max_s"] = max(entry["max_s"], span.duration)
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "spans": {
                name: {
                    "count": int(entry["count"]),
                    "total_s": entry["total_s"],
                    "max_s": entry["max_s"],
                }
                for name, entry in sorted(by_name.items())
            },
        }
