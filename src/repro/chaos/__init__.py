"""``repro.chaos`` -- fault injection for the simulator and campaign pool.

Composable :class:`FaultPolicy` objects plug into the existing
trace/executor/campaign stack:

* correlated rack-scoped failure bursts layered on the exponential or
  Weibull trace generators (:class:`CorrelatedFailures`, realized by
  :func:`repro.engine.traces.generate_correlated_trace`);
* checkpoint-write failures with fallback to re-execution from the last
  durable ancestor (:class:`FlakyWrites`);
* straggler nodes (:class:`Stragglers`);
* campaign worker crashes with bounded retry + exponential backoff and
  graceful degradation to serial execution (:class:`WorkerCrashes`);
* drifting failure rates -- stale statistics and diurnal health cycles
  (:class:`MtbfDrift`, realized by
  :func:`repro.engine.traces.generate_drifting_trace`) -- the regimes
  the adaptive re-planner (:mod:`repro.engine.adaptive`) reacts to.

Every injection decision is derived from seeds and structural keys, so
``jobs=N`` campaigns stay bit-identical to ``jobs=1`` under any policy,
and zero-rate policies reproduce un-injected results exactly.  The
guarantees are pinned by ``tests/test_chaos.py`` and
``tests/test_property_chaos.py``; the catalog and semantics are
documented in ``docs/robustness.md``.
"""

from .inject import ChaosRun, worker_crash_decision
from .policy import (
    PRESET_NAMES,
    CorrelatedFailures,
    FaultPolicy,
    FlakyWrites,
    MtbfDrift,
    Stragglers,
    WorkerCrashes,
    preset,
)

__all__ = [
    "ChaosRun",
    "CorrelatedFailures",
    "FaultPolicy",
    "FlakyWrites",
    "MtbfDrift",
    "PRESET_NAMES",
    "Stragglers",
    "WorkerCrashes",
    "preset",
    "worker_crash_decision",
]
