"""Declarative fault-injection policies (the chaos layer's vocabulary).

The paper's cost model assumes independent, exponentially distributed
per-node failures and perfectly reliable materialization writes.  Its own
robustness analysis (Section 5.4, Table 3) asks what happens when the
*statistics* are wrong; this package asks what happens when the
*assumptions* are wrong: correlated rack-scoped failure bursts (Su &
Zhou), checkpoint writes that themselves fail (Wang & Aiken's
write-ahead-lineage setting), straggler nodes, and crashing campaign
workers.

A :class:`FaultPolicy` is a frozen, picklable bundle of the individual
injections.  Every random decision a policy implies is derived from the
policy ``seed`` plus stable structural keys (trace seed, operator id,
node, attempt index) -- never from process-local state -- so campaign
results under injection stay bit-identical across job counts, and a
zero-rate policy is bit-identical to running without the chaos layer at
all.

This module is dependency-free on purpose: :mod:`repro.engine` imports
it, not the other way around.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class CorrelatedFailures:
    """Rack-scoped, time-clustered failure bursts layered on a base trace.

    Burst *opportunities* arrive as a seeded Poisson process with mean
    gap ``burst_mtbf`` (cluster-wide, not per node); each opportunity
    fires with probability ``intensity`` (thinning).  A firing burst
    picks a rack -- ``rack_size`` consecutive nodes starting at a
    uniformly drawn node -- and fails every rack member at the burst
    time plus an exponential per-node jitter with mean ``jitter``
    (time-clustered, not simultaneous).

    Thinning makes the layer *metamorphic*: for a fixed seed, raising
    ``intensity`` (or ``rack_size``) only ever adds failures to the
    trace, so simulated runtimes are non-decreasing in both knobs.
    ``intensity = 0`` injects nothing and reproduces the base trace
    bit-for-bit.

    ``base_shape`` switches the *base* per-node inter-arrival
    distribution from exponential to a Weibull with that shape (same
    mean), matching
    :func:`repro.engine.traces.generate_weibull_trace` exactly.
    """

    burst_mtbf: float
    intensity: float = 1.0
    rack_size: int = 2
    jitter: float = 1.0
    base_shape: Optional[float] = None

    def __post_init__(self) -> None:
        if self.burst_mtbf <= 0:
            raise ValueError("burst_mtbf must be > 0")
        if not 0.0 <= self.intensity <= 1.0:
            raise ValueError("intensity must be within [0, 1]")
        if self.rack_size < 1:
            raise ValueError("rack_size must be >= 1")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")
        if self.base_shape is not None and self.base_shape <= 0:
            raise ValueError("base_shape must be > 0")

    @property
    def active(self) -> bool:
        """Does this spec inject any burst failures at all?"""
        return self.intensity > 0 and math.isfinite(self.burst_mtbf)

    def effective_mtbf(self, nodes: int, base_mtbf: float) -> float:
        """Actual per-node MTBF once bursts are layered on the base rate.

        The per-node failure rate gains
        ``intensity * min(rack_size, nodes) / (burst_mtbf * nodes)``
        on top of ``1 / base_mtbf``.  Feeding this back into
        :class:`~repro.core.cost_model.ClusterStats` is how an operator
        would *compensate* for a known burst regime -- the search layer
        itself never sees injections (asserted by the differential test
        battery), only whatever statistics it is handed.
        """
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        if base_mtbf <= 0:
            raise ValueError("base_mtbf must be > 0")
        burst_rate = 0.0
        if self.active:
            burst_rate = (
                self.intensity * min(self.rack_size, nodes)
                / (self.burst_mtbf * nodes)
            )
        return 1.0 / (1.0 / base_mtbf + burst_rate)


@dataclass(frozen=True)
class FlakyWrites:
    """Checkpoint/materialization writes that fail with probability
    ``rate`` per attempt.

    A failed write leaves the share's output non-durable: the executor
    falls back to re-executing the share from its last *durable*
    ancestors (their outputs survived on the storage medium; node-local
    media additionally pay the lineage-recomputation surcharge) and
    retries the write -- it never aborts the query.  ``max_failures``
    bounds consecutive failed writes per share so ``rate = 1.0`` cannot
    livelock the simulator; once the bound is hit the write is forced
    through (and counted as a forced fallback).
    """

    rate: float
    max_failures: int = 100

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")
        if self.max_failures < 1:
            raise ValueError("max_failures must be >= 1")

    @property
    def active(self) -> bool:
        return self.rate > 0


@dataclass(frozen=True)
class Stragglers:
    """Slow nodes: each node independently straggles per simulated run.

    With probability ``rate`` a node processes its shares ``factor``
    times slower for the whole run -- transient hardware degradation or
    data skew the optimizer cannot see.  Decisions are keyed by
    (policy seed, trace seed, node), so the same node straggles in the
    same runs no matter which process simulates them.
    """

    rate: float
    factor: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1 (stragglers are slow)")

    @property
    def active(self) -> bool:
        return self.rate > 0 and self.factor > 1.0


@dataclass(frozen=True)
class WorkerCrashes:
    """Campaign-pool chaos: worker processes die mid-unit.

    With probability ``rate`` per (retry round, unit) a pool worker
    hard-exits while executing that unit -- the moral equivalent of the
    OOM killer.  Crashes are injected *only inside pool worker
    processes*: the serial path and the campaign's serial fallback never
    crash, which is exactly what lets
    :func:`~repro.engine.campaign.run_campaign` guarantee no lost cells
    and no hang (bounded retries with exponential backoff, then graceful
    degradation to in-process execution).
    """

    rate: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")

    @property
    def active(self) -> bool:
        return self.rate > 0


@dataclass(frozen=True)
class FaultPolicy:
    """Composable bundle of fault injections, applied campaign-wide.

    ``seed`` namespaces every random decision the policy makes; two
    policies with different seeds inject independent fault streams over
    the same traces.  Any component left ``None`` (or configured with a
    zero rate) injects nothing -- a fully-null policy is guaranteed
    bit-identical to not passing a policy at all.
    """

    seed: int = 0
    correlated: Optional[CorrelatedFailures] = None
    flaky_writes: Optional[FlakyWrites] = None
    stragglers: Optional[Stragglers] = None
    worker_crashes: Optional[WorkerCrashes] = None

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ValueError("seed must be >= 0")

    def sim_active(self) -> bool:
        """Does the policy perturb the *simulator* (executor-level)?"""
        return bool(
            (self.flaky_writes is not None and self.flaky_writes.active)
            or (self.stragglers is not None and self.stragglers.active)
        )

    def trace_active(self) -> bool:
        """Does the policy perturb *trace generation*?"""
        return self.correlated is not None and (
            self.correlated.active or self.correlated.base_shape is not None
        )

    def pool_active(self) -> bool:
        """Does the policy crash campaign pool workers?"""
        return (
            self.worker_crashes is not None and self.worker_crashes.active
        )

    def is_null(self) -> bool:
        """True when the policy injects nothing anywhere."""
        return not (
            self.sim_active() or self.pool_active()
            or (self.correlated is not None and self.correlated.active)
            or self.trace_active()
        )


#: CLI preset names -> policy factories (see :func:`preset`)
PRESET_NAMES = (
    "none", "rack-bursts", "weibull", "flaky-writes", "stragglers", "all",
)


def preset(name: str, seed: int = 0, mtbf: float = 3600.0) -> FaultPolicy:
    """A ready-made policy for the CLI's ``--inject`` flag.

    ``mtbf`` scales the burst regime: rack bursts arrive with a mean gap
    of half the per-node MTBF, which roughly doubles the effective
    failure rate a 10-node cluster sees -- deviation large enough to be
    visible, small enough that queries still finish.
    """
    if name == "none":
        return FaultPolicy(seed=seed)
    if name == "rack-bursts":
        return FaultPolicy(seed=seed, correlated=CorrelatedFailures(
            burst_mtbf=mtbf / 2.0, intensity=1.0, rack_size=3, jitter=2.0,
        ))
    if name == "weibull":
        return FaultPolicy(seed=seed, correlated=CorrelatedFailures(
            burst_mtbf=mtbf, intensity=0.0, base_shape=0.7,
        ))
    if name == "flaky-writes":
        return FaultPolicy(seed=seed, flaky_writes=FlakyWrites(rate=0.1))
    if name == "stragglers":
        return FaultPolicy(seed=seed,
                           stragglers=Stragglers(rate=0.3, factor=2.0))
    if name == "all":
        return FaultPolicy(
            seed=seed,
            correlated=CorrelatedFailures(
                burst_mtbf=mtbf / 2.0, intensity=1.0, rack_size=3,
                jitter=2.0,
            ),
            flaky_writes=FlakyWrites(rate=0.1),
            stragglers=Stragglers(rate=0.3, factor=2.0),
        )
    raise ValueError(
        f"unknown chaos preset {name!r}; choose from {PRESET_NAMES}"
    )
