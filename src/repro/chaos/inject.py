"""Runtime fault-injection decisions (the chaos layer's dice).

Every decision is a pure function of ``(policy seed, stream tag,
structural key)``: which node straggles in a run, whether a checkpoint
write attempt fails, whether a pool worker crashes on a unit.  Each
decision opens its own tiny seeded :func:`numpy.random.default_rng`
stream, so decisions are order-independent -- the executor may ask them
in any order, from any process, and always gets the same answers.  That
is what keeps ``jobs=N`` campaigns bit-identical to ``jobs=1`` with any
fault policy active.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .policy import FaultPolicy

#: stream tags keeping the decision families statistically disjoint
STRAGGLER_STREAM = 9001
WRITE_STREAM = 9002
CRASH_STREAM = 9003
#: tag for burst overlays in repro.engine.traces (reserved here so all
#: chaos stream tags live in one place)
BURST_STREAM = 9004
#: tag for MTBF-drift thinning uniforms in repro.engine.traces
DRIFT_STREAM = 9005


def _uniform(*key: int) -> float:
    """One U[0, 1) draw from the stream identified by ``key``."""
    return float(np.random.default_rng(list(key)).random())


def crash_worker_process(status: int = 17) -> None:
    """Hard-kill the current process -- the chaos layer's crash primitive.

    ``os._exit`` (not ``sys.exit``): no cleanup, no exception
    propagation -- the parent sees a broken pool, exactly like the OOM
    killer.  This is deliberately the *only* hard-exit call site in the
    tree (enforced by lint rule S003); everything outside the chaos
    layer must raise instead.
    """
    import os

    os._exit(status)


def worker_crash_decision(
    seed: int, rate: float, round_index: int, unit_index: int
) -> bool:
    """Should the pool worker die while executing this unit this round?

    Keyed by the retry round so a unit that crashed once gets a fresh
    draw on retry (``rate = 1.0`` keeps crashing until the campaign's
    serial fallback, which never injects crashes, completes it).
    """
    if rate <= 0:
        return False
    return _uniform(seed, CRASH_STREAM, round_index, unit_index) < rate


class ChaosRun:
    """Per-simulated-run view of a policy's executor-level injections.

    Built once per ``execute_prepared`` call from the policy and the
    replayed trace's seed; the executor consults it for straggler
    factors and checkpoint-write failures.  ``None`` (no policy, or a
    policy with no executor-level injections) keeps the hot path
    untouched.
    """

    __slots__ = ("policy", "trace_key", "_straggler_factors")

    def __init__(self, policy: FaultPolicy, trace_key: int) -> None:
        self.policy = policy
        self.trace_key = trace_key
        self._straggler_factors: Dict[int, float] = {}

    @classmethod
    def create(
        cls,
        policy: Optional[FaultPolicy],
        trace_seed: Optional[int],
    ) -> Optional["ChaosRun"]:
        """A run view, or ``None`` when nothing executor-level is active.

        ``trace_seed`` keys the run (seedless traces -- the empty
        baseline trace, shifted workload traces -- share key 0: their
        runs see the same deterministic fault pattern).
        """
        if policy is None or not policy.sim_active():
            return None
        return cls(policy, trace_seed if trace_seed is not None else 0)

    # ------------------------------------------------------------------
    # stragglers
    # ------------------------------------------------------------------
    @property
    def has_stragglers(self) -> bool:
        stragglers = self.policy.stragglers
        return stragglers is not None and stragglers.active

    def straggler_factor(self, node: int) -> float:
        """Work multiplier of ``node`` for this run (1.0 = healthy)."""
        stragglers = self.policy.stragglers
        if stragglers is None or not stragglers.active:
            return 1.0
        cached = self._straggler_factors.get(node)
        if cached is not None:
            return cached
        draw = _uniform(self.policy.seed, STRAGGLER_STREAM,
                        self.trace_key, node)
        factor = stragglers.factor if draw < stragglers.rate else 1.0
        self._straggler_factors[node] = factor
        return factor

    # ------------------------------------------------------------------
    # checkpoint-write failures
    # ------------------------------------------------------------------
    @property
    def has_flaky_writes(self) -> bool:
        flaky = self.policy.flaky_writes
        return flaky is not None and flaky.active

    def write_fails(self, anchor: int, node: int, attempt: int) -> bool:
        """Does this share's ``attempt``-th materialization write fail?

        Monotone in the configured rate: each attempt index has one
        fixed uniform draw, so raising the rate only ever turns more
        attempts into failures.  Bounded by ``max_failures`` per share
        (the write is forced through after that), so the simulator
        terminates even at ``rate = 1.0``.
        """
        flaky = self.policy.flaky_writes
        if flaky is None or not flaky.active:
            return False
        if attempt >= flaky.max_failures:
            return False
        draw = _uniform(self.policy.seed, WRITE_STREAM, self.trace_key,
                        anchor, node, attempt)
        return draw < flaky.rate

    def stragglers_only(self) -> "ChaosRun":
        """A view with write failures masked out.

        Used when deriving the coarse-restart scheme's attempt makespan:
        stragglers stretch the makespan, but write-failure injection is
        scoped to fine-grained recovery (see ``docs/robustness.md``).
        """
        from dataclasses import replace

        restricted = ChaosRun(
            replace(self.policy, flaky_writes=None), self.trace_key
        )
        restricted._straggler_factors = self._straggler_factors
        return restricted
